//! The paper's safety-attack experiment (Figure 6): the attacker kills the
//! complex controller mid-flight; the receive-interval rule detects the
//! silence and the Simplex monitor fails over to the safety controller.
//!
//! ```text
//! cargo run --release --example controller_kill
//! ```

use containerdrone::prelude::*;
use containerdrone::sim::time::SimTime;

fn main() {
    let result = Scenario::new(ScenarioConfig::fig6()).run();

    println!("timeline:");
    println!("  12.0 s  attacker kills the complex controller (CCE)");
    for ev in &result.monitor_events {
        println!(
            "  {:>6.1} s  rule '{}' fires: {}",
            ev.time.as_secs_f64(),
            ev.rule,
            ev.detail
        );
    }
    for m in result.telemetry.markers() {
        println!("  {:>6.1} s  {}", m.time.as_secs_f64(), m.label);
    }

    let excursion = result.max_deviation(SimTime::from_secs(12), SimTime::from_secs(20));
    let settled = result.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
    println!("\nexcursion while commands were stale: {excursion:.2} m");
    println!("deviation in the final 5 s: {settled:.3} m");
    assert!(!result.crashed());
    assert!(result.switch_time.is_some());
}
