//! The paper's memory-DoS experiment (Figures 4 and 5): the IsolBench
//! `Bandwidth` hog launched inside the container mid-flight, with and
//! without MemGuard.
//!
//! ```text
//! cargo run --release --example memory_attack
//! ```

use containerdrone::prelude::*;
use containerdrone::sim::time::SimTime;

fn report(label: &str, result: &ScenarioResult) {
    println!("── {label} ──");
    print!("{}", result.summary());
    let attack = result.attack_onset.unwrap();
    println!(
        "deviation: {:.3} m before the attack, {:.3} m after\n",
        result.max_deviation(SimTime::from_secs(2), attack),
        result.max_deviation(attack, SimTime::from_secs(30)),
    );
}

fn main() {
    println!("Bandwidth hog (sequential array sweep, ~900 MB/s) starts at t=10 s.\n");

    let unprotected = Scenario::new(ScenarioConfig::fig4()).run();
    report("MemGuard OFF (Figure 4)", &unprotected);

    let protected = Scenario::new(ScenarioConfig::fig5()).run();
    report(
        "MemGuard ON, CCE core budgeted to 5% of the bus (Figure 5)",
        &protected,
    );

    assert!(unprotected.crashed(), "unprotected flight must crash");
    assert!(!protected.crashed(), "protected flight must survive");
    println!("same attack, same calibration — MemGuard flips the outcome.");
}
