//! Adversarial airspace: a 6-UAV swarm flying ring-topology V2V
//! coordination streams while an *external* attacker — a hostile
//! namespace that joined the airspace, not code on any vehicle — floods
//! one vehicle's GCS telemetry uplink and jams another's swarm port.
//!
//! The per-client and per-port token buckets (the fleet-scale analogue
//! of the paper's iptables defence) absorb both floods: the victims'
//! genuine streams survive, the garbage that lands stays inside the
//! bucket budgets, and the rest of the formation is untouched.
//!
//! ```text
//! cargo run --release --example swarm_jam
//! ```

use containerdrone::fleet::{Fleet, FleetConfig, SwarmConfig};
use containerdrone::prelude::*;
use containerdrone::sim::time::{SimDuration, SimTime};

fn main() {
    // The attacker's schedule: jam vehicle 2's V2V port from 2 s, flood
    // vehicle 4's telemetry port on the GCS from 3 s to 6 s.
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(2),
            FleetTarget::SwarmJam(2),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(3),
            FleetTarget::GcsUplink(4),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(6),
            FleetTarget::GcsUplink(4),
            AttackEvent::CeaseFire,
        );

    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(8));
    let report = Fleet::new(
        FleetConfig::new(base, 6)
            .with_script(script)
            .with_swarm(SwarmConfig::default())
            // Two worker threads, load-balanced shards: the report is
            // byte-identical to a serial run at any thread count.
            .with_threads(2),
    )
    .run();

    println!(
        "6-UAV swarm under external attack — {} hostile datagrams offered in {:.2}s wall\n",
        report.attacker_packets,
        report.wall_clock.as_secs_f64(),
    );
    println!(
        "veh  verdict   V2V rx  jam drops  garbage  min sep  GCS pkts  malformed  uplink drops"
    );
    for o in &report.outcomes {
        println!(
            "{:>3}  {:8}  {:>6}  {:>9}  {:>7}  {:>7}  {:>8}  {:>9}  {:>12}",
            o.index,
            o.verdict(),
            o.swarm.rx_msgs,
            o.swarm.dropped_jam,
            o.swarm.rx_garbage,
            o.swarm
                .min_separation
                .map(|d| format!("{d:.2}m"))
                .unwrap_or_else(|| "-".into()),
            o.gcs.packets,
            o.gcs.malformed,
            o.gcs.dropped_ratelimit,
        );
    }

    // The defences held: every vehicle flew clean, the jammed vehicle
    // kept hearing its ring neighbors, and the flooded uplink still
    // delivered genuine telemetry.
    assert_eq!(report.crashes(), 0, "a pure airspace attack downs nobody");
    assert!(report.outcomes[2].swarm.dropped_jam > 0, "jam was absorbed");
    assert!(report.outcomes[2].swarm.rx_msgs > 0, "V2V stream survived");
    assert!(
        report.outcomes[4].gcs.dropped_ratelimit > 0,
        "flood was rate-limited"
    );
    assert!(report.outcomes[4].gcs.packets > 0, "telemetry survived");
    println!("\nall defences held — token buckets bounded both attackers");
}
