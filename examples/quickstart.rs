//! Quickstart: assemble the ContainerDrone framework, fly a healthy
//! 30-second hover, and inspect what the system did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use containerdrone::prelude::*;
use containerdrone::sim::time::SimTime;

fn main() {
    // The default scenario is the paper's setup: complex controller in the
    // container flying in position mode, safety controller hot standby,
    // all three protections (cpuset, MemGuard, iptables) enabled.
    let config = ScenarioConfig::healthy();
    println!(
        "flying {}s hover at ({:.1}, {:.1}, {:.1}) NED, seed {}",
        config.duration.as_secs_f64(),
        config.hover.x,
        config.hover.y,
        config.hover.z,
        config.seed
    );

    let result = Scenario::new(config).run();

    println!("\n== outcome ==");
    print!("{}", result.summary());

    println!("== Table I streams (measured) ==");
    for s in &result.streams {
        println!(
            "  {:<13} {:<9} {:6.1} Hz  {:3.0} B  port {}",
            s.name, s.direction, s.measured_hz, s.frame_bytes, s.port
        );
    }

    println!("\n== flight quality ==");
    let dev = result.max_deviation(SimTime::from_secs(2), SimTime::from_secs(30));
    println!("  max deviation from setpoint: {dev:.3} m");
    for (name, stats) in &result.task_report {
        println!(
            "  {:<18} {:>6} jobs, {:>3} skips, worst response {}",
            name, stats.completions, stats.skips, stats.response_max
        );
    }

    assert!(!result.crashed());
}
