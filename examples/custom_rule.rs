//! Extending the security monitor with a custom rule.
//!
//! The paper enforces two rules (receive interval, attitude error); the
//! monitor here is an open trait. This example adds a third rule that
//! bounds how long the vehicle may stay outside a position envelope — and
//! shows it catching the controller-kill attack *before* the stock
//! interval rule would.
//!
//! ```text
//! cargo run --release --example custom_rule
//! ```

use containerdrone::framework::{
    MonitorContext, RuleVerdict, Scenario, ScenarioConfig, SecurityRule,
};
use containerdrone::sim::time::SimTime;

/// Trips when no valid CCE output arrives for `threshold_ms` — like the
/// stock rule but twice as aggressive, as a deployment might tune it.
#[derive(Debug)]
struct FastSilenceRule {
    threshold_ms: u64,
}

impl SecurityRule for FastSilenceRule {
    fn name(&self) -> &str {
        "fast-silence"
    }

    fn evaluate(&mut self, ctx: &MonitorContext) -> RuleVerdict {
        let Some(last) = ctx.last_valid_output else {
            return RuleVerdict::Ok;
        };
        let gap = ctx.now.saturating_since(last);
        if gap.as_millis() > self.threshold_ms {
            RuleVerdict::Violation(format!("custom rule: {gap} of silence"))
        } else {
            RuleVerdict::Ok
        }
    }
}

fn main() {
    let baseline = Scenario::new(ScenarioConfig::fig6()).run();
    let custom = Scenario::new(ScenarioConfig::fig6())
        .run_with_rules(vec![Box::new(FastSilenceRule { threshold_ms: 250 })]);

    let b = baseline.switch_time.unwrap();
    let c = custom.switch_time.unwrap();
    println!("stock rules switch at   {b}");
    println!(
        "custom rule switches at {c} (rule: {})",
        custom.monitor_events[0].rule
    );
    println!(
        "excursion: {:.3} m (stock) vs {:.3} m (custom)",
        baseline.max_deviation(SimTime::from_secs(12), SimTime::from_secs(30)),
        custom.max_deviation(SimTime::from_secs(12), SimTime::from_secs(30)),
    );
    assert!(c < b, "the faster rule must fire earlier");
    assert_eq!(custom.monitor_events[0].rule, "fast-silence");
}
