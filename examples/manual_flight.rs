//! Flying the autopilot stack directly — the paper's experiment procedure:
//! "the drone operator first flies the drone to a safe height in manual
//! mode and then switches to position control mode."
//!
//! This bypasses the scenario runner and drives the flight controller and
//! physics by hand, which is the entry point for anyone wanting to reuse
//! the autopilot/dynamics crates standalone.
//!
//! ```text
//! cargo run --release --example manual_flight
//! ```

use containerdrone::prelude::*;
use containerdrone::sim::time::{SimDuration, SimTime};

fn main() {
    let mut world = World::new(WorldConfig::default(), 7);
    let mut fc = FlightController::new(world.quad_params(), ControlGains::complex());

    // Phase 1: manual (stabilized) takeoff — the operator pushes throttle
    // slightly above hover and keeps the sticks level.
    fc.set_sticks(StickInput {
        roll: 0.0,
        pitch: 0.0,
        yaw_rate: 0.0,
        thrust: world.quad_params().hover_command() * 1.18,
    });

    let dt = SimDuration::from_micros(250);
    let sensor_period = SimDuration::from_hz(250.0);
    let rate_period = SimDuration::from_hz(400.0);
    let fix_period = SimDuration::from_hz(10.0);
    let mut t = SimTime::ZERO;
    let (mut next_sensor, mut next_rate, mut next_fix) = (t, t, t);
    let mut switched = false;

    while t < SimTime::from_secs(25) && world.crash().is_none() {
        if t >= next_sensor {
            fc.on_imu(&world.sample_imu());
            fc.run_outer(t);
            next_sensor += sensor_period;
        }
        if t >= next_fix {
            fc.on_position_fix(&world.sample_position());
            next_fix += fix_period;
        }
        if t >= next_rate {
            world.set_motor_pwm(fc.run_rate_loop(t));
            next_rate += rate_period;
        }

        // Phase 2: at a safe height, switch to position mode; PX4-style,
        // the setpoint re-centres where the vehicle is.
        if !switched && world.truth().altitude() > 1.0 {
            fc.set_mode(FlightMode::Position);
            switched = true;
            println!(
                "{:>5.2} s: switched to position mode at altitude {:.2} m",
                t.as_secs_f64(),
                world.truth().altitude()
            );
            // Phase 3: fly a small mission.
            fc.set_mission(vec![
                Waypoint {
                    position: Vec3::new(1.5, 0.0, -1.5),
                    yaw: 0.0,
                    tolerance: 0.3,
                },
                Waypoint {
                    position: Vec3::new(1.5, 1.5, -2.0),
                    yaw: 0.0,
                    tolerance: 0.3,
                },
                Waypoint {
                    position: Vec3::new(0.0, 0.0, -1.0),
                    yaw: 0.0,
                    tolerance: 0.3,
                },
            ]);
        }

        t += dt;
        world.advance_to(t);
        if t.as_millis().is_multiple_of(5000) && t.as_micros() % 1_000_000 < 250 {
            let p = world.truth().position;
            println!(
                "{:>5.2} s: pos ({:+.2}, {:+.2}, {:+.2}), waypoint {}/3",
                t.as_secs_f64(),
                p.x,
                p.y,
                p.z,
                fc.mission_progress()
            );
        }
    }

    assert!(world.crash().is_none(), "flight must not crash");
    assert_eq!(fc.mission_progress(), 3, "mission must complete");
    println!(
        "mission complete, hovering at ({:+.2}, {:+.2}, {:+.2})",
        world.truth().position.x,
        world.truth().position.y,
        world.truth().position.z
    );
}
