//! A 5-UAV shared-airspace fleet under a rolling-victim UDP flood: the
//! attack hops to the next vehicle every 2 s while a ground control
//! station polls telemetry from all five over rate-limited radio uplinks.
//!
//! Every vehicle is a full ContainerDrone stack (HCE, containerised CCE,
//! security monitor); the flood is launched from inside each victim's
//! own compromised container, exactly as the paper's threat model says —
//! only now the attacker chooses *where*, not just *when*.
//!
//! ```text
//! cargo run --release --example fleet_flood
//! ```

use containerdrone::fleet::{Fleet, FleetConfig};
use containerdrone::prelude::*;
use containerdrone::sim::time::{SimDuration, SimTime};

fn main() {
    let script = FleetScript::new().at(
        SimTime::from_secs(2),
        FleetTarget::Rolling {
            period: SimDuration::from_secs(2),
        },
        AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
    );
    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(12));
    // Two worker threads shard the fleet; the report is byte-identical
    // to a serial run (drop `.with_threads` and compare, if you like).
    let report = Fleet::new(
        FleetConfig::new(base, 5)
            .with_script(script)
            .with_threads(2),
    )
    .run();

    println!(
        "5-UAV fleet, rolling flood — {} sim-steps across the fleet in {:.2}s wall\n",
        report.sim_steps,
        report.wall_clock.as_secs_f64(),
    );
    for o in &report.outcomes {
        println!(
            "vehicle {} (seed {}): {:8}  switch {:>6}  flood rx-drops {:>6}  GCS heard {} pkts (last {:.1}s)",
            o.index,
            o.seed,
            o.verdict(),
            o.result
                .switch_time
                .map(|t| format!("{:.1}s", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            o.result.rx_socket_stats.dropped_ratelimit,
            o.gcs.packets,
            o.gcs.last_seen.map(|t| t.as_secs_f64()).unwrap_or(0.0),
        );
    }

    // The rolling victim pattern: every vehicle visited before 12 s got
    // its turn under fire, and the fleet survived all of it.
    assert_eq!(report.crashes(), 0, "Simplex kept every vehicle alive");
    let attacked = report
        .outcomes
        .iter()
        .filter(|o| o.result.flood_sent > 0)
        .count();
    println!("\n{attacked}/5 vehicles took their turn as the flood victim — none crashed.");
}
