//! Live observability: a 25-UAV swarm-jam campaign served over
//! Prometheus text exposition and scraped *mid-run*.
//!
//! The run attaches a metrics registry to the fleet (attack, network,
//! executor and outcome counters), serves it on a loopback port, flies
//! the first five simulated seconds, scrapes the endpoint while the
//! attack is in full swing — asserting the attack counters actually
//! moved — and then finishes the flight. A structured JSONL trace of
//! the same run lands in `results/observe_trace.jsonl`.
//!
//! ```text
//! cargo run --release --example observe
//! ```
//!
//! While it runs, `curl http://127.0.0.1:<port>/metrics` from another
//! terminal shows the same live counters this example scrapes.

use std::sync::Arc;

use containerdrone::fleet::{Fleet, FleetConfig, SwarmConfig};
use containerdrone::obs::{server, Registry, TraceSink};
use containerdrone::prelude::*;
use containerdrone::sim::time::{SimDuration, SimTime};

fn main() {
    // The adversarial campaign: a rolling onboard flood across the
    // formation, an external flood on vehicle 4's GCS uplink, and an
    // external jammer on vehicle 2's V2V port.
    let script = FleetScript::new()
        .at(
            SimTime::from_secs(1),
            FleetTarget::Rolling {
                period: SimDuration::from_millis(500),
            },
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(2),
            FleetTarget::SwarmJam(2),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .at(
            SimTime::from_secs(3),
            FleetTarget::GcsUplink(4),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        );

    let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(8));
    let mut fleet = Fleet::new(
        FleetConfig::new(base, 25)
            .with_script(script)
            .with_swarm(SwarmConfig::default())
            .with_threads(2),
    );

    // Attach both observability surfaces, then serve the registry.
    let registry = Arc::new(Registry::new());
    fleet.attach_metrics(&registry);
    std::fs::create_dir_all("results").expect("mkdir results");
    let sink = TraceSink::to_file(std::path::Path::new("results/observe_trace.jsonl"))
        .expect("open trace file");
    fleet.attach_trace(sink);
    let obs_server = server::serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind exposition");
    println!(
        "serving live metrics on http://{}/metrics\n",
        obs_server.addr()
    );

    // Fly into the thick of the campaign, then scrape mid-run.
    fleet.run_until(SimTime::from_secs(5));
    let body = server::scrape(obs_server.addr(), "/metrics").expect("mid-run scrape");

    let value = |name: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric `{name}` missing from scrape"))
    };
    let attacker_packets = value("cd_fleet_attacker_packets_total");
    let jam_dropped = value("cd_fleet_swarm_jam_dropped_total");
    let net_dropped = value("cd_net_datagrams_total{result=\"dropped_ratelimit\"}");
    let sim_time = value("cd_fleet_sim_time_seconds");
    println!("mid-run scrape at sim t = {sim_time}s:");
    println!("  cd_fleet_attacker_packets_total    {attacker_packets}");
    println!("  cd_fleet_swarm_jam_dropped_total   {jam_dropped}");
    println!("  cd_net_datagrams_total{{ratelimit}}  {net_dropped}");

    // The attack counters moved while the fleet was still flying.
    assert!(sim_time >= 5.0, "scrape landed before the 5 s mark");
    assert!(attacker_packets > 0.0, "attacker nodes never fired");
    assert!(jam_dropped > 0.0, "the jam never pressured a swarm port");
    assert!(net_dropped > 0.0, "no flood hit a rate limit");

    // Finish the flight; the trace sink flushes at teardown.
    let report = fleet.run();
    println!(
        "\nflight complete: {} crashes, {} switches, {} attacker datagrams, {:.0}% of quanta leaped",
        report.crashes(),
        report.switches(),
        report.attacker_packets,
        100.0 * report.quanta_leaped as f64 / report.sim_steps as f64,
    );
    println!("trace written to results/observe_trace.jsonl");
    obs_server.shutdown();
}
