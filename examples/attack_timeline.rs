//! A composed attack campaign in a single flight — the paper's three DoS
//! vectors, sequenced the way its threat model allows: the attacker first
//! exhausts memory bandwidth (10 s), layers a UDP flood on top (15 s),
//! and finally kills the complex controller outright (20 s).
//!
//! Under the full protection stack the flight survives the whole
//! timeline: MemGuard absorbs the hog, iptables + the parser shrug off
//! the flood, and the kill triggers the Simplex failover.
//!
//! ```text
//! cargo run --release --example attack_timeline
//! ```

use containerdrone::prelude::*;
use containerdrone::sim::time::SimTime;

fn main() {
    let cfg = ScenarioConfig::builder()
        .pilot(Pilot::CceSimplex)
        .attack_at(
            SimTime::from_secs(10),
            AttackEvent::MemoryHog(BandwidthHog::isolbench()),
        )
        .attack_at(
            SimTime::from_secs(15),
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
        .attack_at(SimTime::from_secs(20), AttackEvent::KillComplex)
        .build();

    let result = Scenario::new(cfg).run();

    println!("timeline:");
    for (at, name) in &result.attack_log {
        println!("  {:>6.1} s  attacker launches {name}", at.as_secs_f64());
    }
    for ev in &result.monitor_events {
        println!(
            "  {:>6.1} s  rule '{}' fires: {}",
            ev.time.as_secs_f64(),
            ev.rule,
            ev.detail
        );
    }
    for m in result.telemetry.markers() {
        println!("  {:>6.1} s  {}", m.time.as_secs_f64(), m.label);
    }

    print!("\n{}", result.summary());
    println!(
        "flood offered {} packets ({} total attack datagrams)",
        result.flood_sent, result.attack_packets
    );
    let settled = result.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
    println!("deviation in the final 5 s: {settled:.3} m");

    assert_eq!(result.attack_log.len(), 3, "all three attacks fired");
    assert!(!result.crashed(), "protections ride out the whole campaign");
    assert!(result.switch_time.is_some(), "the kill forces a failover");
}
