//! Response-time analysis of a ContainerDrone-style HCE task set — the
//! paper's future work ("hard real-time proof and schedulability
//! analysis"), usable as a library.
//!
//! ```text
//! cargo run --release --example schedulability
//! ```

use containerdrone::sched::analysis::{response_time_analysis, AnalyzedTask};
use containerdrone::sched::Cost;
use containerdrone::sim::time::SimDuration;

fn main() {
    // A two-core slice of the HCE: drivers on core 0, the flight stack on
    // core 1 (memory-heavy: 80% of its execution stalls on DRAM).
    let tasks = vec![
        AnalyzedTask {
            name: "sensor-driver".into(),
            core: 0,
            priority: 90,
            period: SimDuration::from_hz(250.0),
            cost: Cost::memory_bound(SimDuration::from_micros(350), 2.2e6, 0.7),
        },
        AnalyzedTask {
            name: "motor-driver".into(),
            core: 0,
            priority: 90,
            period: SimDuration::from_hz(400.0),
            cost: Cost::compute(SimDuration::from_micros(60)),
        },
        AnalyzedTask {
            name: "flight-stack".into(),
            core: 1,
            priority: 50,
            period: SimDuration::from_hz(250.0),
            cost: Cost::memory_bound(SimDuration::from_micros(2000), 2.8e6, 0.8),
        },
    ];

    for (label, contention) in [
        ("healthy", None),
        (
            "memory DoS, unprotected (γ=45, hog at 93% of the bus)",
            Some((45.0, 0.93)),
        ),
        ("memory DoS, MemGuard 2% budget", Some((45.0, 0.02))),
    ] {
        let report = response_time_analysis(&tasks, 2, contention);
        println!("── {label} ──");
        for v in &report.tasks {
            println!(
                "  {:<14} wcet {:>10}  response {:>12}  {}",
                v.name,
                format!("{}", v.wcet),
                v.response
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "> deadline".into()),
                if v.schedulable { "ok" } else { "UNSCHEDULABLE" }
            );
        }
        println!(
            "  core utilization: {:?}\n",
            report
                .core_utilization
                .iter()
                .map(|u| format!("{u:.2}"))
                .collect::<Vec<_>>()
        );
    }
}
