//! The paper's communication-DoS experiment (Figure 7): a UDP flood from
//! inside the container against the HCE's motor port, defended by iptables
//! rate limiting and the security monitor.
//!
//! ```text
//! cargo run --release --example udp_flood
//! ```

use containerdrone::prelude::*;
use containerdrone::sim::time::SimTime;

fn main() {
    let result = Scenario::new(ScenarioConfig::fig7()).run();

    println!("flood: {} packets offered from the CCE", result.flood_sent);
    println!(
        "iptables dropped {}, socket queue dropped {}, {} datagrams reached the rx thread",
        result.rx_socket_stats.dropped_ratelimit,
        result.rx_socket_stats.dropped_overflow,
        result.rx_socket_stats.delivered,
    );
    println!(
        "parser skipped {} bytes of garbage, accepted {} valid frames",
        result.hce_parser_stats.bytes_skipped, result.hce_parser_stats.frames_ok,
    );

    print!("\n{}", result.summary());
    let settled = result.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30));
    println!("deviation in the final 5 s: {settled:.3} m");
    assert!(!result.crashed());
}
