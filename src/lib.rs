//! **ContainerDrone** — a container-based DoS-attack-resilient control
//! framework for real-time UAV systems.
//!
//! Facade crate re-exporting the whole workspace. Reproduction of
//! Chen, Feng, Wen, Liu and Sha, *"A Container-based DoS Attack-Resilient
//! Control Framework for Real-Time UAV Systems"*, DATE 2019.
//!
//! | Crate | Role |
//! |-------|------|
//! | [`framework`] (`containerdrone-core`) | HCE/CCE assembly, security monitor, Simplex switching, scenarios |
//! | [`autopilot`] | PX4-like cascaded flight control (complex + safety controllers) |
//! | [`dynamics`] (`uav-dynamics`) | 6-DOF quadrotor, sensors, environment, crash detection |
//! | [`protocol`] (`mavlink-lite`) | MAVLink-v1-style framing and the Table I message set |
//! | [`sched`] (`rt-sched`) | Multicore RT scheduler with cgroups and accounting |
//! | [`memory`] (`membw`) | Shared DRAM contention model + MemGuard |
//! | [`network`] (`virt-net`) | Namespaced UDP stack with iptables-style rate limiting |
//! | [`containers`] (`container-rt`) | Docker-like container runtime + QEMU-like VM model |
//! | [`attacks`] | Memory hog, UDP flood, CPU hog, controller-kill attacks + fleet/attacker-node placement |
//! | [`fleet`] (`cd-fleet`) | Multi-UAV co-simulation: load-balanced sharded executor, adversarial airspace (GCS, V2V swarm streams, attacker nodes) |
//! | [`obs`] (`cd-obs`) | Deterministic structured tracing (JSONL), metrics registry, live Prometheus exposition |
//! | [`orch`] (`cd-orch`) | Crash-resilient multi-process campaign orchestrator: fault injection, retry/backoff, snapshot/resume |
//! | [`sim`] (`sim-core`) | Deterministic time, RNG, events, recording |
//!
//! # Quickstart
//!
//! Scenarios are assembled with [`framework::ScenarioConfig::builder`]
//! and attacks are scheduled on a composable timeline — one run can
//! sequence and overlap any number of attack vectors:
//!
//! ```
//! use containerdrone::prelude::*;
//! use containerdrone::sim::time::{SimDuration, SimTime};
//!
//! // Healthy 2 s hover.
//! let cfg = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
//! let result = Scenario::new(cfg).run();
//! assert!(!result.crashed());
//!
//! // Composed attack campaign: controller kill at 1 s on top of a UDP
//! // flood from 0.5 s — the monitor fails over to the safety controller.
//! let cfg = ScenarioConfig::builder()
//!     .attack_at(SimTime::from_millis(500), AttackEvent::UdpFlood(UdpFlood::against_motor_port()))
//!     .attack_at(SimTime::from_secs(1), AttackEvent::KillComplex)
//!     .duration(SimDuration::from_secs(3))
//!     .build();
//! let result = Scenario::new(cfg).run();
//! assert!(result.switch_time.is_some());
//! ```
//!
//! The paper's experiments remain one-liner presets
//! ([`framework::ScenarioConfig::fig4`] … `fig7`), and the `cd-bench`
//! crate's `Campaign` layer fans whole grids of scenario variants
//! (attacks × protections × seeds) out across worker threads.

#![warn(missing_docs)]

pub use attacks;
pub use autopilot;
pub use cd_fleet as fleet;
pub use cd_obs as obs;
pub use cd_orch as orch;
pub use container_rt as containers;
pub use containerdrone_core as framework;
pub use mavlink_lite as protocol;
pub use membw as memory;
pub use rt_sched as sched;
pub use sim_core as sim;
pub use uav_dynamics as dynamics;
pub use virt_net as network;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use attacks::prelude::*;
    pub use autopilot::prelude::*;
    pub use containerdrone_core::prelude::*;
    pub use uav_dynamics::prelude::*;
}
