//! `cd-lint` — workspace determinism-and-robustness lints.
//!
//! The framework's load-bearing guarantee is that reports are
//! byte-identical across thread counts and shard partitions (the
//! ROADMAP "Determinism invariant"). The equivalence tests enforce it
//! *dynamically* — they catch a hazard only when it happens to fire.
//! This crate enforces the hazard *classes* statically, with a
//! hand-rolled token scanner (the build environment has no registry,
//! so no `syn`) and a small rule engine; see [`rules`] for the rule
//! catalogue and the `// cd-lint: allow(<rule>) -- <justification>`
//! annotation grammar.
//!
//! Shipped three ways: the `cd-lint` binary (rustc-style diagnostics,
//! non-zero exit), the workspace test `tests/lint_clean.rs` (Tier-1
//! itself fails on violations), and a CI step.

pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, Finding, Policy, Rule, SIM_CRATE_DIRS};

/// Directory names never descended into: build output, VCS state, and
/// cd-lint's own rule fixtures (which contain violations on purpose).
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Every `.rs` file the lint covers, workspace-relative and sorted —
/// the walk order (and therefore the diagnostic order) is deterministic.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    files.sort();
    files
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || (name == "fixtures" && dir.ends_with("cd-lint")) {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Lints the whole workspace rooted at `root`. Findings come back
/// sorted by file then line.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in workspace_files(root) {
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        let Ok(src) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        findings.extend(lint_source(&rel_str, &src, Policy::for_path(&rel_str)));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Renders findings the way the binary prints them — shared with the
/// workspace test so a red `tests/lint_clean.rs` shows the same
/// diagnostics `cargo run -p cd-lint` would.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}
