//! A hand-rolled Rust token scanner.
//!
//! The build environment has no crates.io registry, so there is no `syn`
//! to lean on; the rules only need a faithful *token* stream, not a
//! syntax tree. What the scanner must get exactly right are the classic
//! false-positive traps: string literals (`"Instant::now()"` in a test
//! string is not a clock read), raw strings with arbitrary `#` fences,
//! byte strings, char literals versus lifetimes (`'a'` versus `'a`),
//! line comments, and *nested* block comments. Comments are not
//! discarded — they carry the `cd-lint:` annotation grammar and the
//! `SAFETY:` contracts the rules enforce — so they come out in a
//! separate side channel with line spans.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `[`, …).
    Punct,
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// A lifetime (`'a`, `'static`, `'_`), *not* a char literal.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// The token's text (for literals, the raw source spelling).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its line span and raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Raw text including the `//` / `/* */` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on (block comments may span lines).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order. Comments, whitespace and literal
    /// *contents* never appear here.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// `true` if any token starts on `line`.
    pub fn line_has_tokens(&self, line: u32) -> bool {
        // Tokens are in source order; a binary search keeps the rule
        // passes cheap even on large files.
        self.tokens.binary_search_by_key(&line, |t| t.line).is_ok()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder of the file is swallowed into the open
/// literal/comment): a lint must never panic on the code it audits.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advances one char, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    self.push(TokKind::Punct, c.to_string(), self.line);
                    self.bump();
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: self.chars[start..self.i].iter().collect(),
            start_line: line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: self.chars[start..self.i].iter().collect(),
            start_line,
            end_line: self.line,
        });
    }

    /// A plain `"…"` string, with escape handling (`\"` does not end it).
    fn string_literal(&mut self) {
        let (start, line) = (self.i, self.line);
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump(); // the escaped char (ok if it was the last)
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        self.literal_from(start, line);
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` fence characters;
    /// called with `self.i` at the opening quote.
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // opening quote
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A quote only closes when followed by the full fence.
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump(); // quote
                for _ in 0..hashes {
                    self.bump();
                }
                return;
            }
            self.bump();
        }
    }

    /// `'a` (lifetime) versus `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.i, self.line);
        match self.peek(1) {
            // Escaped char literal: '\n', '\u{1F600}', '\\', '\''.
            Some('\\') => {
                self.bump(); // '
                self.bump(); // backslash
                if self.peek(0) == Some('u') && self.peek(1) == Some('{') {
                    while self.peek(0).is_some_and(|c| c != '}') {
                        self.bump();
                    }
                }
                self.bump(); // escape body (or '}')
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.literal_from(start, line);
            }
            // Plain char literal: exactly one char then a closing quote.
            Some(_) if self.peek(2) == Some('\'') => {
                self.bump();
                self.bump();
                self.bump();
                self.literal_from(start, line);
            }
            // Otherwise a lifetime: consume the label.
            _ => {
                self.bump(); // '
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text: String = self.chars[start..self.i].iter().collect();
                self.push(TokKind::Lifetime, text, line);
            }
        }
    }

    /// Numbers need no precision beyond "don't eat a quote": digits,
    /// alphanumerics (hex, suffixes, exponents) and a single embedded
    /// `.` when followed by a digit (`1.5` yes, `1..5` and `1.max()` no).
    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else {
                break;
            }
        }
        self.literal_from(start, line);
    }

    /// An identifier — unless it is one of the literal prefixes `r`, `b`,
    /// `br` directly followed by a (raw) string or char, or a raw
    /// identifier `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();

        match (text.as_str(), self.peek(0)) {
            // b'x' byte char literal.
            ("b", Some('\'')) => {
                self.char_byte_tail(start, line);
            }
            // r"…" / b"…" / br"…" plain-quoted literal.
            ("r" | "b" | "br", Some('"')) => {
                if text == "r" || text == "br" {
                    self.raw_string_body(0);
                } else {
                    self.string_literal_tail();
                }
                self.literal_from(start, line);
            }
            // r#…: raw string r#"…"# or raw identifier r#keyword.
            ("r" | "br", Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                    self.literal_from(start, line);
                } else if text == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier: emit the name without the r# prefix
                    // so `r#type` and `type` match the same rules.
                    self.bump(); // '#'
                    let name_start = self.i;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let name: String = self.chars[name_start..self.i].iter().collect();
                    self.push(TokKind::Ident, name, line);
                } else {
                    self.push(TokKind::Ident, text, line);
                }
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }

    /// The `'x'` tail of a `b'x'` byte literal (escapes included).
    fn char_byte_tail(&mut self, start: usize, line: u32) {
        self.bump(); // '
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.literal_from(start, line);
    }

    /// The `"…"` tail of a `b"…"` byte string (escapes included);
    /// called with `self.i` at the opening quote.
    fn string_literal_tail(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
    }

    fn literal_from(&mut self, start: usize, line: u32) {
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Literal, text, line);
    }
}
