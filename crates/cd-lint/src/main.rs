//! The `cd-lint` binary: lints the workspace, prints rustc-style
//! diagnostics, exits non-zero on findings.
//!
//! ```text
//! cargo run --release -p cd-lint            # lint the enclosing workspace
//! cargo run --release -p cd-lint -- <path>  # lint an explicit root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => find_workspace_root(),
    };
    let files = cd_lint::workspace_files(&root);
    let findings = cd_lint::lint_workspace(&root);
    if findings.is_empty() {
        println!(
            "cd-lint: clean ({} files scanned under {})",
            files.len(),
            root.display()
        );
        return ExitCode::SUCCESS;
    }
    print!("{}", cd_lint::render(&findings));
    eprintln!(
        "cd-lint: {} finding(s) across {} files scanned",
        findings.len(),
        files.len()
    );
    ExitCode::FAILURE
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`; falls back to `.` so an explicit path is
/// never required inside the repo.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
