//! The rule engine: repo-specific determinism and robustness invariants.
//!
//! Four rules, each enforcing a piece of the workspace's load-bearing
//! guarantee — reports byte-identical across thread counts and shard
//! partitions — or the hardening discipline around hostile inputs:
//!
//! * **`wall_clock`** — `Instant::now` / `SystemTime::now` are forbidden
//!   in simulation crates. Wall time is nondeterministic; a single read
//!   feeding simulation state silently breaks the byte-identical
//!   invariant in a way the equivalence tests only catch if the hazard
//!   happens to fire under test.
//! * **`unordered_iter`** — iterating a `HashMap`/`HashSet` is forbidden
//!   in simulation crates: default-hasher iteration order is
//!   unspecified, so any fold into observable state is a determinism
//!   hazard. Lookups (`get`/`contains`/`insert`) are fine.
//! * **`panic_paths`** — regions opted in with a
//!   `// cd-lint: deny(panic_paths)` comment (hostile-input decode
//!   paths) forbid `unwrap`, `expect`, `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!` and slice indexing: garbage on the wire
//!   must book an error, never abort the vehicle.
//! * **`unsafe_hygiene`** — every `unsafe` block and `unsafe impl`
//!   needs an adjacent `// SAFETY:` comment stating the obligation.
//!
//! Any site may be exempted with an annotation comment carrying a
//! justification, e.g. `// cd-lint: allow(wall_clock) -- cost-only EWMA,
//! never feeds the report`. The justification is mandatory: an `allow`
//! without one is itself a finding, which is what keeps exemptions
//! auditable instead of accumulating silently.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// Crate directories (under `crates/`) whose `src/` trees are simulation
/// code: everything that can feed a report. `cd-bench` (measures wall
/// time on purpose) and `bytes-shim`/`cd-lint` (no sim state) are out.
pub const SIM_CRATE_DIRS: &[&str] = &[
    "virt-net",
    "rt-sched",
    "sim-core",
    "mavlink-lite",
    "attacks",
    "core",
    "fleet",
    "uav-dynamics",
    "membw",
    "container-rt",
    "autopilot",
    "cd-obs",
    "cd-orch",
];

/// Rule identifiers, also the names the annotation grammar accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads in sim crates.
    WallClock,
    /// Hash-order iteration in sim crates.
    UnorderedIter,
    /// Panic-capable constructs inside `deny(panic_paths)` regions.
    PanicPaths,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeHygiene,
    /// A malformed or unjustified `cd-lint:` annotation.
    Annotation,
}

impl Rule {
    /// The rule's name as written in annotations and diagnostics.
    pub fn key(self) -> &'static str {
        match self {
            Rule::WallClock => "wall_clock",
            Rule::UnorderedIter => "unordered_iter",
            Rule::PanicPaths => "panic_paths",
            Rule::UnsafeHygiene => "unsafe_hygiene",
            Rule::Annotation => "annotation",
        }
    }

    fn from_key(key: &str) -> Option<Rule> {
        Some(match key {
            "wall_clock" => Rule::WallClock,
            "unordered_iter" => Rule::UnorderedIter,
            "panic_paths" => Rule::PanicPaths,
            "unsafe_hygiene" => Rule::UnsafeHygiene,
            _ => return None,
        })
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Simulation source: `wall_clock` and `unordered_iter` apply.
    pub sim: bool,
}

impl Policy {
    /// Classifies a workspace-relative path (`crates/<dir>/src/…`).
    /// Only `src/` trees of sim crates get the determinism rules —
    /// tests may legitimately time things out or probe hash maps;
    /// `panic_paths` (opt-in) and `unsafe_hygiene` apply everywhere.
    pub fn for_path(rel_path: &str) -> Policy {
        let mut parts = rel_path.split('/');
        let sim = parts.next() == Some("crates")
            && parts.next().is_some_and(|d| SIM_CRATE_DIRS.contains(&d))
            && parts.next() == Some("src");
        Policy { sim }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}\n  --> {}:{}",
            self.rule.key(),
            self.message,
            self.file,
            self.line
        )
    }
}

/// The marker every annotation comment starts with (after the `//`).
const MARKER: &str = "cd-lint:";

#[derive(Debug)]
enum Directive {
    Allow { rule: Rule },
    Deny,
    End,
}

/// Parses one comment into a directive, if it opens with the marker.
/// Only a comment whose text *begins* with the marker (after the
/// `//`/`/*`/`!` punctuation) is a directive — prose that merely
/// mentions the marker mid-sentence, e.g. backtick-quoted grammar in a
/// doc comment, is an ordinary comment. `Err` is a malformed
/// annotation (reported as a finding); `Ok(None)` is an ordinary
/// comment.
fn parse_directive(comment: &str) -> Result<Option<Directive>, String> {
    let body = comment.trim_start_matches(['/', '*', '!']).trim_start();
    let Some(rest) = body.strip_prefix(MARKER) else {
        return Ok(None);
    };
    let rest = rest.trim();
    let (verb, rest) = match rest.find('(') {
        Some(p) => (&rest[..p], &rest[p + 1..]),
        None => {
            return Err(format!(
                "expected `allow(…)`, `deny(…)` or `end(…)`, got `{rest}`"
            ))
        }
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `(` in annotation".to_string());
    };
    let rule_key = rest[..close].trim();
    let Some(rule) = Rule::from_key(rule_key) else {
        return Err(format!(
            "unknown rule `{rule_key}` (rules: wall_clock, unordered_iter, panic_paths, unsafe_hygiene)"
        ));
    };
    let tail = rest[close + 1..].trim();
    match verb.trim() {
        "allow" => {
            let justified = tail
                .strip_prefix("--")
                .is_some_and(|j| !j.trim().is_empty());
            if !justified {
                return Err(format!(
                    "allow({rule_key}) requires a justification: `-- <why this site is exempt>`",
                    rule_key = rule.key()
                ));
            }
            Ok(Some(Directive::Allow { rule }))
        }
        "deny" | "end" => {
            if rule != Rule::PanicPaths {
                return Err(format!(
                    "only panic_paths is region-scoped; `{}({rule_key})` is not a directive",
                    verb.trim()
                ));
            }
            if verb.trim() == "deny" {
                Ok(Some(Directive::Deny))
            } else {
                Ok(Some(Directive::End))
            }
        }
        other => Err(format!("unknown directive `{other}` (allow/deny/end)")),
    }
}

/// Per-file annotation state derived from the comments.
struct Annotations {
    /// rule -> lines findings are exempt on.
    allowed: BTreeMap<Rule, BTreeSet<u32>>,
    /// Inclusive line ranges where panic_paths is active.
    deny_panic: Vec<(u32, u32)>,
    /// Malformed annotations, reported as findings.
    errors: Vec<(u32, String)>,
}

impl Annotations {
    fn collect(lexed: &Lexed) -> Annotations {
        let mut allowed: BTreeMap<Rule, BTreeSet<u32>> = BTreeMap::new();
        let mut deny_starts: Vec<u32> = Vec::new();
        let mut ends: Vec<u32> = Vec::new();
        let mut errors = Vec::new();

        for c in &lexed.comments {
            match parse_directive(&c.text) {
                Ok(None) => {}
                Ok(Some(Directive::Allow { rule })) => {
                    allowed
                        .entry(rule)
                        .or_default()
                        .insert(applies_to_line(lexed, c));
                }
                Ok(Some(Directive::Deny)) => deny_starts.push(c.start_line),
                Ok(Some(Directive::End)) => ends.push(c.start_line),
                Err(msg) => errors.push((c.start_line, msg)),
            }
        }

        // Pair each deny with the first end after it (or EOF).
        let mut deny_panic = Vec::new();
        let mut ends = ends.into_iter().peekable();
        for start in deny_starts {
            while ends.peek().is_some_and(|&e| e < start) {
                ends.next();
            }
            let stop = ends.next().unwrap_or(u32::MAX);
            deny_panic.push((start, stop));
        }

        Annotations {
            allowed,
            deny_panic,
            errors,
        }
    }

    fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.allowed
            .get(&rule)
            .is_some_and(|lines| lines.contains(&line))
    }

    fn in_panic_region(&self, line: u32) -> bool {
        self.deny_panic.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// The line an `allow` annotation exempts: its own line when it trails
/// code, otherwise the next line that has code on it.
fn applies_to_line(lexed: &Lexed, c: &Comment) -> u32 {
    if lexed.line_has_tokens(c.start_line) {
        return c.start_line;
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > c.end_line)
        .unwrap_or(c.start_line)
}

/// Lints one file's source. `rel_path` is used for diagnostics and (via
/// [`Policy::for_path`] in the workspace walker) scoping; here the
/// caller supplies the policy directly so fixtures can exercise both.
pub fn lint_source(rel_path: &str, src: &str, policy: Policy) -> Vec<Finding> {
    let lexed = lex(src);
    let notes = Annotations::collect(&lexed);
    let mut findings = Vec::new();

    for (line, msg) in &notes.errors {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: *line,
            rule: Rule::Annotation,
            message: msg.clone(),
        });
    }

    if policy.sim {
        wall_clock(rel_path, &lexed, &notes, &mut findings);
        unordered_iter(rel_path, &lexed, &notes, &mut findings);
    }
    panic_paths(rel_path, &lexed, &notes, &mut findings);
    unsafe_hygiene(rel_path, &lexed, &notes, &mut findings);

    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
}

fn is_ident(t: &Tok, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

/// `Instant::now` / `SystemTime::now` call paths.
fn wall_clock(file: &str, lexed: &Lexed, notes: &Annotations, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        let clock = toks[i].kind == TokKind::Ident
            && (toks[i].text == "Instant" || toks[i].text == "SystemTime");
        if clock
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':')
            && is_ident(&toks[i + 3], "now")
        {
            let line = toks[i].line;
            if notes.is_allowed(Rule::WallClock, line) {
                continue;
            }
            out.push(Finding {
                file: file.to_string(),
                line,
                rule: Rule::WallClock,
                message: format!(
                    "`{}::now` in simulation code: wall time is nondeterministic and must \
                     never feed a report (cost-only uses: `// cd-lint: allow(wall_clock) -- <why>`)",
                    toks[i].text
                ),
            });
        }
    }
}

/// Iteration methods whose order is the hasher's, not the program's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Collects names bound to `HashMap`/`HashSet` types in this file:
/// type aliases, field/param declarations (`name: HashMap<…>`) and
/// let-bindings (`let name = HashMap::new()`), then flags iteration
/// over those names. Name-based and file-local on purpose: with no
/// type inference available, matching declared names inside the same
/// file catches every hazard class the workspace actually has, without
/// chasing cross-crate types.
fn unordered_iter(file: &str, lexed: &Lexed, notes: &Annotations, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut hash_types: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    // Pass 0: type aliases onto hash types (`type AddrMap<V> = HashMap<…>;`).
    for i in 0..toks.len() {
        if is_ident(&toks[i], "type") && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut aliased = false;
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if toks[j].kind == TokKind::Ident && hash_types.contains(&toks[j].text) {
                    aliased = true;
                }
                j += 1;
            }
            if aliased {
                hash_types.insert(name);
            }
        }
    }

    // Pass 1: names declared with a hash type.
    let mut hash_named: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len() {
        // `name: <type containing a hash type>` — struct fields, fn
        // params, let ascriptions, struct-literal fields initialized
        // from a hash constructor.
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
            && !toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
            && !(i > 0 && is_punct(&toks[i - 1], ':'))
        {
            let mut angle = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if is_punct(t, '<') {
                    angle += 1;
                } else if is_punct(t, '>') {
                    angle -= 1;
                } else if angle <= 0
                    && (is_punct(t, ',')
                        || is_punct(t, ';')
                        || is_punct(t, '=')
                        || is_punct(t, '{')
                        || is_punct(t, ')'))
                {
                    break;
                } else if t.kind == TokKind::Ident && hash_types.contains(&t.text) {
                    hash_named.insert(toks[i].text.clone());
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = <expr containing a hash constructor>;`
        if is_ident(&toks[i], "let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| is_ident(t, "mut")) {
                k += 1;
            }
            if toks.get(k).map(|t| t.kind) != Some(TokKind::Ident) {
                continue;
            }
            let name = toks[k].text.clone();
            let mut j = k + 1;
            while j < toks.len() && !is_punct(&toks[j], ';') {
                if toks[j].kind == TokKind::Ident && hash_types.contains(&toks[j].text) {
                    hash_named.insert(name.clone());
                    break;
                }
                j += 1;
            }
        }
    }

    let flag = |line: u32, name: &str, how: &str, out: &mut Vec<Finding>| {
        if notes.is_allowed(Rule::UnorderedIter, line) {
            return;
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: Rule::UnorderedIter,
            message: format!(
                "{how} over hash-ordered `{name}`: iteration order is the hasher's, so any \
                 fold into observable state breaks the byte-identical invariant (sort the keys, \
                 use a BTreeMap, or `// cd-lint: allow(unordered_iter) -- <order-independence proof>`)"
            ),
        });
    };

    // Pass 2a: `name.iter()` / `.values()` / … method iteration.
    for i in 1..toks.len() {
        if is_punct(&toks[i], '.')
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|t| is_punct(t, '('))
            && toks[i - 1].kind == TokKind::Ident
            && hash_named.contains(&toks[i - 1].text)
        {
            flag(toks[i + 1].line, &toks[i - 1].text, "method iteration", out);
        }
    }

    // Pass 2b: `for pat in [&][mut] [self.]name {` loop iteration.
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "for") {
            continue;
        }
        // Find the matching `in` at bracket depth 0 (patterns may nest).
        let mut depth = 0i32;
        let mut j = i + 1;
        let in_at = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if is_punct(t, '(') || is_punct(t, '[') => depth += 1,
                Some(t) if is_punct(t, ')') || is_punct(t, ']') => depth -= 1,
                Some(t) if depth == 0 && is_ident(t, "in") => break Some(j),
                Some(t) if depth == 0 && is_punct(t, '{') => break None,
                Some(_) => {}
            }
            j += 1;
        };
        let Some(in_at) = in_at else { continue };
        // The loop expression: tokens up to the body `{` at depth 0.
        let mut expr: Vec<&Tok> = Vec::new();
        let mut depth = 0i32;
        let mut j = in_at + 1;
        while let Some(t) = toks.get(j) {
            if depth == 0 && is_punct(t, '{') {
                break;
            }
            if is_punct(t, '(') || is_punct(t, '[') {
                depth += 1;
            } else if is_punct(t, ')') || is_punct(t, ']') {
                depth -= 1;
            }
            expr.push(t);
            j += 1;
        }
        // Match (&)(mut)(self.)?name exactly — anything fancier either
        // shows up as a method call (pass 2a) or is out of scope.
        let mut e: &[&Tok] = &expr;
        while e
            .first()
            .is_some_and(|t| is_punct(t, '&') || is_ident(t, "mut"))
        {
            e = &e[1..];
        }
        let name = match e {
            [one] if one.kind == TokKind::Ident => &one.text,
            [s, dot, f]
                if is_ident(s, "self") && is_punct(dot, '.') && f.kind == TokKind::Ident =>
            {
                &f.text
            }
            _ => continue,
        };
        if hash_named.contains(name) {
            flag(toks[in_at].line, name, "`for` loop", out);
        }
    }
}

/// Panic-capable constructs inside `deny(panic_paths)` regions.
fn panic_paths(file: &str, lexed: &Lexed, notes: &Annotations, out: &mut Vec<Finding>) {
    if notes.deny_panic.is_empty() {
        return;
    }
    let toks = &lexed.tokens;
    let flag = |line: u32, what: String, out: &mut Vec<Finding>| {
        if !notes.in_panic_region(line) || notes.is_allowed(Rule::PanicPaths, line) {
            return;
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: Rule::PanicPaths,
            message: format!(
                "{what} in a deny(panic_paths) region: hostile input must book an error, \
                 never panic (return an error/None, or `// cd-lint: allow(panic_paths) -- <bound proof>`)"
            ),
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap()` / `.expect(`.
        if is_punct(t, '.')
            && toks
                .get(i + 1)
                .is_some_and(|n| is_ident(n, "unwrap") || is_ident(n, "expect"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, '('))
        {
            flag(toks[i + 1].line, format!("`.{}(…)`", toks[i + 1].text), out);
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|n| is_punct(n, '!'))
        {
            flag(t.line, format!("`{}!`", t.text), out);
        }
        // Index expressions: `[` directly after an expression tail
        // (identifier, `)`, `]` or a literal). Array *types* and
        // literals follow `:`/`<`/`=`/`(`/`,`/`&` and stay clean.
        if is_punct(t, '[') && i > 0 {
            let prev = &toks[i - 1];
            let indexes = matches!(prev.kind, TokKind::Ident | TokKind::Literal)
                || is_punct(prev, ')')
                || is_punct(prev, ']');
            // Keywords before `[` mean a fresh array expression.
            let keyword = prev.kind == TokKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "return" | "in" | "else" | "match" | "mut" | "let" | "ref" | "if"
                );
            if indexes && !keyword {
                flag(t.line, "slice/array indexing".to_string(), out);
            }
        }
    }
}

/// `unsafe` blocks and impls need an adjacent `// SAFETY:` comment.
fn unsafe_hygiene(file: &str, lexed: &Lexed, notes: &Annotations, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "unsafe") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        let what = if is_punct(next, '{') {
            "unsafe block"
        } else if is_ident(next, "impl") {
            "unsafe impl"
        } else {
            // `unsafe fn` / `unsafe trait` / `unsafe extern` are
            // declarations of obligations, not discharges of them.
            continue;
        };
        let line = toks[i].line;
        if has_safety_comment(lexed, line) || notes.is_allowed(Rule::UnsafeHygiene, line) {
            continue;
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: Rule::UnsafeHygiene,
            message: format!(
                "{what} without a `// SAFETY:` comment: state the obligation the caller \
                 discharges, directly above or on the same line"
            ),
        });
    }
}

/// A `SAFETY:` comment counts when it is on the same line as the
/// `unsafe`, or in the contiguous run of comment-only lines directly
/// above it.
fn has_safety_comment(lexed: &Lexed, unsafe_line: u32) -> bool {
    let covers = |line: u32| -> Option<bool> {
        let mut any = false;
        for c in &lexed.comments {
            if c.start_line <= line && line <= c.end_line {
                any = true;
                if c.text.contains("SAFETY:") {
                    return Some(true);
                }
            }
        }
        if any {
            Some(false)
        } else {
            None
        }
    };
    // Trailing on the same line.
    if covers(unsafe_line) == Some(true) {
        return true;
    }
    // Walk up through comment-only lines.
    let mut line = unsafe_line.saturating_sub(1);
    while line >= 1 {
        if lexed.line_has_tokens(line) {
            return false;
        }
        match covers(line) {
            Some(true) => return true,
            Some(false) => {}
            None => return false, // blank line: not adjacent any more
        }
        line -= 1;
    }
    false
}
