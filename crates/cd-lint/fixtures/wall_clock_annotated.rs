// Fixture: justified allows on their own line and trailing a statement.
use std::time::Instant;

fn cost_probe() -> f64 {
    // cd-lint: allow(wall_clock) -- cost-only EWMA observation, never feeds the report
    let started = Instant::now();
    started.elapsed().as_secs_f64()
}

fn trailing() {
    let _t = Instant::now(); // cd-lint: allow(wall_clock) -- diagnostic field, excluded from report comparisons
}
