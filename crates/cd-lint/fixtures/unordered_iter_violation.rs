// Fixture: hash-ordered iteration through fields, aliases and locals.
use std::collections::{HashMap, HashSet};

type Index = HashMap<u32, u32>;

struct Table {
    routes: HashMap<(u32, u32), u32>,
    seen: HashSet<u64>,
    by_alias: Index,
}

impl Table {
    fn for_loop_leaks_order(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (_k, v) in &self.routes {
            out.push(*v);
        }
        out
    }

    fn method_iteration_leaks_order(&self) -> usize {
        self.seen.iter().count()
    }

    fn alias_is_still_a_hash_map(&self) -> usize {
        self.by_alias.values().count()
    }
}

fn local_binding() {
    let pending = HashSet::new();
    for p in &pending {
        let _: &u64 = p;
    }
}
