// Fixture: SAFETY discharges in every accepted position; unsafe fn
// declarations need none.
static mut COUNTER: u64 = 0;

pub fn above() {
    // SAFETY: single-threaded fixture; no concurrent access exists.
    unsafe {
        COUNTER += 1;
    }
}

pub fn trailing() {
    unsafe { COUNTER += 1 } // SAFETY: same single-threaded guarantee.
}

pub fn multi_line_comment_above() {
    // The obligation can take several comment lines to state.
    // SAFETY: still single-threaded; the counter is a plain integer
    // with no invariants beyond its own value.
    unsafe {
        COUNTER += 1;
    }
}

pub struct Wrapper(*mut u8);

/* SAFETY: the raw pointer is only dereferenced on the owning thread;
   sending the wrapper moves ownership wholesale. */
unsafe impl Send for Wrapper {}

/// An `unsafe fn` *declares* an obligation rather than discharging
/// one, so no SAFETY comment is demanded at the signature.
pub unsafe fn requires_caller_proof() {}
