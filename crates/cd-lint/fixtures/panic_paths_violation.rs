// Fixture: every forbidden construct inside a deny region fires.
// cd-lint: deny(panic_paths)

pub fn decode(payload: &[u8]) -> u8 {
    let first = payload[0];
    let second = *payload.get(1).unwrap();
    let third = *payload.get(2).expect("third byte");
    if first > 10 {
        panic!("bad header");
    }
    match second {
        0 => unreachable!("zero is filtered upstream"),
        _ => first.wrapping_add(second).wrapping_add(third),
    }
}
