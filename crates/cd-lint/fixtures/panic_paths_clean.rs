// Fixture: a booked-error decode path, an allow with a bound proof,
// and a region end after which unwrap is legal again.

// cd-lint: deny(panic_paths)
pub fn decode(payload: &[u8]) -> Option<u8> {
    let first = payload.first().copied()?;
    let rest = payload.get(1..)?;
    let mut sum = first;
    for b in rest {
        sum = sum.wrapping_add(*b);
    }
    let fixed: [u8; 2] = [first, sum];
    Some(fixed[0]) // cd-lint: allow(panic_paths) -- const index into a fixed-size array: compile-checked
}
// cd-lint: end(panic_paths)

pub fn outside_the_region(v: Option<u8>) -> u8 {
    v.unwrap()
}
