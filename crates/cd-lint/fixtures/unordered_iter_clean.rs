// Fixture: lookups, ordered containers, look-alike names and audited
// iteration all stay quiet.
use std::collections::{BTreeMap, HashMap};

struct Clean {
    routes: HashMap<u32, u32>,
    ordered: BTreeMap<u32, u32>,
}

impl Clean {
    fn lookups_are_fine(&self) -> Option<u32> {
        self.routes.get(&7).copied()
    }

    fn inserts_are_fine(&mut self) {
        self.routes.insert(1, 2);
        let _ = self.routes.contains_key(&1);
    }

    fn btree_iteration_is_ordered(&self) -> u32 {
        self.ordered.values().sum()
    }

    fn slices_are_ordered(items: &[u32]) -> u32 {
        items.iter().sum()
    }

    fn audited(&self) -> u64 {
        let mut n = 0u64;
        // cd-lint: allow(unordered_iter) -- commutative count: order cannot reach observable state
        for _ in self.routes.values() {
            n += 1;
        }
        n
    }
}
