// Fixture: naked unsafe block and unsafe impl both fire.
static mut COUNTER: u64 = 0;

pub fn bump() {
    unsafe {
        COUNTER += 1;
    }
}

pub struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}
