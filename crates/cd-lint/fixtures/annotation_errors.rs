// Fixture: malformed annotations are findings themselves.

// cd-lint: allow(wall_clock)
fn missing_justification() {}

// cd-lint: allow(made_up_rule) -- justification for a rule that does not exist
fn unknown_rule() {}

// cd-lint: frobnicate(wall_clock) -- not a directive
fn unknown_verb() {}

// cd-lint: deny(wall_clock)
fn only_panic_paths_is_region_scoped() {}
