// Fixture: both forbidden clock reads fire; strings and comments do not.
use std::time::{Instant, SystemTime};

fn bad_instant() -> f64 {
    let started = Instant::now();
    started.elapsed().as_secs_f64()
}

fn bad_system_time() {
    let _ = SystemTime::now();
}

fn false_positives_stay_quiet() {
    let _msg = "Instant::now() in a string is prose, not a clock read";
    // Instant::now() in a comment is prose too.
}
