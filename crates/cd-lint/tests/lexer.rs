//! Lexer unit tests: the classic false-positive traps. A lint built on
//! a token scanner is only as trustworthy as its handling of raw
//! strings, nested comments and char-versus-lifetime quotes — each test
//! here is a way a naive scanner would have mis-lexed real code.

use cd_lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn string_contents_are_not_tokens() {
    // The trap the wall_clock rule would otherwise fall into: a string
    // (or format template) mentioning the forbidden path.
    let src = r#"let msg = "Instant::now() is forbidden"; call(msg);"#;
    let ids = idents(src);
    assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    assert!(!ids.contains(&"now".to_string()));
    assert!(ids.contains(&"call".to_string()));
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let src = r#"let s = "he said \"Instant::now\" loudly"; after();"#;
    let ids = idents(src);
    assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    assert!(ids.contains(&"after".to_string()));
}

#[test]
fn raw_strings_with_fences() {
    // A raw string containing a quote and a would-be terminator.
    let src = r###"let s = r#"quote " and Instant::now() inside"#; tail();"###;
    let ids = idents(src);
    assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    assert!(ids.contains(&"tail".to_string()));
}

#[test]
fn raw_string_multi_hash_fence() {
    let src = r####"let s = r##"inner "# not the end, HashMap"##; done();"####;
    let ids = idents(src);
    assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
    assert!(ids.contains(&"done".to_string()));
}

#[test]
fn byte_strings_and_byte_chars() {
    let src = r#"let a = b"Instant"; let c = b'x'; let d = b'\n'; keep();"#;
    let ids = idents(src);
    assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    assert!(!ids.contains(&"x".to_string()));
    assert!(ids.contains(&"keep".to_string()));
}

#[test]
fn line_comments_are_captured_not_tokenized() {
    let src = "// Instant::now() in prose\nlet x = 1;";
    let lexed = lex(src);
    assert!(!idents(src).contains(&"Instant".to_string()));
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("Instant::now"));
    assert_eq!(lexed.comments[0].start_line, 1);
}

#[test]
fn nested_block_comments() {
    // Rust block comments nest; a scanner that stops at the first `*/`
    // would resume lexing inside the comment.
    let src = "/* outer /* inner */ still comment: Instant::now() */ let x = 1; after();";
    let lexed = lex(src);
    let ids = idents(src);
    assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
    assert!(ids.contains(&"after".to_string()));
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("still comment"));
}

#[test]
fn block_comment_line_spans() {
    let src = "let a = 1;\n/* SAFETY: spans\n   two lines */\nunsafe { op() }";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert_eq!(lexed.comments[0].start_line, 2);
    assert_eq!(lexed.comments[0].end_line, 3);
    // The `unsafe` token lands on line 4.
    let unsafe_tok = lexed
        .tokens
        .iter()
        .find(|t| t.text == "unsafe")
        .expect("unsafe token");
    assert_eq!(unsafe_tok.line, 4);
}

#[test]
fn char_literals_versus_lifetimes() {
    // 'a' is a char; 'a (in a generic) is a lifetime; '\'' is an
    // escaped char. A confused scanner would swallow code after a
    // lifetime looking for a closing quote.
    let src = "fn f<'a>(x: &'a str) { let c = 'y'; let q = '\\''; let n = '\\n'; tail(); }";
    let lexed = lex(src);
    let lifetimes: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    assert!(idents(src).contains(&"tail".to_string()));
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
        .count();
    assert_eq!(chars, 3, "three char literals");
}

#[test]
fn static_lifetime_and_loop_labels() {
    let src = "fn f(x: &'static str) { 'outer: loop { break 'outer; } } done();";
    let lexed = lex(src);
    let lifetimes: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(lifetimes, vec!["'static", "'outer", "'outer"]);
    assert!(idents(src).contains(&"done".to_string()));
}

#[test]
fn raw_identifiers_lex_as_their_name() {
    let src = "let r#type = 1; use_it(r#type);";
    let ids = idents(src);
    assert_eq!(ids.iter().filter(|s| s.as_str() == "type").count(), 2);
}

#[test]
fn numbers_do_not_eat_methods_or_ranges() {
    let src = "let a = 1.5; let b = 1..5; let c = 2.0e6; let d = 7.max(3); let e = 0x1F;";
    let lexed = lex(src);
    assert!(idents(src).contains(&"max".to_string()));
    // `1..5` must produce two dots (range), not a malformed float.
    let dots = lexed.tokens.iter().filter(|t| t.text == ".").count();
    assert_eq!(dots, 3, "two range dots + one method dot");
}

#[test]
fn token_lines_are_tracked() {
    let src = "let a = 1;\nlet b = 2;\n\nlet c = 3;";
    let lexed = lex(src);
    assert!(lexed.line_has_tokens(1));
    assert!(lexed.line_has_tokens(2));
    assert!(!lexed.line_has_tokens(3));
    assert!(lexed.line_has_tokens(4));
}

#[test]
fn unterminated_constructs_do_not_panic() {
    // A lint must survive anything it is pointed at.
    for src in ["let s = \"open", "/* open", "let c = '", "r#\"open"] {
        let _ = lex(src);
    }
}
