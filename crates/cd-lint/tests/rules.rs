//! Fixture-driven rule tests: each rule has a fixture that must fire
//! (with exact lines) and a fixture that must stay quiet.

use cd_lint::{lint_source, Policy, Rule};

const SIM: Policy = Policy { sim: true };
const NON_SIM: Policy = Policy { sim: false };

/// Lints a fixture and returns `(line, rule)` pairs.
fn lint(src: &str, policy: Policy) -> Vec<(u32, Rule)> {
    lint_source("fixture.rs", src, policy)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn wall_clock_fires_on_both_clocks_only() {
    let src = include_str!("../fixtures/wall_clock_violation.rs");
    assert_eq!(
        lint(src, SIM),
        vec![(5, Rule::WallClock), (10, Rule::WallClock)],
    );
}

#[test]
fn wall_clock_is_quiet_outside_sim_crates() {
    let src = include_str!("../fixtures/wall_clock_violation.rs");
    assert_eq!(lint(src, NON_SIM), vec![]);
}

#[test]
fn wall_clock_allows_suppress_with_justification() {
    let src = include_str!("../fixtures/wall_clock_annotated.rs");
    assert_eq!(lint(src, SIM), vec![]);
}

#[test]
fn unordered_iter_fires_on_fields_aliases_and_locals() {
    let src = include_str!("../fixtures/unordered_iter_violation.rs");
    assert_eq!(
        lint(src, SIM),
        vec![
            (15, Rule::UnorderedIter), // for (_k, v) in &self.routes
            (22, Rule::UnorderedIter), // self.seen.iter()
            (26, Rule::UnorderedIter), // self.by_alias.values() via type alias
            (32, Rule::UnorderedIter), // for p in &pending (local binding)
        ],
    );
}

#[test]
fn unordered_iter_ignores_lookups_ordered_maps_and_audited_loops() {
    let src = include_str!("../fixtures/unordered_iter_clean.rs");
    assert_eq!(lint(src, SIM), vec![]);
}

#[test]
fn panic_paths_fires_on_every_construct_in_a_region() {
    let src = include_str!("../fixtures/panic_paths_violation.rs");
    assert_eq!(
        lint(src, SIM),
        vec![
            (5, Rule::PanicPaths),  // payload[0]
            (6, Rule::PanicPaths),  // .unwrap()
            (7, Rule::PanicPaths),  // .expect()
            (9, Rule::PanicPaths),  // panic!
            (12, Rule::PanicPaths), // unreachable!
        ],
    );
}

#[test]
fn panic_paths_applies_in_non_sim_files_too() {
    // The region marker opts in regardless of crate classification.
    let src = include_str!("../fixtures/panic_paths_violation.rs");
    assert_eq!(lint(src, NON_SIM).len(), 5);
}

#[test]
fn panic_paths_respects_booked_errors_allows_and_region_end() {
    let src = include_str!("../fixtures/panic_paths_clean.rs");
    assert_eq!(lint(src, SIM), vec![]);
}

#[test]
fn unsafe_hygiene_fires_on_blocks_and_impls() {
    let src = include_str!("../fixtures/unsafe_violation.rs");
    assert_eq!(
        lint(src, NON_SIM),
        vec![(5, Rule::UnsafeHygiene), (12, Rule::UnsafeHygiene)],
    );
}

#[test]
fn unsafe_hygiene_accepts_safety_comments_in_every_position() {
    let src = include_str!("../fixtures/unsafe_clean.rs");
    assert_eq!(lint(src, NON_SIM), vec![]);
}

#[test]
fn malformed_annotations_are_findings() {
    let src = include_str!("../fixtures/annotation_errors.rs");
    assert_eq!(
        lint(src, NON_SIM),
        vec![
            (3, Rule::Annotation),  // allow without justification
            (6, Rule::Annotation),  // unknown rule name
            (9, Rule::Annotation),  // unknown verb
            (12, Rule::Annotation), // deny on a non-region rule
        ],
    );
}

#[test]
fn policy_classifies_sim_sources_only() {
    assert!(Policy::for_path("crates/virt-net/src/net.rs").sim);
    assert!(Policy::for_path("crates/sim-core/src/event.rs").sim);
    assert!(Policy::for_path("crates/fleet/src/gcs.rs").sim);
    // Tests of sim crates may time things and probe hash maps.
    assert!(!Policy::for_path("crates/fleet/tests/zero_alloc.rs").sim);
    // The lint tool itself walks real directory trees.
    assert!(!Policy::for_path("crates/cd-lint/src/lib.rs").sim);
    assert!(!Policy::for_path("src/main.rs").sim);
}

#[test]
fn findings_render_rustc_style() {
    let src = include_str!("../fixtures/wall_clock_violation.rs");
    let findings = lint_source("crates/x/src/lib.rs", src, SIM);
    let rendered = findings[0].to_string();
    assert!(rendered.starts_with("error[wall_clock]: "), "{rendered}");
    assert!(
        rendered.ends_with("--> crates/x/src/lib.rs:5"),
        "{rendered}"
    );
}
