//! The metrics registry: pre-registered families with fixed label sets,
//! lock-free atomic updates, Prometheus text and JSON exposition.
//!
//! Registration (naming a family, attaching a labeled child) takes the
//! registry mutex and happens once, before the run. The handles a
//! registration returns — [`Counter`], [`Gauge`], [`Histogram`] — are
//! `Arc`-shared atomics: updating one from a worker thread is a relaxed
//! atomic op, no lock, no allocation. Exposition walks the registry
//! under the mutex and reads every atomic once; a mid-run scrape
//! observes a racy-but-valid snapshot, which is exactly what a metrics
//! surface is for. Nothing in the simulation ever reads a metric back,
//! so none of this can leak into a report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Publishes a cumulative total computed elsewhere (the fleet's
    /// per-batch sums over per-vehicle counters). The caller owns
    /// monotonicity.
    pub fn store(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// The shared atomic behind this counter, for wiring an external
    /// writer (e.g. a network stack's own packet counters) directly to a
    /// registered series: every increment the writer makes is visible to
    /// the next scrape with no publication pass in between.
    pub fn shared(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.0)
    }
}

/// A point-in-time value (f64, stored as bits in one atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Publishes a new value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets (ascending); the `+Inf` bucket
    /// is implicit.
    bounds: Vec<f64>,
    /// Per-bound counts (NOT cumulative; exposition accumulates).
    buckets: Vec<AtomicU64>,
    /// Count beyond the last finite bound.
    overflow: AtomicU64,
    count: AtomicU64,
    /// Sum of observations, f64 bits, CAS loop.
    sum_bits: AtomicU64,
}

/// A fixed-bucket distribution. Buckets are chosen at registration; an
/// observation is two relaxed increments plus one CAS loop for the sum.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        match core.bounds.iter().position(|&b| v <= b) {
            Some(i) => core.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => core.overflow.fetch_add(1, Ordering::Relaxed),
        };
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut old = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn key(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Child {
    labels: Vec<(String, String)>,
    value: MetricValue,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    children: Vec<Child>,
}

/// The metric families, in registration order. Shared as
/// `Arc<Registry>` between the simulation (writers) and the exposition
/// server (reader).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> MetricValue,
    ) -> MetricValue {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric `{name}` re-registered with a different type"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    children: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(existing) = family.children.iter().find(|c| c.labels == labels) {
            return clone_value(&existing.value);
        }
        let value = make();
        family.children.push(Child {
            labels,
            value: clone_value(&value),
        });
        value
    }

    /// Registers (or re-fetches) a counter with a fixed label set.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter, || {
            MetricValue::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            MetricValue::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or re-fetches) a gauge with a fixed label set.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge, || {
            MetricValue::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        }) {
            MetricValue::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or re-fetches) a histogram with fixed buckets.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type, or if
    /// `bounds` is empty or not strictly ascending.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(!bounds.is_empty(), "histogram `{name}` needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}` buckets must ascend"
        );
        match self.register(name, help, labels, MetricKind::Histogram, || {
            MetricValue::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                overflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
            })))
        }) {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders every family in Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` once per family, one sample
    /// line per child, histogram children expanded into cumulative
    /// `_bucket`/`_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let families = self.families.lock().expect("metrics registry poisoned");
        for f in families.iter() {
            push_line(&mut out, &["# HELP ", &f.name, " ", &f.help]);
            push_line(&mut out, &["# TYPE ", &f.name, " ", f.kind.key()]);
            for child in &f.children {
                match &child.value {
                    MetricValue::Counter(c) => {
                        sample(
                            &mut out,
                            &f.name,
                            "",
                            &child.labels,
                            None,
                            &c.get().to_string(),
                        );
                    }
                    MetricValue::Gauge(g) => {
                        sample(
                            &mut out,
                            &f.name,
                            "",
                            &child.labels,
                            None,
                            &fmt_f64(g.get()),
                        );
                    }
                    MetricValue::Histogram(h) => {
                        let core = &h.0;
                        let mut cum = 0u64;
                        for (bound, count) in core.bounds.iter().zip(&core.buckets) {
                            cum += count.load(Ordering::Relaxed);
                            sample(
                                &mut out,
                                &f.name,
                                "_bucket",
                                &child.labels,
                                Some(&fmt_f64(*bound)),
                                &cum.to_string(),
                            );
                        }
                        cum += core.overflow.load(Ordering::Relaxed);
                        sample(
                            &mut out,
                            &f.name,
                            "_bucket",
                            &child.labels,
                            Some("+Inf"),
                            &cum.to_string(),
                        );
                        sample(
                            &mut out,
                            &f.name,
                            "_sum",
                            &child.labels,
                            None,
                            &fmt_f64(h.sum()),
                        );
                        sample(
                            &mut out,
                            &f.name,
                            "_count",
                            &child.labels,
                            None,
                            &h.count().to_string(),
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders a JSON snapshot: one object per family with its type and
    /// labeled children. The machine-readable sibling of
    /// [`Registry::render_prometheus`] for JSONL result streams.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push('{');
        let families = self.families.lock().expect("metrics registry poisoned");
        for (fi, f) in families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"type\":\"{}\",\"series\":[",
                f.name,
                f.kind.key()
            );
            for (ci, child) in f.children.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in child.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
                }
                out.push_str("},");
                match &child.value {
                    MetricValue::Counter(c) => {
                        let _ = write!(out, "\"value\":{}", c.get());
                    }
                    MetricValue::Gauge(g) => {
                        let _ = write!(out, "\"value\":{}", fmt_f64(g.get()));
                    }
                    MetricValue::Histogram(h) => {
                        let _ = write!(out, "\"count\":{},\"sum\":{}", h.count(), fmt_f64(h.sum()));
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

fn clone_value(v: &MetricValue) -> MetricValue {
    match v {
        MetricValue::Counter(c) => MetricValue::Counter(c.clone()),
        MetricValue::Gauge(g) => MetricValue::Gauge(g.clone()),
        MetricValue::Histogram(h) => MetricValue::Histogram(h.clone()),
    }
}

fn push_line(out: &mut String, parts: &[&str]) {
    for p in parts {
        out.push_str(p);
    }
    out.push('\n');
}

/// One exposition sample line: `name[suffix]{labels,le} value`.
fn sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Label-value escaping per the text exposition format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// f64 formatting for exposition: integral values print without the
/// trailing `.0` mismatch risk because Rust's shortest-repr `{}` is
/// stable and locale-free.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_in_exposition_format() {
        let reg = Registry::new();
        let hits = reg.counter("cd_test_hits_total", "Test hits.", &[]);
        let depth = reg.gauge("cd_test_depth", "Test depth.", &[("vehicle", "3")]);
        hits.add(41);
        hits.inc();
        depth.set(2.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP cd_test_hits_total Test hits.\n"));
        assert!(text.contains("# TYPE cd_test_hits_total counter\n"));
        assert!(text.contains("\ncd_test_hits_total 42\n"));
        assert!(text.contains("# TYPE cd_test_depth gauge\n"));
        assert!(text.contains("cd_test_depth{vehicle=\"3\"} 2.5\n"));
    }

    #[test]
    fn reregistration_returns_the_same_series() {
        let reg = Registry::new();
        let a = reg.counter("cd_test_total", "One series.", &[("k", "v")]);
        let b = reg.counter("cd_test_total", "One series.", &[("k", "v")]);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        // Exactly one sample line for the pair.
        let text = reg.render_prometheus();
        assert_eq!(text.matches("cd_test_total{").count(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic_at_registration() {
        let reg = Registry::new();
        let _ = reg.counter("cd_test_conflict", "As a counter.", &[]);
        let _ = reg.gauge("cd_test_conflict", "As a gauge.", &[]);
    }

    #[test]
    fn histograms_expose_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("cd_test_span", "Span sizes.", &[], &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5060.5).abs() < 1e-9);
        let text = reg.render_prometheus();
        assert!(text.contains("cd_test_span_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("cd_test_span_bucket{le=\"10\"} 3\n"));
        assert!(text.contains("cd_test_span_bucket{le=\"100\"} 4\n"));
        assert!(text.contains("cd_test_span_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("cd_test_span_count 5\n"));
    }

    #[test]
    fn json_snapshot_mirrors_the_registry() {
        let reg = Registry::new();
        reg.counter("cd_test_a_total", "A.", &[("vehicle", "0")])
            .add(9);
        reg.gauge("cd_test_b", "B.", &[]).set(1.25);
        let json = reg.render_json();
        assert!(json.contains("\"cd_test_a_total\":{\"type\":\"counter\""));
        assert!(json.contains("\"labels\":{\"vehicle\":\"0\"},\"value\":9"));
        assert!(json.contains(
            "\"cd_test_b\":{\"type\":\"gauge\",\"series\":[{\"labels\":{},\"value\":1.25}]}"
        ));
    }
}
