//! **cd-obs** — deterministic observability for the sim stack.
//!
//! The paper's whole argument rests on *observing* the system under
//! attack — detection latency, switch timing, deadline misses — yet an
//! end-of-run CSV is the only surface the repro had. This crate adds the
//! two live surfaces the campaign-as-a-service direction needs, without
//! giving up a byte of determinism:
//!
//! - [`metrics`] — a pre-registered metrics registry (counters, gauges,
//!   fixed-bucket histograms with fixed label sets) updated through
//!   lock-free [`std::sync::atomic::AtomicU64`] handles, rendered in
//!   Prometheus text exposition format or as a JSON snapshot. Metrics
//!   are a *racy* read surface by design: scraping mid-run observes
//!   whatever the worker threads have published so far, and nothing in
//!   the simulation ever reads a metric back.
//! - [`trace`] — fixed-capacity, pre-allocated ring buffers of
//!   sim-time-stamped [`trace::TraceEvent`]s (attack arm/cease, Simplex
//!   switch, crash, deadline skip, leap spans with stop reasons, GCS and
//!   swarm per-window deltas, shard rebalances), drained to JSONL on the
//!   coordinating thread in vehicle-index order — the PR 4/5 merge
//!   discipline — so the stream is byte-identical at any thread count.
//! - [`server`] — a tiny blocking TCP exposition server for live
//!   Prometheus scrapes during fleet runs. The scrape timestamp it
//!   reports is the **only** wall-clock read in the sim stack (behind a
//!   `cd-lint` allow); everything else carries sim time.
//!
//! The hot-path contract: an unattached [`trace::ObsPort`] is one
//! `Option` discriminant test ([`emit!`] is branch-on-a-bool), and a
//! fleet with no registry attached touches no atomics — the zero-alloc
//! and perf gates hold with observability compiled in.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod server;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use server::ObsServer;
pub use trace::{ObsPort, TraceEvent, TraceKind, TraceMask, TraceSink};

/// Records a trace event iff `$port` has a buffer attached.
///
/// The macro exists so call sites stay compile-cheap: when the port is
/// detached (the default — every run without `--trace`), the expansion
/// is a single branch on the port's `Option` discriminant and the event
/// payload expressions are never evaluated.
///
/// ```
/// use cd_obs::{emit, ObsPort, TraceKind};
/// use sim_core::time::SimTime;
///
/// let mut port = ObsPort::detached();
/// // Detached: one branch, the payload is not evaluated.
/// emit!(port, SimTime::ZERO, TraceKind::Crash, "ground", 0, 0);
///
/// port.attach(16, 3);
/// emit!(port, SimTime::from_millis(100), TraceKind::Crash, "ground", 1, 0);
/// assert_eq!(port.len(), 1);
/// ```
#[macro_export]
macro_rules! emit {
    ($port:expr, $t:expr, $kind:expr, $label:expr, $a:expr, $b:expr) => {
        if $port.enabled() {
            $port.record($t, $kind, $label, $a, $b);
        }
    };
}
