//! A tiny blocking TCP exposition server for live Prometheus scrapes.
//!
//! One `std::net::TcpListener` on one background thread, serving:
//!
//! - `GET /metrics` — Prometheus text exposition format
//!   ([`Registry::render_prometheus`]), plus one `cd_obs_scrape_unix_seconds`
//!   gauge stamped from the host clock at scrape time;
//! - `GET /metrics.json` — the JSON snapshot ([`Registry::render_json`]).
//!
//! The scrape timestamp is the **only** wall-clock read in the sim
//! stack. It exists because a Prometheus series without any wall anchor
//! is hard to correlate with the scraper's own clock, and it is safe
//! because the exposition path is strictly read-only: nothing the
//! server computes ever flows back into simulation state, so the
//! nondeterminism stays on the wire.
//!
//! Shutdown is cooperative: [`ObsServer::shutdown`] raises a flag and
//! pokes the listener with a self-connection so the blocking `accept`
//! wakes up and the thread exits.
//!
//! The accept loop never trusts a client: each connection is handed to
//! its own bounded handler thread (a stalled scraper ties up one
//! handler for its read timeout, not the accept loop), the request
//! line is length-capped (`414` past [`MAX_REQUEST_LINE`]), anything
//! that is not a well-formed `GET <path> …` line gets a `400` and a
//! close, and connections past [`MAX_CONNECTIONS`] are shed with a
//! `503` instead of queueing behind a slow-loris.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Registry;

/// Concurrent scrape connections served before new ones are shed with
/// a `503`. Prometheus scrapes one at a time; dozens means a stuck or
/// hostile scraper, and shedding keeps the accept loop responsive.
pub const MAX_CONNECTIONS: usize = 32;

/// Longest accepted request line, bytes. `GET /metrics.json HTTP/1.1`
/// is ~30; anything near this bound is garbage.
pub const MAX_REQUEST_LINE: usize = 1024;

/// A running exposition server. Dropping it (or calling
/// [`ObsServer::shutdown`]) stops the background thread.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and
/// serves `registry` until shutdown.
pub fn serve(registry: Arc<Registry>, addr: &str) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("cd-obs-exposition".to_string())
        .spawn(move || {
            let live = Arc::new(AtomicUsize::new(0));
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                // A stalled scraper must not wedge its handler thread
                // past the timeout, let alone the accept loop.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                if live.load(Ordering::Acquire) >= MAX_CONNECTIONS {
                    let _ = respond(
                        &mut stream,
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "busy\n",
                    );
                    continue;
                }
                live.fetch_add(1, Ordering::AcqRel);
                let conn_registry = Arc::clone(&registry);
                let conn_live = Arc::clone(&live);
                let spawned = std::thread::Builder::new()
                    .name("cd-obs-scrape".to_string())
                    .spawn(move || {
                        // Errors here are a broken/hostile client;
                        // the connection just closes. On success,
                        // drain what the client sent past the request
                        // line — closing with unread bytes queued
                        // turns the close into a TCP reset that can
                        // clobber the response in flight.
                        let mut stream = stream;
                        if handle_scrape(&mut stream, &conn_registry).is_ok() {
                            drain_then_close(&mut stream);
                        }
                        conn_live.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    live.fetch_sub(1, Ordering::AcqRel);
                }
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

impl ObsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the flag makes the thread exit.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How reading one request line ended.
enum RequestLine {
    /// A complete line arrived within the cap.
    Line(String),
    /// No line end within [`MAX_REQUEST_LINE`] bytes.
    TooLong,
    /// The client closed before finishing a line.
    Closed,
}

/// Reads up to the first `\n`, hard-capped at [`MAX_REQUEST_LINE`]
/// bytes. A stalled client hits the socket read timeout and surfaces
/// as `Err`, which closes the connection.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<RequestLine> {
    let mut line = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => return Ok(RequestLine::Closed),
            _ => {
                if byte[0] == b'\n' {
                    return Ok(RequestLine::Line(
                        String::from_utf8_lossy(&line).into_owned(),
                    ));
                }
                if line.len() >= MAX_REQUEST_LINE {
                    return Ok(RequestLine::TooLong);
                }
                line.push(byte[0]);
            }
        }
    }
}

/// Writes one HTTP/1.0 response (connection close, no keep-alive — a
/// scrape per connection keeps the loop trivially robust).
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Sends our FIN, then reads the connection dry (bounded by the
/// socket read timeout and a byte cap) so the eventual close is a
/// clean shutdown, not a reset racing the response.
fn drain_then_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Serves one scrape: reads the bounded request line, routes on the
/// path, answers. Anything malformed gets a `400` (or `414` when the
/// line never ends) and a close — a hostile request must never unwind
/// the server or hold its handler beyond the socket timeout.
fn handle_scrape(stream: &mut TcpStream, registry: &Registry) -> std::io::Result<()> {
    const TEXT: &str = "text/plain; charset=utf-8";
    let line = match read_request_line(stream)? {
        RequestLine::Line(line) => line,
        RequestLine::TooLong => {
            return respond(stream, "414 URI Too Long", TEXT, "request line too long\n")
        }
        RequestLine::Closed => return Ok(()),
    };
    let mut words = line.split_whitespace();
    let (method, path) = match (words.next(), words.next()) {
        (Some(method), Some(path)) => (method, path),
        _ => return respond(stream, "400 Bad Request", TEXT, "malformed request line\n"),
    };
    if method != "GET" {
        return respond(stream, "405 Method Not Allowed", TEXT, "GET only\n");
    }

    let (status, content_type, body) = match path {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            with_scrape_stamp(registry.render_prometheus()),
        ),
        "/metrics.json" => ("200 OK", "application/json", registry.render_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    respond(stream, status, content_type, &body)
}

/// Appends the scrape-time wall-clock gauge to a rendered exposition.
#[allow(clippy::disallowed_methods)] // mirror of the cd-lint allow below
fn with_scrape_stamp(mut body: String) -> String {
    use std::fmt::Write as _;
    // cd-lint: allow(wall_clock) -- scrape-timestamp gauge on the read-only exposition path; never feeds simulation state
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    body.push_str(
        "# HELP cd_obs_scrape_unix_seconds Wall-clock time of this scrape (the sim stack's only wall-clock read).\n",
    );
    body.push_str("# TYPE cd_obs_scrape_unix_seconds gauge\n");
    let _ = writeln!(body, "cd_obs_scrape_unix_seconds {unix}");
    body
}

/// Client-side helper: performs one `GET` against a served path and
/// returns the response body. Used by the observability example and the
/// mid-run scrape tests; plain `curl` works identically from outside.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    // One write: the server answers after its first read, so a request
    // trickled out over several small writes can race the response.
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: cd-obs\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_text_and_json_and_shuts_down() {
        let registry = Arc::new(Registry::new());
        let hits = registry.counter("cd_test_scrapes_total", "Scrapes.", &[]);
        hits.add(5);
        let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let text = scrape(addr, "/metrics").expect("text scrape");
        assert!(text.contains("# TYPE cd_test_scrapes_total counter\n"));
        assert!(text.contains("cd_test_scrapes_total 5\n"));
        assert!(text.contains("# TYPE cd_obs_scrape_unix_seconds gauge\n"));

        // Updates land without re-registration: same atomic.
        hits.add(2);
        let text = scrape(addr, "/metrics").expect("second scrape");
        assert!(text.contains("cd_test_scrapes_total 7\n"));

        let json = scrape(addr, "/metrics.json").expect("json scrape");
        assert!(json.contains("\"cd_test_scrapes_total\":{\"type\":\"counter\""));

        let missing = scrape(addr, "/nope").expect("404 scrape");
        assert_eq!(missing, "not found\n");

        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }

    /// Reads one raw response (status line included) off a request.
    fn raw_request(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(request).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // timing assertion on the serving path, not sim state
    fn stalled_clients_do_not_block_concurrent_scrapes() {
        let registry = Arc::new(Registry::new());
        registry.counter("cd_test_live_total", "Live.", &[]).inc();
        let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // Park several connections that never send a byte, then
        // scrape. Before per-connection handlers, each parked client
        // pinned the accept loop for its whole read timeout.
        let parked: Vec<TcpStream> = (0..4)
            .map(|_| TcpStream::connect(addr).expect("park"))
            .collect();
        let started = std::time::Instant::now(); // cd-lint: allow(wall_clock) -- test latency assertion; no sim state
        let text = scrape(addr, "/metrics").expect("scrape past stalled clients");
        assert!(text.contains("cd_test_live_total 1\n"));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "scrape queued behind stalled clients: {:?}",
            started.elapsed()
        );
        drop(parked);
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_gets_414() {
        let registry = Arc::new(Registry::new());
        let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let mut request = vec![b'A'; MAX_REQUEST_LINE + 64];
        request.extend_from_slice(b"\r\n\r\n");
        let response = raw_request(server.addr(), &request);
        assert!(response.starts_with("HTTP/1.0 414"), "{response}");
        // And the server is still alive afterwards.
        assert!(scrape(server.addr(), "/metrics").is_ok());
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_not_a_panic() {
        let registry = Arc::new(Registry::new());
        let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        for garbage in [&b"\n"[..], b"GET\n", b"\x00\xFF\x80garbage\n"] {
            let response = raw_request(addr, garbage);
            assert!(response.starts_with("HTTP/1.0 400"), "{response:?}");
        }
        let response = raw_request(addr, b"POST /metrics HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
        assert!(scrape(addr, "/metrics").is_ok());
        server.shutdown();
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // retry-loop deadline in a test, not sim state
    fn connections_past_the_cap_are_shed_and_the_server_recovers() {
        let registry = Arc::new(Registry::new());
        registry.counter("cd_test_cap_total", "Cap.", &[]).inc();
        let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        // Saturate the cap with parked connections. Overflow accepts
        // are shed immediately (503 or close) instead of queueing the
        // accept loop behind the stalled herd…
        let parked: Vec<TcpStream> = (0..MAX_CONNECTIONS + 8)
            .map(|_| TcpStream::connect(addr).expect("park"))
            .collect();
        std::thread::sleep(Duration::from_millis(200)); // let accepts drain
        let mut stream = TcpStream::connect(addr).expect("connect over cap");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response); // 503, 200, or reset — just not a hang
        drop(stream);
        // …and once the herd clears, scrapes work again.
        drop(parked);
        let deadline = std::time::Instant::now() + Duration::from_secs(10); // cd-lint: allow(wall_clock) -- test retry deadline; no sim state
        loop {
            if let Ok(text) = scrape(addr, "/metrics") {
                if text.contains("cd_test_cap_total 1\n") {
                    break;
                }
            }
            let now = std::time::Instant::now(); // cd-lint: allow(wall_clock) -- test retry deadline; no sim state
            assert!(
                now <= deadline,
                "server did not recover after the herd cleared"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
        server.shutdown();
    }
}
