//! A tiny blocking TCP exposition server for live Prometheus scrapes.
//!
//! One `std::net::TcpListener` on one background thread, serving:
//!
//! - `GET /metrics` — Prometheus text exposition format
//!   ([`Registry::render_prometheus`]), plus one `cd_obs_scrape_unix_seconds`
//!   gauge stamped from the host clock at scrape time;
//! - `GET /metrics.json` — the JSON snapshot ([`Registry::render_json`]).
//!
//! The scrape timestamp is the **only** wall-clock read in the sim
//! stack. It exists because a Prometheus series without any wall anchor
//! is hard to correlate with the scraper's own clock, and it is safe
//! because the exposition path is strictly read-only: nothing the
//! server computes ever flows back into simulation state, so the
//! nondeterminism stays on the wire.
//!
//! Shutdown is cooperative: [`ObsServer::shutdown`] raises a flag and
//! pokes the listener with a self-connection so the blocking `accept`
//! wakes up and the thread exits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Registry;

/// A running exposition server. Dropping it (or calling
/// [`ObsServer::shutdown`]) stops the background thread.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and
/// serves `registry` until shutdown.
pub fn serve(registry: Arc<Registry>, addr: &str) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("cd-obs-exposition".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if thread_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // A stalled scraper must not wedge the server.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = handle_scrape(stream, &registry);
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

impl ObsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the flag makes the thread exit.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves one scrape: reads the request head, routes on the path,
/// writes an HTTP/1.0 response (connection close, no keep-alive — a
/// scrape per connection keeps the loop trivially robust).
fn handle_scrape(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    let mut head = [0u8; 1024];
    let n = stream.read(&mut head)?;
    let request = String::from_utf8_lossy(&head[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            with_scrape_stamp(registry.render_prometheus()),
        ),
        "/metrics.json" => ("200 OK", "application/json", registry.render_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Appends the scrape-time wall-clock gauge to a rendered exposition.
#[allow(clippy::disallowed_methods)] // mirror of the cd-lint allow below
fn with_scrape_stamp(mut body: String) -> String {
    use std::fmt::Write as _;
    // cd-lint: allow(wall_clock) -- scrape-timestamp gauge on the read-only exposition path; never feeds simulation state
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    body.push_str(
        "# HELP cd_obs_scrape_unix_seconds Wall-clock time of this scrape (the sim stack's only wall-clock read).\n",
    );
    body.push_str("# TYPE cd_obs_scrape_unix_seconds gauge\n");
    let _ = writeln!(body, "cd_obs_scrape_unix_seconds {unix}");
    body
}

/// Client-side helper: performs one `GET` against a served path and
/// returns the response body. Used by the observability example and the
/// mid-run scrape tests; plain `curl` works identically from outside.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    // One write: the server answers after its first read, so a request
    // trickled out over several small writes can race the response.
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: cd-obs\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_text_and_json_and_shuts_down() {
        let registry = Arc::new(Registry::new());
        let hits = registry.counter("cd_test_scrapes_total", "Scrapes.", &[]);
        hits.add(5);
        let server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let text = scrape(addr, "/metrics").expect("text scrape");
        assert!(text.contains("# TYPE cd_test_scrapes_total counter\n"));
        assert!(text.contains("cd_test_scrapes_total 5\n"));
        assert!(text.contains("# TYPE cd_obs_scrape_unix_seconds gauge\n"));

        // Updates land without re-registration: same atomic.
        hits.add(2);
        let text = scrape(addr, "/metrics").expect("second scrape");
        assert!(text.contains("cd_test_scrapes_total 7\n"));

        let json = scrape(addr, "/metrics.json").expect("json scrape");
        assert!(json.contains("\"cd_test_scrapes_total\":{\"type\":\"counter\""));

        let missing = scrape(addr, "/nope").expect("404 scrape");
        assert_eq!(missing, "not found\n");

        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }
}
