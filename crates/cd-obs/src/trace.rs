//! The structured trace layer: sim-time-stamped events in pre-allocated
//! per-source ring buffers, drained to JSONL by the coordinating thread.
//!
//! Determinism by construction: an event carries the virtual clock and a
//! stable source ordinal (vehicle or shard index), never a wall-clock or
//! thread identity. Each simulation source records into its *own*
//! [`ObsPort`] while it advances (possibly on a worker thread); at every
//! poll boundary the coordinating thread drains the ports in
//! vehicle-index order into one [`TraceSink`]. The stream order is
//! therefore `(poll window, source ordinal, emission order)` — a pure
//! function of the simulation, byte-identical at any thread count and
//! under any shard partition.
//!
//! The one deliberately nondeterministic event class, shard rebalances
//! ([`TraceKind::ShardRebalance`] — driven by wall-clock EWMA cost
//! observations, so thread-count-dependent), is masked out of the
//! default stream; [`TraceMask::ALL`] opts into it for executor
//! diagnostics.

use std::io::Write;
use std::sync::{Arc, Mutex};

use sim_core::time::SimTime;

/// What happened. The set is closed on purpose: pre-registering the
/// vocabulary keeps every event fixed-size (no allocation on the record
/// path) and the JSONL schema enumerable in the README.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An attack-timeline entry armed a driver (`label` = attack name).
    AttackArm,
    /// A cease-fire halted every armed driver.
    AttackCease,
    /// The security monitor killed the rx thread and switched actuation
    /// to the safety controller (the paper's Simplex switch).
    SimplexSwitch,
    /// The vehicle's physics declared a crash (`label` = crash kind).
    Crash,
    /// A periodic release was skipped under overrun (`a` = task ordinal,
    /// `b` = release time in ns) — the deadline-miss indicator.
    DeadlineSkip,
    /// The time-leap executor advanced `a` quanta in closed form and
    /// stopped (`label` = stop reason: `release`, `event`, `declined`,
    /// `target`).
    LeapSpan,
    /// Per-poll-window GCS delta for one vehicle: `a` = telemetry
    /// datagrams dropped by the ingress rate limit, `b` = malformed
    /// datagrams booked. Emitted only when nonzero — per-packet events
    /// at flood rates (20 kpps) would swamp any ring.
    GcsWindow,
    /// Per-poll-window swarm delta for one vehicle: `a` = datagrams the
    /// jam footprint dropped (rate limit + overflow), `b` = garbage that
    /// got past the limiter. Emitted only when nonzero.
    SwarmWindow,
    /// The load-balanced partition moved vehicles between shards
    /// (`ord` = shard, `a` = vehicles in the shard). Wall-clock-driven
    /// and thread-count-dependent — excluded from [`TraceMask::default`].
    ShardRebalance,
}

impl TraceKind {
    const COUNT: usize = 9;

    fn bit(self) -> u16 {
        1 << self.index()
    }

    fn index(self) -> usize {
        match self {
            TraceKind::AttackArm => 0,
            TraceKind::AttackCease => 1,
            TraceKind::SimplexSwitch => 2,
            TraceKind::Crash => 3,
            TraceKind::DeadlineSkip => 4,
            TraceKind::LeapSpan => 5,
            TraceKind::GcsWindow => 6,
            TraceKind::SwarmWindow => 7,
            TraceKind::ShardRebalance => 8,
        }
    }

    /// The event kind's name on the wire (the JSONL `kind` field).
    pub fn key(self) -> &'static str {
        match self {
            TraceKind::AttackArm => "attack_arm",
            TraceKind::AttackCease => "attack_cease",
            TraceKind::SimplexSwitch => "simplex_switch",
            TraceKind::Crash => "crash",
            TraceKind::DeadlineSkip => "deadline_skip",
            TraceKind::LeapSpan => "leap_span",
            TraceKind::GcsWindow => "gcs_window",
            TraceKind::SwarmWindow => "swarm_window",
            TraceKind::ShardRebalance => "shard_rebalance",
        }
    }
}

/// Which event kinds a sink keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMask(u16);

impl TraceMask {
    /// Every kind, including the thread-count-dependent shard
    /// rebalances. Streams written under this mask are only comparable
    /// between runs of identical thread count and partition.
    pub const ALL: TraceMask = TraceMask((1 << TraceKind::COUNT as u16) - 1);

    /// The deterministic vocabulary: everything except
    /// [`TraceKind::ShardRebalance`]. Streams under this mask are
    /// byte-identical at any thread count.
    pub const DETERMINISTIC: TraceMask = TraceMask(TraceMask::ALL.0 & !(1 << 8));

    /// `true` when the mask keeps `kind`.
    pub fn keeps(self, kind: TraceKind) -> bool {
        self.0 & kind.bit() != 0
    }
}

impl Default for TraceMask {
    fn default() -> Self {
        TraceMask::DETERMINISTIC
    }
}

/// One fixed-size trace event. `a`/`b` are kind-specific payload words
/// (see [`TraceKind`]); `label` is a static string — attack names, leap
/// stop reasons and crash kinds are all `&'static str` in the sim, so
/// recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock timestamp.
    pub t: SimTime,
    /// Stable source ordinal: vehicle index, or shard index for
    /// [`TraceKind::ShardRebalance`].
    pub ord: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific static annotation (empty when unused).
    pub label: &'static str,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            t: SimTime::ZERO,
            ord: 0,
            kind: TraceKind::Crash,
            label: "",
            a: 0,
            b: 0,
        }
    }
}

/// Appends one event as a JSONL line. Integer-only fields (`t_ns`
/// instead of float seconds), so the rendering is exact and the
/// byte-identity guarantee never hinges on float formatting.
pub fn write_jsonl(ev: &TraceEvent, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"t_ns\":{},\"ord\":{},\"kind\":\"{}\"",
        ev.t.as_nanos(),
        ev.ord,
        ev.kind.key()
    );
    if !ev.label.is_empty() {
        let _ = write!(out, ",\"label\":\"{}\"", ev.label);
    }
    let _ = writeln!(out, ",\"a\":{},\"b\":{}}}", ev.a, ev.b);
}

/// The pre-allocated event ring behind an attached [`ObsPort`]: capacity
/// fixed at attach time, drop-oldest on overflow (with a counter, so a
/// saturated window is visible rather than silent). Overflow is as
/// deterministic as everything else — same events, same capacity, same
/// drops on every run.
#[derive(Debug)]
pub struct TraceBuf {
    ord: u32,
    buf: Box<[TraceEvent]>,
    start: usize,
    len: usize,
    overwritten: u64,
}

impl TraceBuf {
    fn new(capacity: usize, ord: u32) -> Self {
        TraceBuf {
            ord,
            buf: vec![TraceEvent::default(); capacity.max(1)].into_boxed_slice(),
            start: 0,
            len: 0,
            overwritten: 0,
        }
    }

    fn record(&mut self, ev: TraceEvent) {
        let cap = self.buf.len();
        if self.len < cap {
            self.buf[(self.start + self.len) % cap] = ev;
            self.len += 1;
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % cap;
            self.overwritten += 1;
        }
    }
}

/// One simulation source's trace attachment point. Detached (the
/// default) it is a single `Option` discriminant — the whole cost of
/// observability compiled in but unused. Attached, it owns a
/// pre-allocated [`TraceBuf`] stamped with the source's stable ordinal.
#[derive(Debug, Default)]
pub struct ObsPort {
    buf: Option<Box<TraceBuf>>,
}

impl ObsPort {
    /// A port with no buffer: [`ObsPort::enabled`] is `false`,
    /// recording is a no-op branch.
    pub const fn detached() -> Self {
        ObsPort { buf: None }
    }

    /// Attaches a fresh ring of `capacity` events, stamped `ord`. This
    /// is the only allocation the trace path ever performs — do it
    /// before the measured/steady-state window.
    pub fn attach(&mut self, capacity: usize, ord: u32) {
        self.buf = Some(Box::new(TraceBuf::new(capacity, ord)));
    }

    /// Drops the buffer; the port is a no-op branch again.
    pub fn detach(&mut self) {
        self.buf = None;
    }

    /// `true` when a buffer is attached — the [`emit!`](crate::emit)
    /// guard.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.len)
    }

    /// `true` when nothing is buffered (or no buffer is attached).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped (oldest-first) because the ring wrapped.
    pub fn overwritten(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.overwritten)
    }

    /// Records one event. Call through [`emit!`](crate::emit) so the
    /// payload expressions are skipped when the port is detached.
    #[inline]
    pub fn record(&mut self, t: SimTime, kind: TraceKind, label: &'static str, a: u64, b: u64) {
        if let Some(buf) = &mut self.buf {
            let ord = buf.ord;
            buf.record(TraceEvent {
                t,
                ord,
                kind,
                label,
                a,
                b,
            });
        }
    }

    /// Drains the buffered events, oldest first, into `f`, leaving the
    /// ring empty (capacity kept). Called by the coordinating thread at
    /// poll boundaries.
    pub fn drain(&mut self, mut f: impl FnMut(&TraceEvent)) {
        let Some(buf) = &mut self.buf else {
            return;
        };
        let cap = buf.buf.len();
        for k in 0..buf.len {
            f(&buf.buf[(buf.start + k) % cap]);
        }
        buf.start = 0;
        buf.len = 0;
    }
}

/// A shared in-memory byte sink for [`TraceSink::in_memory`] — the
/// test-side handle that outlives the sink and yields the final stream.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Takes the bytes written so far.
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock().expect("trace buffer poisoned"))
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The JSONL endpoint the coordinating thread drains every port into.
/// Owns the writer, the kind mask, and one reused line buffer (the
/// drain path allocates nothing in steady state). Write errors are
/// counted, not propagated — a full disk must not poison simulation
/// state mid-run.
pub struct TraceSink {
    out: Box<dyn Write + Send>,
    mask: TraceMask,
    line: String,
    events: u64,
    io_errors: u64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("mask", &self.mask)
            .field("events", &self.events)
            .field("io_errors", &self.io_errors)
            .finish_non_exhaustive()
    }
}

impl TraceSink {
    /// Wraps any writer under the default (deterministic) mask.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TraceSink {
            out,
            mask: TraceMask::default(),
            line: String::with_capacity(160),
            events: 0,
            io_errors: 0,
        }
    }

    /// Replaces the kind mask (see [`TraceMask::ALL`]).
    #[must_use]
    pub fn with_mask(mut self, mask: TraceMask) -> Self {
        self.mask = mask;
        self
    }

    /// A buffered sink writing JSONL to `path`.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// An in-memory sink plus the shared handle that collects its bytes
    /// — the determinism tests compare these across thread counts.
    pub fn in_memory() -> (Self, SharedBuf) {
        let buf = SharedBuf::default();
        (TraceSink::new(Box::new(buf.clone())), buf)
    }

    /// Writes one event as a JSONL line, if the mask keeps its kind.
    pub fn write_event(&mut self, ev: &TraceEvent) {
        if !self.mask.keeps(ev.kind) {
            return;
        }
        self.line.clear();
        write_jsonl(ev, &mut self.line);
        if self.out.write_all(self.line.as_bytes()).is_err() {
            self.io_errors += 1;
        } else {
            self.events += 1;
        }
    }

    /// Events successfully written.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Write errors swallowed (0 on a healthy sink).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.io_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ms: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_millis(t_ms),
            ord: 2,
            kind,
            label: "",
            a: 1,
            b: 0,
        }
    }

    #[test]
    fn detached_port_records_nothing() {
        let mut port = ObsPort::detached();
        assert!(!port.enabled());
        port.record(SimTime::ZERO, TraceKind::Crash, "", 0, 0);
        assert_eq!(port.len(), 0);
        let mut seen = 0;
        port.drain(|_| seen += 1);
        assert_eq!(seen, 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut port = ObsPort::detached();
        port.attach(3, 9);
        for k in 0..5u64 {
            port.record(
                SimTime::from_millis(k),
                TraceKind::LeapSpan,
                "release",
                k,
                0,
            );
        }
        assert_eq!(port.len(), 3);
        assert_eq!(port.overwritten(), 2);
        let mut seen = Vec::new();
        port.drain(|e| seen.push((e.ord, e.a)));
        assert_eq!(seen, vec![(9, 2), (9, 3), (9, 4)]);
        assert!(port.is_empty());
        // The ring is reusable after a drain.
        port.record(SimTime::ZERO, TraceKind::Crash, "ground", 7, 0);
        assert_eq!(port.len(), 1);
    }

    #[test]
    fn jsonl_shape_is_stable() {
        let mut line = String::new();
        write_jsonl(
            &TraceEvent {
                t: SimTime::from_millis(100),
                ord: 3,
                kind: TraceKind::LeapSpan,
                label: "release",
                a: 1999,
                b: 0,
            },
            &mut line,
        );
        assert_eq!(
            line,
            "{\"t_ns\":100000000,\"ord\":3,\"kind\":\"leap_span\",\"label\":\"release\",\"a\":1999,\"b\":0}\n"
        );
        line.clear();
        write_jsonl(&ev(1, TraceKind::GcsWindow), &mut line);
        assert_eq!(
            line,
            "{\"t_ns\":1000000,\"ord\":2,\"kind\":\"gcs_window\",\"a\":1,\"b\":0}\n"
        );
    }

    #[test]
    fn default_mask_drops_shard_rebalance_only() {
        let (mut sink, buf) = TraceSink::in_memory();
        sink.write_event(&ev(1, TraceKind::ShardRebalance));
        sink.write_event(&ev(2, TraceKind::SimplexSwitch));
        sink.flush();
        assert_eq!(sink.events_written(), 1);
        let text = String::from_utf8(buf.take()).unwrap();
        assert!(text.contains("simplex_switch"));
        assert!(!text.contains("shard_rebalance"));

        let (mut all, buf) = TraceSink::in_memory();
        all = all.with_mask(TraceMask::ALL);
        all.write_event(&ev(1, TraceKind::ShardRebalance));
        assert_eq!(all.events_written(), 1);
        assert!(String::from_utf8(buf.take())
            .unwrap()
            .contains("shard_rebalance"));
    }
}
