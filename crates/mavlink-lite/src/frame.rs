//! MAVLink-v1-style framing.
//!
//! On-wire layout (all lengths in bytes):
//!
//! ```text
//! +-----+-----+-----+-------+--------+-------+----------+-------+
//! | STX | LEN | SEQ | SYSID | COMPID | MSGID | PAYLOAD  | CRC16 |
//! |  1  |  1  |  1  |   1   |   1    |   1   | LEN      |   2   |
//! +-----+-----+-----+-------+--------+-------+----------+-------+
//! ```
//!
//! The CRC covers LEN..PAYLOAD (everything after STX) plus the dialect's
//! per-message `CRC_EXTRA` byte, exactly as MAVLink v1 does, so frames from
//! a different dialect are rejected even when their checksum is internally
//! consistent.

use bytes::BufMut;

use crate::crc::Crc16;
use crate::error::DecodeError;
use crate::messages::{crc_extra_for, Message};

/// Start-of-frame marker (MAVLink v1 uses 0xFE).
pub const STX: u8 = 0xFE;

/// Frame overhead in bytes: 6 header bytes plus the 2-byte checksum.
pub const FRAME_OVERHEAD: usize = 8;

/// A framed message with addressing metadata.
///
/// # Examples
///
/// ```
/// use mavlink_lite::frame::Frame;
/// use mavlink_lite::messages::{Heartbeat, Message};
///
/// let frame = Frame::new(7, 1, 1, Message::Heartbeat(Heartbeat::default()));
/// let wire = frame.encode();
/// let (decoded, used) = Frame::decode(&wire).unwrap();
/// assert_eq!(used, wire.len());
/// assert_eq!(decoded.message, frame.message);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Per-sender sequence number, wrapping at 255.
    pub seq: u8,
    /// Sending system id.
    pub sys_id: u8,
    /// Sending component id.
    pub comp_id: u8,
    /// The carried message.
    pub message: Message,
}

impl Frame {
    /// Wraps `message` in a frame with the given addressing.
    pub fn new(seq: u8, sys_id: u8, comp_id: u8, message: Message) -> Self {
        Frame {
            seq,
            sys_id,
            comp_id,
            message,
        }
    }

    /// Total on-wire size of this frame.
    pub fn wire_len(&self) -> usize {
        self.message.payload_len() + FRAME_OVERHEAD
    }

    /// Serializes the frame to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes the frame by appending to `out` — the allocation-free
    /// encode path: callers hand in a reusable scratch/pooled buffer.
    /// Returns the number of bytes written.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.reserve(self.wire_len());
        out.put_u8(STX);
        out.put_u8(self.message.payload_len() as u8);
        out.put_u8(self.seq);
        out.put_u8(self.sys_id);
        out.put_u8(self.comp_id);
        out.put_u8(self.message.msg_id());
        self.message.encode_payload(out);

        let mut crc = Crc16::new();
        crc.update(&out[start + 1..]); // everything after STX
        crc.update_byte(self.message.crc_extra());
        out.put_u16_le(crc.get());
        out.len() - start
    }

    /// Parses one frame from the start of `bytes`.
    ///
    /// Returns the frame and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::Truncated`] if `bytes` does not begin with `STX` or
    ///   is shorter than a complete frame,
    /// * [`DecodeError::UnknownMessage`] for ids outside the dialect,
    /// * [`DecodeError::BadCrc`] on checksum mismatch,
    /// * [`DecodeError::BadLength`] if the length byte disagrees with the
    ///   message's fixed payload length.
    // Frame bytes arrive off the attacked channel, so the decoder must
    // book every malformation as an error: header fields come from one
    // slice pattern, the payload/CRC split is length-checked up front,
    // and the checksum folds in the header bytes individually (the CRC
    // is a plain byte loop, so this is bit-identical to hashing the
    // contiguous span).
    // cd-lint: deny(panic_paths)
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), DecodeError> {
        let [stx, len_b, seq, sys_id, comp_id, msg_id, rest @ ..] = bytes else {
            return Err(DecodeError::Truncated);
        };
        if *stx != STX {
            return Err(DecodeError::Truncated);
        }
        let len = *len_b as usize;
        let total = len + FRAME_OVERHEAD;
        let Some(body) = rest.get(..len + 2) else {
            return Err(DecodeError::Truncated);
        };
        let (payload, crc_bytes) = body.split_at(len);
        let [c0, c1] = crc_bytes else {
            return Err(DecodeError::Truncated);
        };
        let crc_extra =
            crc_extra_for(*msg_id).ok_or(DecodeError::UnknownMessage { msg_id: *msg_id })?;

        let mut crc = Crc16::new();
        crc.update_byte(*len_b);
        crc.update_byte(*seq);
        crc.update_byte(*sys_id);
        crc.update_byte(*comp_id);
        crc.update_byte(*msg_id);
        crc.update(payload);
        crc.update_byte(crc_extra);
        let actual = crc.get();
        let expected = u16::from_le_bytes([*c0, *c1]);
        if actual != expected {
            return Err(DecodeError::BadCrc { expected, actual });
        }

        let message = Message::decode(*msg_id, payload)?;
        Ok((
            Frame {
                seq: *seq,
                sys_id: *sys_id,
                comp_id: *comp_id,
                message,
            },
            total,
        ))
    }
    // cd-lint: end(panic_paths)
}

/// A sending endpoint that stamps frames with a wrapping sequence number,
/// as a MAVLink channel does.
///
/// # Examples
///
/// ```
/// use mavlink_lite::frame::Sender;
/// use mavlink_lite::messages::Heartbeat;
///
/// let mut tx = Sender::new(1, 1);
/// let a = tx.frame(Heartbeat::default().into());
/// let b = tx.frame(Heartbeat::default().into());
/// assert_eq!(a.seq.wrapping_add(1), b.seq);
/// ```
#[derive(Debug, Clone)]
pub struct Sender {
    sys_id: u8,
    comp_id: u8,
    next_seq: u8,
}

impl Sender {
    /// Creates a sender with the given addressing.
    pub fn new(sys_id: u8, comp_id: u8) -> Self {
        Sender {
            sys_id,
            comp_id,
            next_seq: 0,
        }
    }

    /// Wraps `message` in the next frame of this channel.
    pub fn frame(&mut self, message: Message) -> Frame {
        let f = Frame::new(self.next_seq, self.sys_id, self.comp_id, message);
        self.next_seq = self.next_seq.wrapping_add(1);
        f
    }

    /// Convenience: frame and serialize in one step.
    pub fn encode(&mut self, message: Message) -> Vec<u8> {
        self.frame(message).encode()
    }

    /// Frame and serialize by appending to `out` (the allocation-free
    /// path). Returns the number of bytes written.
    pub fn encode_into(&mut self, message: Message, out: &mut Vec<u8>) -> usize {
        self.frame(message).encode_into(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{MotorOutput, RawImu};

    #[test]
    fn encode_decode_roundtrip() {
        let m = RawImu {
            time_usec: 999,
            gyro: [1.0, 2.0, 3.0],
            accel: [4.0, 5.0, 6.0],
            mag: [7.0, 8.0, 9.0],
        };
        let frame = Frame::new(17, 3, 9, m.into());
        let wire = frame.encode();
        assert_eq!(wire.len(), 52, "IMU frame must be 52 bytes on the wire");
        let (back, used) = Frame::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, frame);
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let frame = Frame::new(0, 1, 1, MotorOutput::default().into());
        let mut wire = frame.encode();
        wire[10] ^= 0x40;
        match Frame::decode(&wire) {
            Err(DecodeError::BadCrc { .. }) => {}
            other => panic!("expected BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn wrong_crc_extra_is_rejected() {
        // Re-checksum a valid frame with a different extra byte: simulates a
        // frame from another dialect with the same msg id.
        let frame = Frame::new(0, 1, 1, MotorOutput::default().into());
        let mut wire = frame.encode();
        let body_end = wire.len() - 2;
        let mut crc = Crc16::new();
        crc.update(&wire[1..body_end]);
        crc.update_byte(0x55); // wrong extra
        let bad = crc.get().to_le_bytes();
        wire[body_end] = bad[0];
        wire[body_end + 1] = bad[1];
        assert!(matches!(
            Frame::decode(&wire),
            Err(DecodeError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncated_input_reports_truncated() {
        let frame = Frame::new(0, 1, 1, MotorOutput::default().into());
        let wire = frame.encode();
        assert_eq!(Frame::decode(&wire[..5]), Err(DecodeError::Truncated));
        assert_eq!(
            Frame::decode(&wire[..wire.len() - 1]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn non_stx_start_reports_truncated() {
        let mut wire = Frame::new(0, 1, 1, MotorOutput::default().into()).encode();
        wire[0] = 0x00;
        assert_eq!(Frame::decode(&wire), Err(DecodeError::Truncated));
    }

    #[test]
    fn sender_sequence_wraps() {
        let mut tx = Sender::new(1, 1);
        tx.next_seq = 255;
        let a = tx.frame(MotorOutput::default().into());
        let b = tx.frame(MotorOutput::default().into());
        assert_eq!(a.seq, 255);
        assert_eq!(b.seq, 0);
    }
}
