//! Error types for encoding and decoding.

use std::error::Error;
use std::fmt;

/// Why a byte sequence failed to decode into a frame or message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The checksum did not match the frame contents.
    BadCrc {
        /// Checksum carried by the frame.
        expected: u16,
        /// Checksum computed over the received bytes.
        actual: u16,
    },
    /// The payload length does not match the message's fixed length.
    BadLength {
        /// Message id whose payload was malformed.
        msg_id: u8,
        /// Length the message defines.
        expected: usize,
        /// Length actually received.
        actual: usize,
    },
    /// The message id is not part of this dialect.
    UnknownMessage {
        /// The unrecognized id.
        msg_id: u8,
    },
    /// The buffer ended before a complete frame was read.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: frame carries {expected:#06x}, computed {actual:#06x}"
                )
            }
            DecodeError::BadLength {
                msg_id,
                expected,
                actual,
            } => write!(
                f,
                "message {msg_id} payload length {actual} does not match expected {expected}"
            ),
            DecodeError::UnknownMessage { msg_id } => {
                write!(f, "unknown message id {msg_id}")
            }
            DecodeError::Truncated => write!(f, "buffer ended before a complete frame"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DecodeError::BadCrc {
            expected: 0xABCD,
            actual: 0x1234,
        };
        let s = e.to_string();
        assert!(s.contains("0xabcd") && s.contains("0x1234"), "{s}");
        assert!(DecodeError::Truncated
            .to_string()
            .contains("complete frame"));
    }
}
