//! The ContainerDrone message dialect.
//!
//! These are the five streams of Table I in the paper, plus a heartbeat.
//! Payload layouts are chosen so the *on-wire frame size* (6-byte header +
//! payload + 2-byte CRC) matches the sizes the paper reports:
//!
//! | Message        | Payload | On-wire | Paper (Table I) |
//! |----------------|---------|---------|------------------|
//! | [`RawImu`]     | 44 B    | 52 B    | 52 B @ 250 Hz    |
//! | [`RawBaro`]    | 24 B    | 32 B    | 32 B @ 50 Hz     |
//! | [`RawGps`]     | 36 B    | 44 B    | 44 B @ 10 Hz     |
//! | [`RcChannels`] | 42 B    | 50 B    | 50 B @ 50 Hz     |
//! | [`MotorOutput`]| 21 B    | 29 B    | 29 B @ 400 Hz    |
//!
//! All multi-byte fields are little-endian, as in MAVLink.

use bytes::{Buf, BufMut};

use crate::error::DecodeError;

/// A message that can be carried as a frame payload.
///
/// Implementations define a fixed message id, a fixed payload length, and a
/// dialect-specific `CRC_EXTRA` byte folded into the frame checksum (so
/// receivers reject frames whose id/layout disagree with the dialect).
pub trait MessagePayload: Sized {
    /// Message id carried in the frame header.
    const MSG_ID: u8;
    /// Fixed payload length in bytes.
    const LEN: usize;
    /// Dialect byte folded into the checksum, as in MAVLink.
    const CRC_EXTRA: u8;

    /// Serializes the payload (exactly [`MessagePayload::LEN`] bytes) into `buf`.
    fn encode_payload(&self, buf: &mut impl BufMut);

    /// Parses the payload from `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadLength`] if `bytes.len() != Self::LEN`.
    fn decode_payload(bytes: &[u8]) -> Result<Self, DecodeError>;
}

fn check_len<M: MessagePayload>(bytes: &[u8]) -> Result<(), DecodeError> {
    if bytes.len() != M::LEN {
        Err(DecodeError::BadLength {
            msg_id: M::MSG_ID,
            expected: M::LEN,
            actual: bytes.len(),
        })
    } else {
        Ok(())
    }
}

/// Inertial sample: body-frame angular rates, accelerations and magnetic
/// field. Sent HCE → CCE at 250 Hz (Table I row 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RawImu {
    /// Sample timestamp, microseconds of simulation time.
    pub time_usec: u64,
    /// Body-frame angular rate, rad/s.
    pub gyro: [f32; 3],
    /// Body-frame specific force, m/s².
    pub accel: [f32; 3],
    /// Body-frame magnetic field, gauss.
    pub mag: [f32; 3],
}

impl MessagePayload for RawImu {
    const MSG_ID: u8 = 105;
    const LEN: usize = 44;
    const CRC_EXTRA: u8 = 93;

    fn encode_payload(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.time_usec);
        for v in self.gyro.iter().chain(&self.accel).chain(&self.mag) {
            buf.put_f32_le(*v);
        }
    }

    fn decode_payload(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        check_len::<Self>(bytes)?;
        let time_usec = bytes.get_u64_le();
        let mut fields = [0f32; 9];
        for f in &mut fields {
            *f = bytes.get_f32_le();
        }
        Ok(RawImu {
            time_usec,
            gyro: [fields[0], fields[1], fields[2]],
            accel: [fields[3], fields[4], fields[5]],
            mag: [fields[6], fields[7], fields[8]],
        })
    }
}

/// Barometer sample. Sent HCE → CCE at 50 Hz (Table I row 2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RawBaro {
    /// Sample timestamp, microseconds of simulation time.
    pub time_usec: u64,
    /// Absolute pressure, hPa.
    pub abs_pressure: f32,
    /// Differential pressure, hPa (unused on a multirotor; kept for layout).
    pub diff_pressure: f32,
    /// Die temperature, °C.
    pub temperature: f32,
    /// Pressure altitude, m.
    pub altitude: f32,
}

impl MessagePayload for RawBaro {
    const MSG_ID: u8 = 29;
    const LEN: usize = 24;
    const CRC_EXTRA: u8 = 115;

    fn encode_payload(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.time_usec);
        buf.put_f32_le(self.abs_pressure);
        buf.put_f32_le(self.diff_pressure);
        buf.put_f32_le(self.temperature);
        buf.put_f32_le(self.altitude);
    }

    fn decode_payload(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        check_len::<Self>(bytes)?;
        Ok(RawBaro {
            time_usec: bytes.get_u64_le(),
            abs_pressure: bytes.get_f32_le(),
            diff_pressure: bytes.get_f32_le(),
            temperature: bytes.get_f32_le(),
            altitude: bytes.get_f32_le(),
        })
    }
}

/// Position fix. In the paper's lab the "GPS" stream is actually Vicon
/// motion-capture positioning forwarded in GPS form; we model the same.
/// Sent HCE → CCE at 10 Hz (Table I row 3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RawGps {
    /// Sample timestamp, microseconds of simulation time.
    pub time_usec: u64,
    /// Latitude, degrees × 1e7.
    pub lat: i32,
    /// Longitude, degrees × 1e7.
    pub lon: i32,
    /// Altitude above the reference, millimetres.
    pub alt_mm: i32,
    /// North velocity, m/s.
    pub vel_n: f32,
    /// East velocity, m/s.
    pub vel_e: f32,
    /// Down velocity, m/s.
    pub vel_d: f32,
    /// Horizontal accuracy, cm.
    pub eph_cm: u16,
    /// Vertical accuracy, cm.
    pub epv_cm: u16,
}

impl MessagePayload for RawGps {
    const MSG_ID: u8 = 24;
    const LEN: usize = 36;
    const CRC_EXTRA: u8 = 24;

    fn encode_payload(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.time_usec);
        buf.put_i32_le(self.lat);
        buf.put_i32_le(self.lon);
        buf.put_i32_le(self.alt_mm);
        buf.put_f32_le(self.vel_n);
        buf.put_f32_le(self.vel_e);
        buf.put_f32_le(self.vel_d);
        buf.put_u16_le(self.eph_cm);
        buf.put_u16_le(self.epv_cm);
    }

    fn decode_payload(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        check_len::<Self>(bytes)?;
        Ok(RawGps {
            time_usec: bytes.get_u64_le(),
            lat: bytes.get_i32_le(),
            lon: bytes.get_i32_le(),
            alt_mm: bytes.get_i32_le(),
            vel_n: bytes.get_f32_le(),
            vel_e: bytes.get_f32_le(),
            vel_d: bytes.get_f32_le(),
            eph_cm: bytes.get_u16_le(),
            epv_cm: bytes.get_u16_le(),
        })
    }
}

/// Radio-control input channels. Sent HCE → CCE at 50 Hz (Table I row 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcChannels {
    /// Sample timestamp, microseconds of simulation time.
    pub time_usec: u64,
    /// Channel values, PWM microseconds (1000–2000; 0 = unused).
    pub channels: [u16; 16],
    /// Number of valid channels.
    pub chan_count: u8,
    /// Receiver signal strength, 0–255.
    pub rssi: u8,
}

impl Default for RcChannels {
    fn default() -> Self {
        RcChannels {
            time_usec: 0,
            channels: [0; 16],
            chan_count: 0,
            rssi: 255,
        }
    }
}

impl MessagePayload for RcChannels {
    const MSG_ID: u8 = 65;
    const LEN: usize = 42;
    const CRC_EXTRA: u8 = 118;

    fn encode_payload(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.time_usec);
        for c in &self.channels {
            buf.put_u16_le(*c);
        }
        buf.put_u8(self.chan_count);
        buf.put_u8(self.rssi);
    }

    fn decode_payload(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        check_len::<Self>(bytes)?;
        let time_usec = bytes.get_u64_le();
        let mut channels = [0u16; 16];
        for c in &mut channels {
            *c = bytes.get_u16_le();
        }
        Ok(RcChannels {
            time_usec,
            channels,
            chan_count: bytes.get_u8(),
            rssi: bytes.get_u8(),
        })
    }
}

/// The complex controller's actuator command: one PWM value per motor.
/// Sent CCE → HCE at 400 Hz (Table I row 5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MotorOutput {
    /// Command timestamp, microseconds of simulation time.
    pub time_usec: u64,
    /// Motor PWM commands, microseconds (1000–2000).
    pub pwm: [u16; 4],
    /// Monotonic command sequence number (detects gaps and replays).
    pub seq: u32,
    /// 1 if the vehicle should be armed.
    pub armed: u8,
}

impl MessagePayload for MotorOutput {
    const MSG_ID: u8 = 140;
    const LEN: usize = 21;
    const CRC_EXTRA: u8 = 181;

    fn encode_payload(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.time_usec);
        for p in &self.pwm {
            buf.put_u16_le(*p);
        }
        buf.put_u32_le(self.seq);
        buf.put_u8(self.armed);
    }

    fn decode_payload(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        check_len::<Self>(bytes)?;
        let time_usec = bytes.get_u64_le();
        let mut pwm = [0u16; 4];
        for p in &mut pwm {
            *p = bytes.get_u16_le();
        }
        Ok(MotorOutput {
            time_usec,
            pwm,
            seq: bytes.get_u32_le(),
            armed: bytes.get_u8(),
        })
    }
}

/// Liveness beacon exchanged between environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Heartbeat {
    /// Autopilot-specific mode bits.
    pub custom_mode: u32,
    /// Vehicle type (2 = quadrotor, matching MAV_TYPE_QUADROTOR).
    pub vehicle_type: u8,
    /// Autopilot identifier (12 = PX4, matching MAV_AUTOPILOT_PX4).
    pub autopilot: u8,
    /// Base mode flags.
    pub base_mode: u8,
    /// System status (3 = standby, 4 = active).
    pub system_status: u8,
    /// Protocol version (3 for MAVLink v1 dialects).
    pub mavlink_version: u8,
}

impl MessagePayload for Heartbeat {
    const MSG_ID: u8 = 0;
    const LEN: usize = 9;
    const CRC_EXTRA: u8 = 50;

    fn encode_payload(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.custom_mode);
        buf.put_u8(self.vehicle_type);
        buf.put_u8(self.autopilot);
        buf.put_u8(self.base_mode);
        buf.put_u8(self.system_status);
        buf.put_u8(self.mavlink_version);
    }

    fn decode_payload(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        check_len::<Self>(bytes)?;
        Ok(Heartbeat {
            custom_mode: bytes.get_u32_le(),
            vehicle_type: bytes.get_u8(),
            autopilot: bytes.get_u8(),
            base_mode: bytes.get_u8(),
            system_status: bytes.get_u8(),
            mavlink_version: bytes.get_u8(),
        })
    }
}

/// Any message of the dialect, as decoded from a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// Inertial sample.
    Imu(RawImu),
    /// Barometer sample.
    Baro(RawBaro),
    /// Position fix.
    Gps(RawGps),
    /// RC input.
    Rc(RcChannels),
    /// Actuator command from the complex controller.
    Motor(MotorOutput),
    /// Liveness beacon.
    Heartbeat(Heartbeat),
}

impl Message {
    /// The message id this variant encodes to.
    pub fn msg_id(&self) -> u8 {
        match self {
            Message::Imu(_) => RawImu::MSG_ID,
            Message::Baro(_) => RawBaro::MSG_ID,
            Message::Gps(_) => RawGps::MSG_ID,
            Message::Rc(_) => RcChannels::MSG_ID,
            Message::Motor(_) => MotorOutput::MSG_ID,
            Message::Heartbeat(_) => Heartbeat::MSG_ID,
        }
    }

    /// The dialect CRC byte of this variant.
    pub fn crc_extra(&self) -> u8 {
        crc_extra_for(self.msg_id()).expect("variants always have a crc extra")
    }

    /// The fixed payload length of this variant.
    pub fn payload_len(&self) -> usize {
        match self {
            Message::Imu(_) => RawImu::LEN,
            Message::Baro(_) => RawBaro::LEN,
            Message::Gps(_) => RawGps::LEN,
            Message::Rc(_) => RcChannels::LEN,
            Message::Motor(_) => MotorOutput::LEN,
            Message::Heartbeat(_) => Heartbeat::LEN,
        }
    }

    /// Serializes just the payload bytes.
    pub fn encode_payload(&self, buf: &mut impl BufMut) {
        match self {
            Message::Imu(m) => m.encode_payload(buf),
            Message::Baro(m) => m.encode_payload(buf),
            Message::Gps(m) => m.encode_payload(buf),
            Message::Rc(m) => m.encode_payload(buf),
            Message::Motor(m) => m.encode_payload(buf),
            Message::Heartbeat(m) => m.encode_payload(buf),
        }
    }

    /// Parses a payload for `msg_id`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownMessage`] for ids outside the dialect and
    /// [`DecodeError::BadLength`] for malformed payloads.
    pub fn decode(msg_id: u8, payload: &[u8]) -> Result<Message, DecodeError> {
        match msg_id {
            RawImu::MSG_ID => RawImu::decode_payload(payload).map(Message::Imu),
            RawBaro::MSG_ID => RawBaro::decode_payload(payload).map(Message::Baro),
            RawGps::MSG_ID => RawGps::decode_payload(payload).map(Message::Gps),
            RcChannels::MSG_ID => RcChannels::decode_payload(payload).map(Message::Rc),
            MotorOutput::MSG_ID => MotorOutput::decode_payload(payload).map(Message::Motor),
            Heartbeat::MSG_ID => Heartbeat::decode_payload(payload).map(Message::Heartbeat),
            other => Err(DecodeError::UnknownMessage { msg_id: other }),
        }
    }
}

macro_rules! impl_from_message {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for Message {
            fn from(m: $ty) -> Message {
                Message::$variant(m)
            }
        })*
    };
}

impl_from_message!(
    RawImu => Imu,
    RawBaro => Baro,
    RawGps => Gps,
    RcChannels => Rc,
    MotorOutput => Motor,
    Heartbeat => Heartbeat,
);

/// The dialect CRC byte for a message id, if the id is known.
pub fn crc_extra_for(msg_id: u8) -> Option<u8> {
    match msg_id {
        RawImu::MSG_ID => Some(RawImu::CRC_EXTRA),
        RawBaro::MSG_ID => Some(RawBaro::CRC_EXTRA),
        RawGps::MSG_ID => Some(RawGps::CRC_EXTRA),
        RcChannels::MSG_ID => Some(RcChannels::CRC_EXTRA),
        MotorOutput::MSG_ID => Some(MotorOutput::CRC_EXTRA),
        Heartbeat::MSG_ID => Some(Heartbeat::CRC_EXTRA),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn payload_of(msg: &Message) -> Vec<u8> {
        let mut buf = BytesMut::new();
        msg.encode_payload(&mut buf);
        buf.to_vec()
    }

    #[test]
    fn payload_lengths_match_declared() {
        let msgs: Vec<Message> = vec![
            RawImu::default().into(),
            RawBaro::default().into(),
            RawGps::default().into(),
            RcChannels::default().into(),
            MotorOutput::default().into(),
            Heartbeat::default().into(),
        ];
        for m in msgs {
            assert_eq!(payload_of(&m).len(), m.payload_len(), "msg {}", m.msg_id());
        }
    }

    #[test]
    fn wire_sizes_match_table1() {
        // Frame overhead is 6 header bytes + 2 CRC bytes.
        assert_eq!(RawImu::LEN + 8, 52);
        assert_eq!(RawBaro::LEN + 8, 32);
        assert_eq!(RawGps::LEN + 8, 44);
        assert_eq!(RcChannels::LEN + 8, 50);
        assert_eq!(MotorOutput::LEN + 8, 29);
    }

    #[test]
    fn imu_roundtrip_preserves_fields() {
        let m = RawImu {
            time_usec: 123_456_789,
            gyro: [0.1, -0.2, 0.3],
            accel: [-9.81, 0.02, 0.5],
            mag: [0.2, -0.1, 0.4],
        };
        let bytes = payload_of(&Message::Imu(m));
        let back = RawImu::decode_payload(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn motor_roundtrip_preserves_fields() {
        let m = MotorOutput {
            time_usec: 42,
            pwm: [1000, 1500, 1700, 2000],
            seq: 0xDEADBEEF,
            armed: 1,
        };
        let bytes = payload_of(&Message::Motor(m));
        assert_eq!(MotorOutput::decode_payload(&bytes).unwrap(), m);
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let err = RawImu::decode_payload(&[0u8; 10]).unwrap_err();
        assert_eq!(
            err,
            DecodeError::BadLength {
                msg_id: RawImu::MSG_ID,
                expected: 44,
                actual: 10
            }
        );
    }

    #[test]
    fn decode_rejects_unknown_id() {
        assert_eq!(
            Message::decode(250, &[]),
            Err(DecodeError::UnknownMessage { msg_id: 250 })
        );
    }

    #[test]
    fn msg_ids_are_unique() {
        let ids = [
            RawImu::MSG_ID,
            RawBaro::MSG_ID,
            RawGps::MSG_ID,
            RcChannels::MSG_ID,
            MotorOutput::MSG_ID,
            Heartbeat::MSG_ID,
        ];
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
