//! A lightweight MAVLink-v1-style protocol for the ContainerDrone
//! reproduction.
//!
//! The paper's HCE and CCE exchange sensor data and actuator commands over
//! UDP "following the Mavlink protocol" (§IV-D). This crate implements the
//! protocol layer: [`crc`] (CRC-16/MCRF4XX), [`frame`] (v1 framing with
//! per-message `CRC_EXTRA`), [`messages`] (the dialect of Table I, with
//! on-wire sizes matching the paper exactly), and [`parser`] (a resyncing
//! streaming decoder whose error counters feed the security monitor).
//!
//! # Examples
//!
//! ```
//! use mavlink_lite::prelude::*;
//!
//! // HCE side: feeder thread frames an IMU sample.
//! let mut tx = Sender::new(1, 1);
//! let wire = tx.encode(RawImu { time_usec: 4000, ..Default::default() }.into());
//! assert_eq!(wire.len(), 52); // Table I: IMU rows are 52 bytes
//!
//! // CCE side: complex controller parses the datagram.
//! let mut rx = Parser::new();
//! let frames = rx.push(&wire);
//! assert!(matches!(frames[0].message, Message::Imu(_)));
//! ```

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod frame;
pub mod messages;
pub mod parser;

pub use error::DecodeError;
pub use frame::{Frame, Sender, FRAME_OVERHEAD, STX};
pub use messages::{
    crc_extra_for, Heartbeat, Message, MessagePayload, MotorOutput, RawBaro, RawGps, RawImu,
    RcChannels,
};
pub use parser::{Parser, ParserStats};

/// Convenient glob import of the protocol types.
pub mod prelude {
    pub use crate::error::DecodeError;
    pub use crate::frame::{Frame, Sender};
    pub use crate::messages::{
        Heartbeat, Message, MessagePayload, MotorOutput, RawBaro, RawGps, RawImu, RcChannels,
    };
    pub use crate::parser::{Parser, ParserStats};
}
