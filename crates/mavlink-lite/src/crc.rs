//! CRC-16/MCRF4XX — the checksum MAVLink v1 uses (X.25 polynomial 0x1021,
//! reflected, initial value 0xFFFF, no final XOR).

/// Streaming CRC-16/MCRF4XX accumulator.
///
/// # Examples
///
/// ```
/// use mavlink_lite::crc::Crc16;
///
/// let mut crc = Crc16::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.get(), 0x6F91); // published check value for CRC-16/MCRF4XX
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc16 {
    value: u16,
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16 {
    /// Creates an accumulator with the MAVLink initial value `0xFFFF`.
    pub const fn new() -> Self {
        Crc16 { value: 0xFFFF }
    }

    /// Folds one byte into the checksum.
    pub fn update_byte(&mut self, byte: u8) {
        let mut tmp = byte ^ (self.value as u8);
        tmp ^= tmp << 4;
        self.value =
            (self.value >> 8) ^ ((tmp as u16) << 8) ^ ((tmp as u16) << 3) ^ ((tmp as u16) >> 4);
    }

    /// Folds a slice of bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.update_byte(b);
        }
    }

    /// The current checksum value.
    pub const fn get(self) -> u16 {
        self.value
    }
}

/// One-shot convenience: checksum of `bytes`.
///
/// # Examples
///
/// ```
/// assert_eq!(mavlink_lite::crc::crc16(b"123456789"), 0x6F91);
/// ```
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut c = Crc16::new();
    c.update(bytes);
    c.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_specification() {
        // CRC-16/MCRF4XX check value from the CRC RevEng catalogue.
        assert_eq!(crc16(b"123456789"), 0x6F91);
    }

    #[test]
    fn empty_input_yields_init() {
        assert_eq!(crc16(b""), 0xFFFF);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox";
        let mut c = Crc16::new();
        for &b in data.iter() {
            c.update_byte(b);
        }
        assert_eq!(c.get(), crc16(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0u8..64).collect();
        let base = crc16(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc16(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
