//! Streaming frame parser with resynchronization.
//!
//! UDP delivers whole datagrams, but a flooded channel mixes garbage
//! datagrams with genuine frames, and the HCE receiving thread must find the
//! valid frames without ever stalling on junk. [`Parser`] accepts arbitrary
//! byte chunks, scans for `STX`, validates checksums, and counts everything
//! it had to skip — the statistics feed the security monitor.

use crate::error::DecodeError;
use crate::frame::{Frame, FRAME_OVERHEAD, STX};

// The parser sits directly on the flooded UDP channel: every byte below
// is attacker-controlled, so the whole scan path must book errors in
// the statistics rather than panic.
// cd-lint: deny(panic_paths)

/// Cumulative parser health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParserStats {
    /// Frames that decoded and passed the checksum.
    pub frames_ok: u64,
    /// Frames rejected by checksum.
    pub crc_errors: u64,
    /// Frames with an id outside the dialect.
    pub unknown_messages: u64,
    /// Bytes skipped while hunting for a start marker.
    pub bytes_skipped: u64,
}

/// Incremental frame parser.
///
/// # Examples
///
/// ```
/// use mavlink_lite::frame::Sender;
/// use mavlink_lite::messages::Heartbeat;
/// use mavlink_lite::parser::Parser;
///
/// let mut tx = Sender::new(1, 1);
/// let mut p = Parser::new();
/// let mut wire = vec![0xAA, 0x55]; // leading junk
/// wire.extend(tx.encode(Heartbeat::default().into()));
/// let frames = p.push(&wire);
/// assert_eq!(frames.len(), 1);
/// assert_eq!(p.stats().bytes_skipped, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Parser {
    buf: Vec<u8>,
    stats: ParserStats,
}

impl Parser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Parser::default()
    }

    /// Feeds `bytes` to the parser and returns every complete, valid frame
    /// found so far. Invalid spans are skipped and counted in
    /// [`Parser::stats`].
    pub fn push(&mut self, bytes: &[u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        self.push_into(bytes, &mut frames);
        frames
    }

    /// Like [`Parser::push`], but appends the decoded frames to a
    /// caller-provided buffer — the allocation-free parse path for hot
    /// loops that reuse one scratch `Vec` across packets.
    ///
    /// The input slice is scanned in place wherever possible: with an
    /// empty reassembly buffer the whole chunk parses zero-copy, and a
    /// pending partial frame absorbs only the bytes it can still need
    /// before the remainder of the chunk goes back to the in-place scan.
    /// A flooded channel thus never pays a copy-in/drain-out round trip
    /// for whole datagrams just because one earlier datagram split a
    /// frame.
    pub fn push_into(&mut self, bytes: &[u8], frames: &mut Vec<Frame>) {
        let mut bytes = bytes;
        // Settle the pending prefix first. `needed` bounds how many bytes
        // the buffered candidate can still absorb before it either
        // decodes or fails structurally, so the copy stays at frame-tail
        // size; each round consumes input, so this terminates.
        while !self.buf.is_empty() && !bytes.is_empty() {
            let take = Self::needed(&self.buf).min(bytes.len());
            let (head, rest) = bytes.split_at(take);
            self.buf.extend_from_slice(head);
            bytes = rest;
            let pos = Self::scan(&mut self.stats, &self.buf, frames);
            self.buf.drain(..pos);
        }
        if !bytes.is_empty() {
            // Zero-copy path (the overwhelmingly common whole-datagram
            // case): scan the input in place and only buffer an
            // incomplete tail, skipping the copy-in/drain-out round trip.
            let pos = Self::scan(&mut self.stats, bytes, frames);
            self.buf
                .extend_from_slice(bytes.get(pos..).unwrap_or_default());
        }
    }

    /// Upper bound on the bytes the buffered prefix still needs before
    /// [`Parser::scan`] can settle it: enough to read the LEN byte, then
    /// enough to complete the LEN-declared frame. The buffer only ever
    /// holds a tail [`Parser::could_complete`] approved, so the bound is
    /// positive.
    fn needed(buf: &[u8]) -> usize {
        match buf {
            [] => 2,
            [_] => 1,
            [_, len, ..] => (*len as usize + FRAME_OVERHEAD)
                .saturating_sub(buf.len())
                .max(1),
        }
    }

    /// Scans `data` for frames, updating `stats` and pushing decoded
    /// frames. Returns the index of the first byte that may still grow
    /// into a complete frame (== `data.len()` when fully consumed).
    fn scan(stats: &mut ParserStats, data: &[u8], frames: &mut Vec<Frame>) -> usize {
        // `pos` never exceeds `data.len()`, so the `get(pos..)` slices
        // below never actually hit their empty default — spelling them
        // this way keeps the scan structurally panic-free on any input.
        let mut pos = 0usize;
        loop {
            // Hunt for the next start marker.
            let rest = data.get(pos..).unwrap_or_default();
            match rest.iter().position(|&b| b == STX) {
                Some(offset) => {
                    stats.bytes_skipped += offset as u64;
                    pos += offset;
                }
                None => {
                    stats.bytes_skipped += rest.len() as u64;
                    return data.len();
                }
            }

            match Frame::decode(data.get(pos..).unwrap_or_default()) {
                Ok((frame, used)) => {
                    stats.frames_ok += 1;
                    frames.push(frame);
                    pos += used;
                }
                Err(DecodeError::Truncated) => {
                    // Might complete with more input — but only if the
                    // remaining tail could still be a frame; a lone STX at
                    // the very end always waits.
                    if Self::could_complete(data.get(pos..).unwrap_or_default()) {
                        return pos;
                    }
                    // A full-length candidate failed structurally: skip the
                    // STX byte and resync.
                    stats.bytes_skipped += 1;
                    pos += 1;
                }
                Err(DecodeError::BadCrc { .. }) => {
                    stats.crc_errors += 1;
                    stats.bytes_skipped += 1;
                    pos += 1;
                }
                Err(DecodeError::UnknownMessage { .. }) => {
                    stats.unknown_messages += 1;
                    stats.bytes_skipped += 1;
                    pos += 1;
                }
                Err(DecodeError::BadLength { .. }) => {
                    stats.bytes_skipped += 1;
                    pos += 1;
                }
            }
        }
    }

    /// True when `tail` forms a valid prefix that may still grow into a
    /// complete frame.
    fn could_complete(tail: &[u8]) -> bool {
        match tail {
            [] | [_] => true, // just STX (or STX+LEN) so far
            [_, len, ..] => tail.len() < *len as usize + FRAME_OVERHEAD,
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ParserStats {
        self.stats
    }

    /// Books a pre-recorded statistics delta without scanning — the
    /// replay half of a parse-once/account-N-times memo over
    /// byte-identical datagrams (a flood fans one shared buffer out as
    /// thousands of packets). Sound only when the recorded push started
    /// *and* ended with an empty reassembly buffer: the scan is then a
    /// pure function of the payload bytes, so replaying its counter
    /// delta is observationally identical to re-scanning.
    pub fn account(&mut self, delta: ParserStats) {
        self.stats.frames_ok = self.stats.frames_ok.wrapping_add(delta.frames_ok);
        self.stats.crc_errors = self.stats.crc_errors.wrapping_add(delta.crc_errors);
        self.stats.unknown_messages = self
            .stats
            .unknown_messages
            .wrapping_add(delta.unknown_messages);
        self.stats.bytes_skipped = self.stats.bytes_skipped.wrapping_add(delta.bytes_skipped);
    }

    /// Bytes currently buffered awaiting more input.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

impl ParserStats {
    /// The counter movement since `earlier` — what one recorded push
    /// contributed, replayable via [`Parser::account`]. Wrapping so a
    /// hostile counter state can never panic this path.
    pub fn delta_since(&self, earlier: &ParserStats) -> ParserStats {
        ParserStats {
            frames_ok: self.frames_ok.wrapping_sub(earlier.frames_ok),
            crc_errors: self.crc_errors.wrapping_sub(earlier.crc_errors),
            unknown_messages: self.unknown_messages.wrapping_sub(earlier.unknown_messages),
            bytes_skipped: self.bytes_skipped.wrapping_sub(earlier.bytes_skipped),
        }
    }
}
// cd-lint: end(panic_paths)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Sender;
    use crate::messages::{Heartbeat, Message, MotorOutput, RawImu};

    fn motor_wire(seq_start: u8, n: usize) -> Vec<u8> {
        let mut tx = Sender::new(1, 1);
        for _ in 0..seq_start {
            let _ = tx.frame(MotorOutput::default().into());
        }
        let mut out = Vec::new();
        for i in 0..n {
            out.extend(
                tx.encode(
                    MotorOutput {
                        seq: i as u32,
                        ..MotorOutput::default()
                    }
                    .into(),
                ),
            );
        }
        out
    }

    #[test]
    fn parses_back_to_back_frames() {
        let wire = motor_wire(0, 5);
        let mut p = Parser::new();
        let frames = p.push(&wire);
        assert_eq!(frames.len(), 5);
        assert_eq!(p.stats().frames_ok, 5);
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn handles_arbitrary_chunking() {
        let wire = motor_wire(0, 10);
        // Feed one byte at a time.
        let mut p = Parser::new();
        let mut got = Vec::new();
        for b in wire {
            got.extend(p.push(&[b]));
        }
        assert_eq!(got.len(), 10);
        assert_eq!(p.stats().crc_errors, 0);
    }

    #[test]
    fn resyncs_after_garbage() {
        let mut wire = vec![0x01, 0x02, STX, 0x03]; // junk including a fake STX
        wire.extend(motor_wire(0, 2));
        let mut p = Parser::new();
        let frames = p.push(&wire);
        assert_eq!(frames.len(), 2);
        assert!(p.stats().bytes_skipped >= 4);
    }

    #[test]
    fn corrupted_frame_does_not_block_following_frames() {
        let mut wire = motor_wire(0, 3);
        wire[12] ^= 0xFF; // corrupt the first frame's payload
        let mut p = Parser::new();
        let frames = p.push(&wire);
        assert_eq!(frames.len(), 2);
        assert!(p.stats().crc_errors >= 1);
    }

    #[test]
    fn mixed_message_types_parse() {
        let mut tx = Sender::new(1, 1);
        let mut wire = Vec::new();
        wire.extend(tx.encode(RawImu::default().into()));
        wire.extend(tx.encode(Heartbeat::default().into()));
        wire.extend(tx.encode(MotorOutput::default().into()));
        let mut p = Parser::new();
        let frames = p.push(&wire);
        let kinds: Vec<u8> = frames.iter().map(|f| f.message.msg_id()).collect();
        assert_eq!(kinds, vec![105, 0, 140]);
        assert!(matches!(frames[1].message, Message::Heartbeat(_)));
    }

    #[test]
    fn trailing_partial_frame_is_buffered() {
        let wire = motor_wire(0, 1);
        let mut p = Parser::new();
        let cut = wire.len() - 4;
        assert!(p.push(&wire[..cut]).is_empty());
        assert!(p.pending_bytes() > 0);
        let frames = p.push(&wire[cut..]);
        assert_eq!(frames.len(), 1);
    }

    /// The always-buffer reference implementation the zero-copy path
    /// replaced: copy every chunk into the reassembly buffer, scan the
    /// buffer, drain the consumed prefix.
    fn push_buffered(p: &mut Parser, bytes: &[u8], frames: &mut Vec<Frame>) {
        p.buf.extend_from_slice(bytes);
        let pos = Parser::scan(&mut p.stats, &p.buf, frames);
        p.buf.drain(..pos);
    }

    /// The zero-copy scan path must be observationally identical to the
    /// buffered reference for *every* chunking of a hostile byte stream:
    /// same frames, same statistics, same pending tail. The corpus mixes
    /// garbage runs (with embedded fake STX bytes), valid frames,
    /// CRC-corrupted frames and flood zeros; the chunk sizes come from a
    /// deterministic LCG so failures reproduce.
    #[test]
    fn zero_copy_path_is_equivalent_to_the_buffered_path() {
        let mut wire = vec![0x00, STX, 0x03, 0xFF]; // junk with a fake STX
        wire.extend(motor_wire(0, 3));
        wire.extend([0u8; 40]); // flood garbage
        let mut corrupted = motor_wire(3, 2);
        corrupted[10] ^= 0xA5; // CRC failure mid-stream
        wire.extend(corrupted);
        wire.extend(motor_wire(5, 2));
        wire.extend([STX]); // lone trailing start marker

        let mut state = 7u64;
        let mut next = move |bound: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % bound + 1
        };
        for trial in 0..200 {
            let mut fast = Parser::new();
            let mut slow = Parser::new();
            let mut fast_frames = Vec::new();
            let mut slow_frames = Vec::new();
            let mut rest: &[u8] = &wire;
            while !rest.is_empty() {
                let take = next(17).min(rest.len());
                fast.push_into(&rest[..take], &mut fast_frames);
                push_buffered(&mut slow, &rest[..take], &mut slow_frames);
                assert_eq!(fast.stats(), slow.stats(), "trial {trial}");
                rest = &rest[take..];
            }
            assert_eq!(fast_frames.len(), slow_frames.len(), "trial {trial}");
            assert_eq!(fast_frames, slow_frames, "trial {trial}");
            assert_eq!(fast.pending_bytes(), slow.pending_bytes());
            assert_eq!(fast.buf, slow.buf, "pending tails diverged");
            assert_eq!(fast_frames.len(), 7 - 1, "one frame was corrupted");
            assert!(fast.stats().crc_errors >= 1);
        }
    }

    #[test]
    fn pending_frame_absorbs_only_what_it_needs() {
        // A split frame followed by a whole datagram in one chunk: the
        // pending tail completes from the chunk head and the rest must
        // parse without a trip through the reassembly buffer.
        let wire = motor_wire(0, 2);
        let frame_len = wire.len() / 2;
        let mut p = Parser::new();
        assert!(p.push(&wire[..frame_len - 3]).is_empty());
        assert_eq!(p.pending_bytes(), frame_len - 3);
        let frames = p.push(&wire[frame_len - 3..]);
        assert_eq!(frames.len(), 2);
        assert_eq!(p.pending_bytes(), 0, "nothing left buffered");
        assert_eq!(p.stats().frames_ok, 2);
    }

    #[test]
    fn pure_flood_garbage_yields_no_frames() {
        // A flood datagram full of 0x00 — the parser must consume and move on.
        let mut p = Parser::new();
        let frames = p.push(&[0u8; 4096]);
        assert!(frames.is_empty());
        assert_eq!(p.stats().bytes_skipped, 4096);
        assert_eq!(p.pending_bytes(), 0);
    }
}
