//! Property-based tests for the protocol layer: arbitrary messages must
//! survive framing, arbitrary corruption must never produce a bogus frame,
//! and the parser must stay lossless under arbitrary chunking.

use mavlink_lite::prelude::*;
use proptest::prelude::*;

fn arb_imu() -> impl Strategy<Value = RawImu> {
    (
        any::<u64>(),
        prop::array::uniform3(-100.0f32..100.0),
        prop::array::uniform3(-100.0f32..100.0),
        prop::array::uniform3(-1.0f32..1.0),
    )
        .prop_map(|(time_usec, gyro, accel, mag)| RawImu {
            time_usec,
            gyro,
            accel,
            mag,
        })
}

fn arb_motor() -> impl Strategy<Value = MotorOutput> {
    (any::<u64>(), prop::array::uniform4(900u16..2100), any::<u32>(), 0u8..2)
        .prop_map(|(time_usec, pwm, seq, armed)| MotorOutput {
            time_usec,
            pwm,
            seq,
            armed,
        })
}

fn arb_gps() -> impl Strategy<Value = RawGps> {
    (
        any::<u64>(),
        any::<i32>(),
        any::<i32>(),
        any::<i32>(),
        -50.0f32..50.0,
        -50.0f32..50.0,
        -50.0f32..50.0,
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(
            |(time_usec, lat, lon, alt_mm, vel_n, vel_e, vel_d, eph_cm, epv_cm)| RawGps {
                time_usec,
                lat,
                lon,
                alt_mm,
                vel_n,
                vel_e,
                vel_d,
                eph_cm,
                epv_cm,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_imu().prop_map(Message::Imu),
        arb_motor().prop_map(Message::Motor),
        arb_gps().prop_map(Message::Gps),
    ]
}

proptest! {
    #[test]
    fn frame_roundtrip(msg in arb_message(), seq in any::<u8>(), sys in any::<u8>(), comp in any::<u8>()) {
        let frame = Frame::new(seq, sys, comp, msg);
        let wire = frame.encode();
        let (back, used) = Frame::decode(&wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn single_byte_corruption_never_yields_wrong_frame(
        msg in arb_message(),
        idx in 0usize..64,
        flip in 1u8..=255,
    ) {
        let frame = Frame::new(1, 2, 3, msg);
        let mut wire = frame.encode();
        let idx = idx % wire.len();
        wire[idx] ^= flip;
        // Either the frame is rejected outright, or (if the corrupted byte
        // was in a don't-care position there is none in this layout) it
        // decodes to something different from silently matching by luck.
        if let Ok((back, _)) = Frame::decode(&wire) {
            prop_assert_ne!(back, frame, "corruption at byte {} accepted unchanged", idx);
        }
    }

    #[test]
    fn parser_recovers_all_frames_regardless_of_chunking(
        msgs in prop::collection::vec(arb_message(), 1..20),
        chunk in 1usize..97,
        junk_prefix in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut tx = Sender::new(1, 1);
        let mut wire = junk_prefix.clone();
        for m in &msgs {
            wire.extend(tx.encode(*m));
        }
        let mut parser = Parser::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(parser.push(piece));
        }
        // Junk may contain STX and swallow at most a prefix of real frames,
        // but once synchronized nothing may be lost. With junk drawn from
        // arbitrary bytes the parser can mis-frame across the junk/real
        // boundary; all frames after the first recovered one must be intact.
        prop_assert!(got.len() <= msgs.len());
        if junk_prefix.is_empty() {
            prop_assert_eq!(got.len(), msgs.len());
            for (f, m) in got.iter().zip(&msgs) {
                prop_assert_eq!(&f.message, m);
            }
        } else if let Some(first) = got.first() {
            let start = msgs.iter().position(|m| m == &first.message);
            prop_assert!(start.is_some());
            let start = start.unwrap();
            for (f, m) in got.iter().zip(&msgs[start..]) {
                prop_assert_eq!(&f.message, m);
            }
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut parser = Parser::new();
        let _ = parser.push(&bytes);
        // Buffered remainder is bounded by one maximal frame candidate.
        prop_assert!(parser.pending_bytes() <= 255 + 8);
    }
}
