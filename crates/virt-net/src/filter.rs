//! Packet filtering: token-bucket rate limiting, as configured with
//! `iptables -m limit` in the paper ("Iptables is used to limit
//! communication package rate of the network interfaces to reduce damage
//! caused by DoS attacks", §III-E).

use sim_core::time::SimTime;

/// A token bucket: admits at most `rate` packets/s with bursts up to
/// `burst`.
///
/// # Examples
///
/// ```
/// use virt_net::filter::TokenBucket;
/// use sim_core::time::SimTime;
///
/// let mut tb = TokenBucket::new(100.0, 10.0);
/// let t = SimTime::ZERO;
/// let admitted = (0..20).filter(|_| tb.admit(t)).count();
/// assert_eq!(admitted, 10); // burst capacity
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket full at `burst` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `burst` is not positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst > 0.0, "burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Admission rate, packets/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The earliest instant at which an offered packet would be admitted:
    /// `now` itself if a whole token is already available, otherwise the
    /// time the continuous refill reaches one token. Purely predictive —
    /// the bucket state is untouched, and an actual admission still goes
    /// through [`TokenBucket::admit`].
    ///
    /// Rate limiting *drops* rather than delays, so this is not a
    /// correctness bound for an event-driven executor; it exists so
    /// planners and tests can reason about when a throttled port opens
    /// up again.
    pub fn next_token_time(&self, now: SimTime) -> SimTime {
        let dt = now.saturating_since(self.last).as_secs_f64();
        let tokens = (self.tokens + dt * self.rate).min(self.burst);
        if tokens >= 1.0 {
            return now.max(self.last);
        }
        let wait = (1.0 - tokens) / self.rate;
        now.max(self.last) + sim_core::time::SimDuration::from_secs_f64(wait)
    }

    /// Tries to admit one packet at `now`; `true` if admitted.
    pub fn admit(&mut self, now: SimTime) -> bool {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    #[test]
    fn sustained_rate_is_enforced() {
        let mut tb = TokenBucket::new(1000.0, 20.0);
        let mut admitted = 0u32;
        let mut t = SimTime::ZERO;
        // Offer 10k packets over 1 s (10 per ms).
        for _ in 0..1000 {
            for _ in 0..10 {
                if tb.admit(t) {
                    admitted += 1;
                }
            }
            t += SimDuration::from_millis(1);
        }
        // ~1000 admitted (+ initial burst of 20).
        assert!((1000..=1040).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn idle_time_refills_burst_only_to_cap() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            assert!(tb.admit(t));
        }
        assert!(!tb.admit(t), "bucket exhausted");
        // A long idle period refills to the cap, not beyond.
        t += SimDuration::from_secs(100);
        let admitted = (0..10).filter(|_| tb.admit(t)).count();
        assert_eq!(admitted, 5);
    }

    #[test]
    fn below_rate_traffic_is_never_dropped() {
        let mut tb = TokenBucket::new(500.0, 10.0);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            assert!(tb.admit(t), "400 pps under a 500 pps limit must pass");
            t += SimDuration::from_micros(2500); // 400 pps
        }
    }

    #[test]
    fn next_token_time_predicts_admission() {
        let mut tb = TokenBucket::new(100.0, 2.0);
        let t = SimTime::ZERO;
        assert_eq!(tb.next_token_time(t), t, "full bucket admits immediately");
        assert!(tb.admit(t));
        assert!(tb.admit(t));
        assert!(!tb.admit(t), "burst exhausted");
        let reopen = tb.next_token_time(t);
        assert!(reopen > t);
        // Just before the predicted instant: still dropped. At it: admitted.
        let early = reopen - SimDuration::from_micros(100);
        assert!(!tb.clone().admit(early));
        assert!(tb.clone().admit(reopen));
        // Prediction never mutated the bucket.
        assert!(!tb.admit(t));
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        let t1 = SimTime::from_secs(10);
        assert!(tb.admit(t1));
        // An earlier timestamp must not panic or mint tokens.
        let t0 = SimTime::from_secs(5);
        let _ = tb.admit(t0);
    }
}
