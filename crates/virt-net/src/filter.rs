//! Packet filtering: token-bucket rate limiting, as configured with
//! `iptables -m limit` in the paper ("Iptables is used to limit
//! communication package rate of the network interfaces to reduce damage
//! caused by DoS attacks", §III-E).

use sim_core::time::{SimDuration, SimTime};

/// A token bucket: admits at most `rate` packets/s with bursts up to
/// `burst`.
///
/// # Examples
///
/// ```
/// use virt_net::filter::TokenBucket;
/// use sim_core::time::SimTime;
///
/// let mut tb = TokenBucket::new(100.0, 10.0);
/// let t = SimTime::ZERO;
/// let admitted = (0..20).filter(|_| tb.admit(t)).count();
/// assert_eq!(admitted, 10); // burst capacity
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket full at `burst` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `burst` is not positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst > 0.0, "burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Admission rate, packets/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The earliest instant at which an offered packet would be admitted:
    /// `now` itself if a whole token is already available, otherwise the
    /// time the continuous refill reaches one token. Purely predictive —
    /// the bucket state is untouched, and an actual admission still goes
    /// through [`TokenBucket::admit`].
    ///
    /// Rate limiting *drops* rather than delays, so this is not a
    /// correctness bound for an event-driven executor; it exists so
    /// planners and tests can reason about when a throttled port opens
    /// up again.
    pub fn next_token_time(&self, now: SimTime) -> SimTime {
        let dt = now.saturating_since(self.last).as_secs_f64();
        let tokens = (self.tokens + dt * self.rate).min(self.burst);
        if tokens >= 1.0 {
            return now.max(self.last);
        }
        let wait = (1.0 - tokens) / self.rate;
        now.max(self.last) + sim_core::time::SimDuration::from_secs_f64(wait)
    }

    /// Tries to admit one packet at `now`; `true` if admitted.
    pub fn admit(&mut self, now: SimTime) -> bool {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    // cd-lint: deny(panic_paths)
    /// Batch admission for `count` packets arriving exactly `stride`
    /// apart starting at `first`: returns how many [`TokenBucket::admit`]
    /// would have admitted, leaving the bucket in the identical state.
    ///
    /// Bit-exactness argument: after the first arrival the bucket clock
    /// sits at `first`, so every later per-packet `admit` computes
    /// `dt == stride` and therefore the *same* refill term
    /// `stride.as_secs_f64() * rate`. Hoisting that product out of the
    /// loop evaluates the identical f64 expression the per-packet path
    /// would, and lets period-1 fixed points — a saturated bucket
    /// admitting every arrival, or a pinned bucket whose refill vanishes
    /// in rounding — close the remainder of the span in O(1). Genuine
    /// sub-token cycling (refill < 1 token/arrival) is iterated at two
    /// flops per packet, because any summation shortcut would change the
    /// rounding sequence.
    ///
    /// If the bucket clock is already *ahead* of `first` (another link
    /// direction admitted later arrivals into the same endpoint), the
    /// per-arrival deltas are no longer uniform and the exact per-packet
    /// sequence is replayed instead.
    pub fn admit_span(&mut self, first: SimTime, stride: SimDuration, count: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let mut admitted = u64::from(self.admit(first));
        if count == 1 {
            return admitted;
        }
        if self.last != first || stride.as_nanos() == 0 {
            let mut t = first;
            let mut i = 1;
            while i < count {
                t += stride;
                admitted += u64::from(self.admit(t));
                i += 1;
            }
            return admitted;
        }
        let refill = stride.as_secs_f64() * self.rate;
        let mut i = 1;
        while i < count {
            let before = self.tokens;
            let filled = (before + refill).min(self.burst);
            if filled >= 1.0 {
                self.tokens = filled - 1.0;
                admitted += 1;
                if self.tokens == before {
                    // Admit fixed point: the bucket reproduces this exact
                    // state every arrival, so the rest of the span admits.
                    admitted += count - 1 - i;
                    break;
                }
            } else {
                self.tokens = filled;
                if filled == before {
                    // Drop fixed point: the refill vanishes in rounding,
                    // so the rest of the span is dropped.
                    break;
                }
            }
            i += 1;
        }
        self.last = first + stride * (count - 1);
        admitted
    }
    // cd-lint: end(panic_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    #[test]
    fn sustained_rate_is_enforced() {
        let mut tb = TokenBucket::new(1000.0, 20.0);
        let mut admitted = 0u32;
        let mut t = SimTime::ZERO;
        // Offer 10k packets over 1 s (10 per ms).
        for _ in 0..1000 {
            for _ in 0..10 {
                if tb.admit(t) {
                    admitted += 1;
                }
            }
            t += SimDuration::from_millis(1);
        }
        // ~1000 admitted (+ initial burst of 20).
        assert!((1000..=1040).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn idle_time_refills_burst_only_to_cap() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            assert!(tb.admit(t));
        }
        assert!(!tb.admit(t), "bucket exhausted");
        // A long idle period refills to the cap, not beyond.
        t += SimDuration::from_secs(100);
        let admitted = (0..10).filter(|_| tb.admit(t)).count();
        assert_eq!(admitted, 5);
    }

    #[test]
    fn below_rate_traffic_is_never_dropped() {
        let mut tb = TokenBucket::new(500.0, 10.0);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            assert!(tb.admit(t), "400 pps under a 500 pps limit must pass");
            t += SimDuration::from_micros(2500); // 400 pps
        }
    }

    #[test]
    fn next_token_time_predicts_admission() {
        let mut tb = TokenBucket::new(100.0, 2.0);
        let t = SimTime::ZERO;
        assert_eq!(tb.next_token_time(t), t, "full bucket admits immediately");
        assert!(tb.admit(t));
        assert!(tb.admit(t));
        assert!(!tb.admit(t), "burst exhausted");
        let reopen = tb.next_token_time(t);
        assert!(reopen > t);
        // Just before the predicted instant: still dropped. At it: admitted.
        let early = reopen - SimDuration::from_micros(100);
        assert!(!tb.clone().admit(early));
        assert!(tb.clone().admit(reopen));
        // Prediction never mutated the bucket.
        assert!(!tb.admit(t));
    }

    #[test]
    fn admit_span_matches_per_packet_admit_across_grid() {
        // Deterministic LCG; no external crates.
        let mut state = 0x5eed_cafe_f00d_0003u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..400 {
            let rate = [50.0, 317.0, 2000.0, 250_000.0][(next() % 4) as usize];
            let burst = [1.0, 3.0, 200.0, 10_000.0][(next() % 4) as usize];
            let stride = SimDuration::from_nanos(next() % 200_000);
            let count = next() % 600;
            let mut span = TokenBucket::new(rate, burst);
            let mut reference = span.clone();
            // Random pre-history so the bucket isn't always full, and
            // sometimes a clock already *ahead* of the span start
            // (cross-link admissions) to force the exact-replay path.
            let pre = next() % 8;
            let pre_t = SimTime::from_nanos(next() % 50_000);
            for i in 0..pre {
                let t = pre_t + stride * i;
                span.admit(t);
                reference.admit(t);
            }
            let first = SimTime::from_nanos(next() % 100_000);

            let got = span.admit_span(first, stride, count);
            let mut want = 0u64;
            let mut t = first;
            for i in 0..count {
                want += u64::from(reference.admit(t));
                if i + 1 < count {
                    t += stride;
                }
            }
            assert_eq!(got, want, "admitted count (rate {rate} burst {burst})");
            assert_eq!(span, reference, "final bucket state must be identical");
        }
    }

    #[test]
    fn time_going_backwards_is_tolerated() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        let t1 = SimTime::from_secs(10);
        assert!(tb.admit(t1));
        // An earlier timestamp must not panic or mint tokens.
        let t0 = SimTime::from_secs(5);
        let _ = tb.admit(t0);
    }
}
