//! The virtual network: namespaces, links, UDP sockets, port mapping, and
//! ingress rate limiting.
//!
//! Mirrors the paper's §IV-D topology: the CCE lives in "a sandboxed
//! network space where it does not have access to the Internet and can only
//! communicate with the HCE through a specified interface" (a docker0-style
//! bridge), with "Docker's port mapping to expose container ports to host"
//! (hairpin NAT via iptables rules).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use sim_core::time::{SimDuration, SimTime};

use crate::filter::TokenBucket;

/// A trivial multiply-mix hasher for the per-packet [`Addr`] lookups.
///
/// `Addr` is 6 meaningful bytes of simulation-internal state, so SipHash's
/// DoS resistance buys nothing here while costing real time on every
/// datagram (these maps are probed several times per packet). The mix is
/// the 64-bit SplitMix64 finalizer — deterministic across runs and
/// platforms.
#[derive(Debug, Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 ^= u64::from(v);
        self.0 = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u32(u32::from(v));
    }

    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

type AddrMap<V> = HashMap<Addr, V, BuildHasherDefault<AddrHasher>>;

/// Identifies a network namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NsId(u32);

/// Identifies a bound UDP socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(u32);

/// A UDP endpoint: namespace + port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Destination namespace.
    pub ns: NsId,
    /// Destination port.
    pub port: u16,
}

/// A datagram payload.
///
/// The steady-state simulation loop never allocates for payloads: owned
/// buffers cycle through the [`Network`]'s free-list pool (reclaim them
/// with [`Network::recycle`] after receiving), and flood traffic fans a
/// single shared buffer out across thousands of packets at the cost of a
/// reference-count bump each. Shared payloads are `Arc`s (not `Rc`s) so a
/// `Network` — and everything holding packets — can move across threads;
/// a fleet executor shards vehicles over a worker pool and one flood
/// buffer may then be referenced from many shard networks at once.
#[derive(Debug, Clone)]
pub enum PacketBuf {
    /// An exclusively owned buffer, returned to the pool on recycle.
    Owned(Vec<u8>),
    /// An immutable buffer shared between many packets (flood fan-out).
    Shared(Arc<[u8]>),
}

impl PacketBuf {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            PacketBuf::Owned(v) => v,
            PacketBuf::Shared(a) => a,
        }
    }

    /// The shared buffer behind this payload, if it is one (flood
    /// fan-out). Receivers use pointer identity on it to recognise a
    /// byte-identical datagram they have already parsed.
    pub fn shared(&self) -> Option<&Arc<[u8]>> {
        match self {
            PacketBuf::Owned(_) => None,
            PacketBuf::Shared(a) => Some(a),
        }
    }
}

impl std::ops::Deref for PacketBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(v: Vec<u8>) -> Self {
        PacketBuf::Owned(v)
    }
}

/// A datagram in flight or in a receive queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Sender endpoint.
    pub src: Addr,
    /// Destination endpoint (after NAT).
    pub dst: Addr,
    /// Payload bytes.
    pub payload: PacketBuf,
    /// When the datagram was sent.
    pub sent: SimTime,
}

/// Link characteristics between two namespaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation + stack traversal latency.
    pub latency: SimDuration,
    /// Serialisation bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Transmit queue capacity, packets; overflow is dropped.
    pub queue_capacity: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A veth/bridge hop: microseconds of latency, ~1 Gb/s.
        LinkConfig {
            latency: SimDuration::from_micros(50),
            bandwidth: 125.0e6,
            queue_capacity: 512,
        }
    }
}

/// Per-socket statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SocketStats {
    /// Datagrams delivered into the receive queue.
    pub delivered: u64,
    /// Datagrams dropped because the receive queue was full.
    pub dropped_overflow: u64,
    /// Datagrams dropped by an ingress rate limit.
    pub dropped_ratelimit: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

/// Notification that packets reached a socket's receive queue during
/// [`Network::step`]; the framework turns these into rx-thread jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The receiving socket.
    pub socket: SocketId,
    /// Number of datagrams delivered this step.
    pub count: usize,
}

#[derive(Debug)]
struct Socket {
    addr: Addr,
    rx: VecDeque<Packet>,
    rx_capacity: usize,
    /// Ingress rate limit, held on the socket so per-packet delivery pays
    /// a single address lookup (limits on unbound endpoints wait in
    /// `Network::rate_limits` until something binds).
    rate_limit: Option<TokenBucket>,
    stats: SocketStats,
}

/// One transmit-queue entry. A flood quantum's worth of identical packets
/// is stored run-length-encoded as a single [`Queued::Burst`]: the
/// arrivals form an arithmetic progression (one serialisation time apart),
/// so enqueueing is O(1) per quantum instead of O(1) per packet, and the
/// queue holds one entry where it used to hold hundreds.
#[derive(Debug)]
enum Queued {
    /// An individually sent packet, delivered at `arrival`.
    One { arrival: SimTime, pkt: Packet },
    /// `remaining` identical packets arriving `stride` apart from
    /// `next_arrival` on (the run-length-encoded flood fast-path).
    Burst {
        next_arrival: SimTime,
        stride: SimDuration,
        remaining: u64,
        src: Addr,
        dst: Addr,
        payload: Arc<[u8]>,
        sent: SimTime,
    },
    /// A whole flood *span* as one entry: `batches` consecutive quanta,
    /// each sending `per_batch` identical packets. Batch `b`'s packets
    /// are sent at `sent + batch_stride*b` and arrive `ser` apart, so
    /// the packet stream is byte-for-byte what per-quantum
    /// [`Network::send_shared`] calls at those times would have queued —
    /// see [`Network::send_paced`] for the preconditions that make the
    /// single-entry encoding exact.
    Paced {
        next_arrival: SimTime,
        /// In-batch arrival stride (one serialisation time).
        ser: SimDuration,
        /// Sent-time stride between consecutive batches.
        batch_stride: SimDuration,
        per_batch: u64,
        /// Packets already shed from the current batch.
        batch_pos: u64,
        /// Total packets left across all remaining batches.
        remaining: u64,
        src: Addr,
        dst: Addr,
        payload: Arc<[u8]>,
        /// Sent time of the current batch.
        sent: SimTime,
    },
}

impl Queued {
    /// Arrival time of the entry's earliest undelivered packet.
    fn next_arrival(&self) -> SimTime {
        match self {
            Queued::One { arrival, .. } => *arrival,
            Queued::Burst { next_arrival, .. } => *next_arrival,
            Queued::Paced { next_arrival, .. } => *next_arrival,
        }
    }

    /// Destination of the entry's packets (an RLE entry has one).
    fn dst(&self) -> Addr {
        match self {
            Queued::One { pkt, .. } => pkt.dst,
            Queued::Burst { dst, .. } => *dst,
            Queued::Paced { dst, .. } => *dst,
        }
    }
}

/// One direction of a link: the transmit queue plus its serialiser state.
/// `queued_packets` counts *packets* (a burst entry counts as its
/// `remaining`), which is what the queue capacity limits.
#[derive(Debug, Default)]
struct LinkDir {
    queue: VecDeque<Queued>,
    tx_free: SimTime,
    queued_packets: usize,
}

#[derive(Debug)]
struct Link {
    a: NsId,
    b: NsId,
    config: LinkConfig,
    ab: LinkDir,
    ba: LinkDir,
    dropped_queue: u64,
}

impl Link {
    fn dir_mut(&mut self, forward: bool) -> &mut LinkDir {
        if forward {
            &mut self.ab
        } else {
            &mut self.ba
        }
    }

    /// Transmit-side admission for one packet: capacity check, serialiser
    /// advance, enqueue with the computed arrival time. The per-packet
    /// path used by [`Network::send`]. Returns the payload on a
    /// queue-full drop (for recycling).
    fn enqueue(
        &mut self,
        forward: bool,
        src: Addr,
        dst: Addr,
        payload: PacketBuf,
        ser: SimDuration,
        now: SimTime,
    ) -> Option<PacketBuf> {
        let capacity = self.config.queue_capacity;
        let latency = self.config.latency;
        let dir = self.dir_mut(forward);
        if dir.queued_packets >= capacity {
            self.dropped_queue += 1;
            return Some(payload); // UDP: silently dropped
        }
        let start = dir.tx_free.max(now);
        dir.tx_free = start + ser;
        let arrival = dir.tx_free + latency;
        dir.queued_packets += 1;
        dir.queue.push_back(Queued::One {
            arrival,
            pkt: Packet {
                src,
                dst,
                payload,
                sent: now,
            },
        });
        None
    }

    /// Batch admission for `count` identical shared-payload packets — the
    /// run-length-encoded counterpart of calling [`Link::enqueue`] `count`
    /// times. Packet-for-packet identical semantics: admission is capped
    /// by the remaining queue capacity, only admitted packets advance the
    /// serialiser, and the arrivals are the same arithmetic progression
    /// the per-packet loop would have produced.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_burst(
        &mut self,
        forward: bool,
        src: Addr,
        dst: Addr,
        payload: &Arc<[u8]>,
        count: u64,
        ser: SimDuration,
        now: SimTime,
    ) {
        if count == 1 {
            // A single-packet "burst" (a 20 kpps flood at 50 µs quanta
            // emits exactly one per quantum) gains nothing from the RLE
            // entry; take the plain path — same wire semantics, cheaper
            // dequeue. A dropped shared payload is just a refcount drop.
            let _ = self.enqueue(
                forward,
                src,
                dst,
                PacketBuf::Shared(Arc::clone(payload)),
                ser,
                now,
            );
            return;
        }
        let capacity = self.config.queue_capacity;
        let latency = self.config.latency;
        let queued = if forward { &self.ab } else { &self.ba }.queued_packets;
        let space = capacity.saturating_sub(queued) as u64;
        let admitted = count.min(space);
        self.dropped_queue += count - admitted;
        if admitted == 0 {
            return;
        }
        let dir = self.dir_mut(forward);
        let start = dir.tx_free.max(now);
        dir.tx_free = start + ser * admitted;
        dir.queued_packets += admitted as usize;
        dir.queue.push_back(Queued::Burst {
            next_arrival: start + ser + latency,
            stride: ser,
            remaining: admitted,
            src,
            dst,
            payload: Arc::clone(payload),
            sent: now,
        });
    }

    /// Pops the next due packet (arrival ≤ `target`) from one direction,
    /// if any. Bursts shed one packet at a time, so delivery order and
    /// per-packet admission (rate limits, receive-queue overflow) are
    /// exactly what the expanded queue would have seen.
    fn pop_due(&mut self, forward: bool, target: SimTime) -> Option<(SimTime, Packet)> {
        let dir = self.dir_mut(forward);
        let front = dir.queue.front_mut()?;
        if front.next_arrival() > target {
            return None;
        }
        dir.queued_packets -= 1;
        match front {
            Queued::One { .. } => {
                let Some(Queued::One { arrival, pkt }) = dir.queue.pop_front() else {
                    unreachable!("front entry just matched One");
                };
                Some((arrival, pkt))
            }
            Queued::Burst {
                next_arrival,
                stride,
                remaining,
                src,
                dst,
                payload,
                sent,
            } => {
                let arrival = *next_arrival;
                let pkt = Packet {
                    src: *src,
                    dst: *dst,
                    payload: PacketBuf::Shared(Arc::clone(payload)),
                    sent: *sent,
                };
                *next_arrival = arrival + *stride;
                *remaining -= 1;
                if *remaining == 0 {
                    dir.queue.pop_front();
                }
                Some((arrival, pkt))
            }
            Queued::Paced {
                next_arrival,
                ser,
                batch_stride,
                per_batch,
                batch_pos,
                remaining,
                src,
                dst,
                payload,
                sent,
            } => {
                let arrival = *next_arrival;
                let pkt = Packet {
                    src: *src,
                    dst: *dst,
                    payload: PacketBuf::Shared(Arc::clone(payload)),
                    sent: *sent,
                };
                *batch_pos += 1;
                if *batch_pos == *per_batch {
                    // Cross a batch boundary: the next packet is the first
                    // of a batch sent one quantum later, whose arrival is
                    // `sent + batch_stride + ser + latency`, i.e. this
                    // arrival plus the stride minus the in-batch walk.
                    *batch_pos = 0;
                    *sent += *batch_stride;
                    *next_arrival = arrival + *batch_stride - *ser * (*per_batch - 1);
                } else {
                    *next_arrival = arrival + *ser;
                }
                *remaining -= 1;
                if *remaining == 0 {
                    dir.queue.pop_front();
                }
                Some((arrival, pkt))
            }
        }
    }

    /// Removes `k` packets from the front RLE entry after a bulk
    /// settlement delivered them; the entry's cursors advance exactly as
    /// `k` [`Link::pop_due`] calls would have moved them.
    fn consume_front(&mut self, forward: bool, k: u64) {
        let dir = self.dir_mut(forward);
        dir.queued_packets -= k as usize;
        let done = match dir.queue.front_mut() {
            Some(Queued::Burst {
                next_arrival,
                stride,
                remaining,
                ..
            }) => {
                *next_arrival += *stride * k;
                *remaining -= k;
                *remaining == 0
            }
            Some(Queued::Paced {
                next_arrival,
                batch_stride,
                per_batch,
                batch_pos,
                remaining,
                sent,
                ..
            }) => {
                // Bulk settlement only engages on uniform arrival
                // strides, which for a paced entry means one packet per
                // batch; the cursor walk is then whole batches.
                debug_assert!(*per_batch == 1 && *batch_pos == 0);
                *next_arrival += *batch_stride * k;
                *sent += *batch_stride * k;
                *remaining -= k;
                *remaining == 0
            }
            _ => unreachable!("consume_front follows a span peek"),
        };
        if done {
            dir.queue.pop_front();
        }
    }
}

/// The whole virtual network.
///
/// # Examples
///
/// ```
/// use virt_net::net::{Addr, LinkConfig, Network};
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut net = Network::new();
/// let host = net.add_namespace("host");
/// let cce = net.add_namespace("cce");
/// net.connect(host, cce, LinkConfig::default());
/// let rx = net.bind(cce, 14660).unwrap();
/// let tx = net.bind(host, 5000).unwrap();
/// net.send(tx, Addr { ns: cce, port: 14660 }, vec![1, 2, 3], SimTime::ZERO).unwrap();
/// net.step(SimTime::from_millis(1));
/// assert!(net.recv(rx).is_some());
/// ```
#[derive(Debug, Default)]
pub struct Network {
    namespaces: Vec<String>,
    sockets: Vec<Socket>,
    links: Vec<Link>,
    // Determinism audit (unordered_iter): every hash container below is
    // probe-only — keyed get/insert/remove, never iterated — so hash
    // order cannot reach delivery order or the report. Anything that
    // walks state in order (deliveries, link settlement, namespace
    // lookup by name) goes through the Vecs above, whose order is
    // creation order. cd-lint enforces this for future edits.
    /// DNAT rules: packets addressed to `key` are rewritten to `value`.
    port_maps: AddrMap<Addr>,
    /// Ingress rate limits configured for endpoints nothing is bound to
    /// (yet); moved onto the socket at bind time.
    rate_limits: AddrMap<TokenBucket>,
    /// Bound endpoint → index into `sockets` (kept in sync with binds).
    addr_index: AddrMap<u32>,
    /// Normalized namespace pair → index into `links`. A single-vehicle
    /// topology has two links and a linear scan is fine; a 100-vehicle
    /// fleet airspace has hundreds (host↔container per vehicle plus a GCS
    /// uplink each), so per-packet routing must be O(1).
    route_index: HashMap<(u32, u32), u32, BuildHasherDefault<AddrHasher>>,
    /// Free list of recycled payload buffers.
    pool: Vec<Vec<u8>>,
    /// Scratch: per-socket datagrams delivered during the current step.
    delivered_counts: Vec<usize>,
    /// Scratch: socket indices with non-zero `delivered_counts`.
    touched: Vec<u32>,
    /// Scratch: the deliveries returned by the last [`Network::step`].
    deliveries: Vec<Delivery>,
    /// One-entry memo over `addr_index` — consecutive packets overwhelmingly
    /// share a destination (a flood targets one port), so most deliveries
    /// skip the hash probe. Invalidated on bind.
    memo: Option<(Addr, u32)>,
    /// Total datagrams offered via [`Network::send`] (including ones later
    /// dropped by queues or rate limits).
    total_sent: u64,
    /// Optional shared live counters (see [`NetCounters`]); `None` — the
    /// default — keeps the admission path free of atomic traffic.
    counters: Option<NetCounters>,
    /// Inverted so the derived `Default` enables bulk settlement: `true`
    /// forces [`Network::step`] onto the packet-by-packet reference path
    /// (the permanent `--no-bulk` equivalence witness).
    no_bulk: bool,
    now: SimTime,
}

/// Shared live packet counters, incremented at the delivery admission
/// sites. `Clone` shares the underlying atomics, so one set handed to
/// every per-vehicle network (plus the airspace) aggregates fleet-wide
/// traffic without any collection pass — a metrics scraper on another
/// thread reads the same atomics. Purely observational: nothing in the
/// network ever reads them back, and relaxed ordering suffices because
/// each counter is an independent statistic.
#[derive(Debug, Clone, Default)]
pub struct NetCounters {
    /// Datagrams admitted to a receive queue.
    pub admitted: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Datagrams dropped by an ingress rate limit.
    pub dropped_ratelimit: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Datagrams dropped by receive-queue overflow.
    pub dropped_overflow: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl NetCounters {
    fn bump(counter: &std::sync::atomic::AtomicU64) {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Batch counterpart of [`NetCounters::bump`] for bulk settlement —
    /// one atomic add accounts a whole span's worth of packets.
    fn add(counter: &std::sync::atomic::AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Errors from socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The port is already bound in this namespace.
    PortInUse {
        /// Conflicting namespace.
        ns: NsId,
        /// Conflicting port.
        port: u16,
    },
    /// No route between the namespaces.
    NoRoute {
        /// Source namespace.
        from: NsId,
        /// Destination namespace.
        to: NsId,
    },
    /// The socket id is stale.
    BadSocket,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::PortInUse { ns, port } => {
                write!(f, "port {port} already bound in namespace {}", ns.0)
            }
            NetError::NoRoute { from, to } => {
                write!(f, "no route from namespace {} to {}", from.0, to.0)
            }
            NetError::BadSocket => write!(f, "socket does not exist"),
        }
    }
}

impl std::error::Error for NetError {}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a namespace (a separate network stack).
    pub fn add_namespace(&mut self, name: impl Into<String>) -> NsId {
        let id = NsId(self.namespaces.len() as u32);
        self.namespaces.push(name.into());
        id
    }

    /// Connects two namespaces with a link (a veth pair over a bridge).
    /// A second link between the same pair is inert (the first keeps
    /// carrying the traffic, as with the former first-match routing).
    pub fn connect(&mut self, a: NsId, b: NsId, config: LinkConfig) {
        self.route_index
            .entry(Self::route_key(a, b))
            .or_insert(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            config,
            ab: LinkDir::default(),
            ba: LinkDir::default(),
            dropped_queue: 0,
        });
    }

    /// Normalized key for the route index (links are bidirectional).
    fn route_key(a: NsId, b: NsId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// The index of the link carrying traffic between `a` and `b`, if any.
    fn route(&self, a: NsId, b: NsId) -> Option<usize> {
        self.route_index
            .get(&Self::route_key(a, b))
            .map(|&i| i as usize)
    }

    /// `true` when a link directly connects the two namespaces.
    pub fn connected(&self, a: NsId, b: NsId) -> bool {
        self.route(a, b).is_some()
    }

    /// Number of namespaces created so far.
    pub fn namespace_count(&self) -> usize {
        self.namespaces.len()
    }

    /// The name a namespace was created with.
    pub fn namespace_name(&self, ns: NsId) -> &str {
        &self.namespaces[ns.0 as usize]
    }

    /// Looks a namespace up by name (first match in creation order).
    ///
    /// The audit surface for topologies that let arbitrary peers join —
    /// a fleet airspace admitting attacker nodes, say: tests and tooling
    /// find a tenant by name and then inspect its wiring with
    /// [`Network::neighbors`] / [`Network::link_config`].
    pub fn find_namespace(&self, name: &str) -> Option<NsId> {
        // Order audit: `namespaces` is a Vec, so this scan runs in
        // creation order — deterministic, unlike a name→id hash index.
        self.namespaces
            .iter()
            .position(|n| n == name)
            .map(|i| NsId(i as u32))
    }

    /// Every namespace directly linked to `ns`, in link-creation order.
    /// Duplicate links report their peer once.
    ///
    /// This is the radio-range view of a peer: a jammer in the airspace
    /// can reach exactly its neighbors, and a swarm topology audit walks
    /// these lists.
    pub fn neighbors(&self, ns: NsId) -> Vec<NsId> {
        let mut out = Vec::new();
        for link in &self.links {
            let peer = if link.a == ns {
                link.b
            } else if link.b == ns {
                link.a
            } else {
                continue;
            };
            if !out.contains(&peer) {
                out.push(peer);
            }
        }
        out
    }

    /// The characteristics of the link carrying traffic between `a` and
    /// `b`, if they are connected.
    pub fn link_config(&self, a: NsId, b: NsId) -> Option<LinkConfig> {
        self.route(a, b).map(|i| self.links[i].config)
    }

    /// Binds a UDP socket in `ns` on `port` with the default receive queue
    /// (256 datagrams, like a small `SO_RCVBUF`).
    ///
    /// # Errors
    ///
    /// [`NetError::PortInUse`] if the port is taken in this namespace.
    pub fn bind(&mut self, ns: NsId, port: u16) -> Result<SocketId, NetError> {
        self.bind_with_capacity(ns, port, 256)
    }

    /// Binds with an explicit receive-queue capacity.
    ///
    /// # Errors
    ///
    /// [`NetError::PortInUse`] if the port is taken in this namespace.
    pub fn bind_with_capacity(
        &mut self,
        ns: NsId,
        port: u16,
        rx_capacity: usize,
    ) -> Result<SocketId, NetError> {
        let addr = Addr { ns, port };
        if self.addr_index.contains_key(&addr) {
            return Err(NetError::PortInUse { ns, port });
        }
        let id = SocketId(self.sockets.len() as u32);
        self.addr_index.insert(addr, id.0);
        self.memo = None;
        self.delivered_counts.push(0);
        self.sockets.push(Socket {
            addr,
            rx: VecDeque::new(),
            rx_capacity,
            rate_limit: self.rate_limits.remove(&addr),
            stats: SocketStats::default(),
        });
        Ok(id)
    }

    /// Installs a DNAT rule: traffic to `from` is redirected to `to`
    /// (Docker port mapping with hairpin NAT).
    pub fn map_port(&mut self, from: Addr, to: Addr) {
        self.port_maps.insert(from, to);
    }

    /// Installs an ingress rate limit (iptables `-m limit`) for traffic to
    /// `dst`: at most `pps` packets/s with bursts of `burst`.
    pub fn add_rate_limit(&mut self, dst: Addr, pps: f64, burst: f64) {
        let bucket = TokenBucket::new(pps, burst);
        match self.addr_index.get(&dst) {
            Some(&i) => self.sockets[i as usize].rate_limit = Some(bucket),
            None => {
                self.rate_limits.insert(dst, bucket);
            }
        }
    }

    /// Removes the ingress rate limit on `dst`, if any.
    pub fn remove_rate_limit(&mut self, dst: Addr) {
        match self.addr_index.get(&dst) {
            Some(&i) => self.sockets[i as usize].rate_limit = None,
            None => {
                self.rate_limits.remove(&dst);
            }
        }
    }

    /// Takes a cleared payload buffer from the free-list pool (allocating
    /// only when the pool is empty). Fill it, then pass it to
    /// [`Network::send`]; buffers return to the pool via
    /// [`Network::recycle`] or when the network drops the packet.
    pub fn take_buf(&mut self) -> Vec<u8> {
        // 64 bytes covers every mavlink-lite frame, so recycled buffers
        // never need to regrow mid-flight.
        self.pool.pop().unwrap_or_else(|| Vec::with_capacity(64))
    }

    /// Returns a received packet's buffer to the pool. Shared payloads
    /// just drop their reference.
    pub fn recycle(&mut self, pkt: Packet) {
        self.recycle_buf(pkt.payload);
    }

    fn recycle_buf(&mut self, buf: PacketBuf) {
        if let PacketBuf::Owned(mut v) = buf {
            v.clear();
            self.pool.push(v);
        }
    }

    /// Sends a datagram from `socket` to `dst` at time `now`.
    ///
    /// Accepts anything convertible to a [`PacketBuf`]: a plain `Vec<u8>`
    /// (typically from [`Network::take_buf`]) or a pre-built
    /// [`PacketBuf::Shared`].
    ///
    /// # Errors
    ///
    /// [`NetError::BadSocket`] for a stale socket id;
    /// [`NetError::NoRoute`] if the namespaces are not linked.
    pub fn send(
        &mut self,
        socket: SocketId,
        dst: Addr,
        payload: impl Into<PacketBuf>,
        now: SimTime,
    ) -> Result<(), NetError> {
        let payload = payload.into();
        let src = match self.sockets.get(socket.0 as usize) {
            Some(s) => s.addr,
            None => {
                // Pooled buffers return to the pool even on caller error.
                self.recycle_buf(payload);
                return Err(NetError::BadSocket);
            }
        };
        // DNAT before routing, as netfilter PREROUTING does.
        let dst = self.port_maps.get(&dst).copied().unwrap_or(dst);

        if src.ns == dst.ns {
            self.total_sent += 1;
            // Loopback: deliver immediately on the next step.
            let pkt = Packet {
                src,
                dst,
                payload,
                sent: now,
            };
            self.deliver_local(pkt, now, false);
            return Ok(());
        }

        let link_idx = match self.route(src.ns, dst.ns) {
            Some(i) => i,
            None => {
                self.recycle_buf(payload);
                return Err(NetError::NoRoute {
                    from: src.ns,
                    to: dst.ns,
                });
            }
        };

        self.total_sent += 1;
        let link = &mut self.links[link_idx];
        let forward = link.a == src.ns;
        debug_assert!(
            (link.a == src.ns && link.b == dst.ns) || (link.b == src.ns && link.a == dst.ns),
            "route index returned a link not connecting the endpoints"
        );
        // Serialisation: the transmitter is busy `len/bandwidth` per packet.
        let ser = SimDuration::from_secs_f64(payload.len() as f64 / link.config.bandwidth);
        if let Some(payload) = link.enqueue(forward, src, dst, payload, ser, now) {
            self.recycle_buf(payload);
        }
        Ok(())
    }

    /// The flood fast-path: offers `count` copies of one shared payload in
    /// a single call. Semantically identical to calling [`Network::send`]
    /// `count` times with equal bytes, but the only per-packet cost is a
    /// reference-count bump — no allocation, no payload copy.
    ///
    /// # Errors
    ///
    /// Same as [`Network::send`].
    pub fn send_shared(
        &mut self,
        socket: SocketId,
        dst: Addr,
        payload: &Arc<[u8]>,
        count: u64,
        now: SimTime,
    ) -> Result<(), NetError> {
        if count == 0 {
            return Ok(());
        }
        let src = self
            .sockets
            .get(socket.0 as usize)
            .ok_or(NetError::BadSocket)?
            .addr;
        let dst = self.port_maps.get(&dst).copied().unwrap_or(dst);
        if src.ns == dst.ns {
            for _ in 0..count {
                self.total_sent += 1;
                let pkt = Packet {
                    src,
                    dst,
                    payload: PacketBuf::Shared(Arc::clone(payload)),
                    sent: now,
                };
                self.deliver_local(pkt, now, false);
            }
            return Ok(());
        }

        // Route, direction and serialisation time are invariant across the
        // batch: resolve them once, then the whole quantum's flood is one
        // run-length-encoded queue entry — O(1) regardless of `count`.
        let link_idx = self.route(src.ns, dst.ns).ok_or(NetError::NoRoute {
            from: src.ns,
            to: dst.ns,
        })?;
        self.total_sent += count;
        let link = &mut self.links[link_idx];
        let forward = link.a == src.ns;
        let ser = SimDuration::from_secs_f64(payload.len() as f64 / link.config.bandwidth);
        link.enqueue_burst(forward, src, dst, payload, count, ser, now);
        Ok(())
    }

    /// Emits a whole flood *span* in one call: `batches` consecutive
    /// quanta `stride` apart starting at `first`, each offering
    /// `per_batch` copies of one shared payload. Semantically identical
    /// to calling [`Network::send_shared`] once per batch at those
    /// (historical) times — the caller is a time-leap executor replaying
    /// an attack span it proved free of interleaved traffic on this
    /// route, which is what makes emitting after the fact exact.
    ///
    /// When the serialiser is free at `first`, a batch serialises within
    /// its stride (`per_batch·ser ≤ stride`) and the whole span fits the
    /// transmit queue, the span collapses into a single
    /// run-length-encoded entry (O(1) in packets); otherwise it falls
    /// back to per-batch enqueues, which reproduce the reference
    /// serialiser/capacity behaviour construct-for-construct. Returns
    /// `true` on the collapsed path, `false` on the fallback — callers
    /// never need to branch on it, it exists for tests to pin both.
    ///
    /// # Errors
    ///
    /// Same as [`Network::send`].
    #[allow(clippy::too_many_arguments)]
    pub fn send_paced(
        &mut self,
        socket: SocketId,
        dst: Addr,
        payload: &Arc<[u8]>,
        per_batch: u64,
        batches: u64,
        first: SimTime,
        stride: SimDuration,
    ) -> Result<bool, NetError> {
        if per_batch == 0 || batches == 0 {
            return Ok(true);
        }
        let src = self
            .sockets
            .get(socket.0 as usize)
            .ok_or(NetError::BadSocket)?
            .addr;
        let dst = self.port_maps.get(&dst).copied().unwrap_or(dst);
        if src.ns == dst.ns {
            // Loopback: deliver each batch at its historical send time,
            // exactly as the per-quantum calls would have.
            for b in 0..batches {
                let t = first + stride * b;
                for _ in 0..per_batch {
                    self.total_sent += 1;
                    let pkt = Packet {
                        src,
                        dst,
                        payload: PacketBuf::Shared(Arc::clone(payload)),
                        sent: t,
                    };
                    self.deliver_local(pkt, t, false);
                }
            }
            return Ok(false);
        }
        let link_idx = self.route(src.ns, dst.ns).ok_or(NetError::NoRoute {
            from: src.ns,
            to: dst.ns,
        })?;
        let link = &mut self.links[link_idx];
        let forward = link.a == src.ns;
        let ser = SimDuration::from_secs_f64(payload.len() as f64 / link.config.bandwidth);
        let total = per_batch * batches;
        let capacity = link.config.queue_capacity;
        let latency = link.config.latency;
        let dir = link.dir_mut(forward);
        let collapsible = dir.tx_free <= first
            && ser * per_batch <= stride
            && capacity.saturating_sub(dir.queued_packets) as u64 >= total;
        if collapsible {
            // Proof the single entry is exact: the serialiser is free at
            // every batch's send time (free at `first`, and each batch
            // finishes `stride - per_batch·ser ≥ 0` before the next), so
            // batch `b`'s packet `j` arrives at
            // `first + stride·b + (j+1)·ser + latency` — the progression
            // the entry's cursors walk — and capacity admits everything,
            // so no drop decision is being skipped.
            self.total_sent += total;
            dir.queued_packets += total as usize;
            dir.tx_free = first + stride * (batches - 1) + ser * per_batch;
            dir.queue.push_back(Queued::Paced {
                next_arrival: first + ser + latency,
                ser,
                batch_stride: stride,
                per_batch,
                batch_pos: 0,
                remaining: total,
                src,
                dst,
                payload: Arc::clone(payload),
                sent: first,
            });
            return Ok(true);
        }
        self.total_sent += total;
        for b in 0..batches {
            let t = first + stride * b;
            let link = &mut self.links[link_idx];
            link.enqueue_burst(forward, src, dst, payload, per_batch, ser, t);
        }
        Ok(false)
    }

    /// Transmit-queue headroom from `socket` toward `dst`: how many more
    /// packets the connecting link direction accepts before capacity
    /// drops begin. `None` for a loopback, unrouted or stale endpoint —
    /// a span planner must treat those as "no span".
    pub fn pace_headroom(&self, socket: SocketId, dst: Addr) -> Option<u64> {
        let src = self.sockets.get(socket.0 as usize)?.addr;
        let dst = self.port_maps.get(&dst).copied().unwrap_or(dst);
        if src.ns == dst.ns {
            return None;
        }
        let li = self.route(src.ns, dst.ns)?;
        let link = &self.links[li];
        let dir = if link.a == src.ns { &link.ab } else { &link.ba };
        Some(
            link.config
                .queue_capacity
                .saturating_sub(dir.queued_packets) as u64,
        )
    }

    /// Delivers one packet to its destination socket (rate limit, then
    /// receive-queue admission), recycling the payload on any drop.
    /// `notify` adds the delivery to the current step's [`Delivery`] list
    /// (true for link traffic; loopback sends deliver silently, as the
    /// rx-thread wakeup path never saw them pre-refactor either).
    fn deliver_local(&mut self, pkt: Packet, now: SimTime, notify: bool) {
        let dst = pkt.dst;
        let i = match self.memo {
            Some((addr, i)) if addr == dst => i,
            _ => {
                let Some(&i) = self.addr_index.get(&dst) else {
                    // Unbound destination: datagram vanishes (ICMP
                    // unreachable ignored).
                    self.recycle_buf(pkt.payload);
                    return;
                };
                self.memo = Some((dst, i));
                i
            }
        };
        let s = &mut self.sockets[i as usize];
        // Ingress rate limit.
        if let Some(tb) = &mut s.rate_limit {
            if !tb.admit(now) {
                s.stats.dropped_ratelimit += 1;
                if let Some(c) = &self.counters {
                    NetCounters::bump(&c.dropped_ratelimit);
                }
                self.recycle_buf(pkt.payload);
                return;
            }
        }
        if s.rx.len() >= s.rx_capacity {
            s.stats.dropped_overflow += 1;
            if let Some(c) = &self.counters {
                NetCounters::bump(&c.dropped_overflow);
            }
            self.recycle_buf(pkt.payload);
        } else {
            s.stats.delivered += 1;
            s.stats.bytes_delivered += pkt.payload.len() as u64;
            if let Some(c) = &self.counters {
                NetCounters::bump(&c.admitted);
            }
            s.rx.push_back(pkt);
            if notify {
                if self.delivered_counts[i as usize] == 0 {
                    self.touched.push(i);
                }
                self.delivered_counts[i as usize] += 1;
            }
        }
    }

    /// Settles a run of due packets from the front RLE entry of one link
    /// direction in a single pass: one destination lookup, batched
    /// statistics, and closed-form token-bucket accounting where the
    /// bucket state permits. Packet-for-packet identical to the
    /// [`Link::pop_due`] + [`Network::deliver_local`] loop:
    ///
    /// * only the *front* entry's due prefix is taken, so FIFO order
    ///   with later entries and other directions is untouched;
    /// * admissions evaluate at the same arrival times in the same
    ///   order ([`TokenBucket::admit_span`] is bit-exact);
    /// * receive-queue pushes carry each packet's own sent time, and a
    ///   full queue mid-run degrades to pure counting — the remaining
    ///   admissions still burn tokens, exactly as the per-packet path
    ///   admits then overflows.
    ///
    /// Returns `false` (no state change) when the front entry is not an
    /// RLE run with ≥ 2 due packets on a uniform arrival stride; the
    /// caller then falls back to the per-packet pop.
    fn try_settle_span(&mut self, li: usize, forward: bool, target: SimTime) -> bool {
        let link = &self.links[li];
        let dir = if forward { &link.ab } else { &link.ba };
        let Some(front) = dir.queue.front() else {
            return false;
        };
        let (first, stride, remaining, src, dst, sent0, sent_stride) = match front {
            Queued::One { .. } => return false,
            Queued::Burst {
                next_arrival,
                stride,
                remaining,
                src,
                dst,
                sent,
                ..
            } => (
                *next_arrival,
                *stride,
                *remaining,
                *src,
                *dst,
                *sent,
                SimDuration::ZERO,
            ),
            Queued::Paced {
                next_arrival,
                batch_stride,
                per_batch,
                remaining,
                src,
                dst,
                sent,
                ..
            } => {
                if *per_batch != 1 {
                    // Nested strides: arrival deltas alternate, so the
                    // uniform-stride bulk math does not apply.
                    return false;
                }
                (
                    *next_arrival,
                    *batch_stride,
                    *remaining,
                    *src,
                    *dst,
                    *sent,
                    *batch_stride,
                )
            }
        };
        if first > target || stride.as_nanos() == 0 {
            return false;
        }
        let due = 1 + (target - first).as_nanos() / stride.as_nanos();
        let k = remaining.min(due);
        if k < 2 {
            return false;
        }

        // Resolve the destination once (same memo discipline as
        // `deliver_local`).
        let idx = match self.memo {
            Some((addr, i)) if addr == dst => Some(i),
            _ => match self.addr_index.get(&dst) {
                Some(&i) => {
                    self.memo = Some((dst, i));
                    Some(i)
                }
                None => None,
            },
        };
        let Some(i) = idx else {
            // Unbound destination: the whole run vanishes (shared
            // payloads are refcounts, nothing to recycle).
            self.links[li].consume_front(forward, k);
            return true;
        };

        let payload = match front {
            Queued::Burst { payload, .. } | Queued::Paced { payload, .. } => Arc::clone(payload),
            Queued::One { .. } => unreachable!("matched RLE above"),
        };
        let payload_len = payload.len() as u64;

        let s = &mut self.sockets[i as usize];
        let mut dropped_rl = 0u64;
        let mut overflow = 0u64;
        let mut pushed = 0u64;

        let mut j = 0u64;
        let mut arrival = first;
        let mut sent = sent0;
        // Per-packet decisions only while the receive queue has room —
        // each push must carry its packet's own sent time. Once the
        // queue is full nothing else can enter this step (no consumer
        // runs mid-settlement), so the remainder is pure counting.
        while j < k && s.rx.len() < s.rx_capacity {
            let admit = match &mut s.rate_limit {
                Some(tb) => tb.admit(arrival),
                None => true,
            };
            if admit {
                s.stats.delivered += 1;
                s.stats.bytes_delivered += payload_len;
                s.rx.push_back(Packet {
                    src,
                    dst,
                    payload: PacketBuf::Shared(Arc::clone(&payload)),
                    sent,
                });
                pushed += 1;
            } else {
                dropped_rl += 1;
            }
            arrival += stride;
            sent += sent_stride;
            j += 1;
        }
        if j < k {
            // Queue full: admissions still consume tokens (the
            // per-packet path admits, then drops on overflow), so the
            // token-bucket span math accounts the rest in one shot.
            let rest = k - j;
            let admitted = match &mut s.rate_limit {
                Some(tb) => tb.admit_span(arrival, stride, rest),
                None => rest,
            };
            dropped_rl += rest - admitted;
            overflow += admitted;
        }
        s.stats.dropped_ratelimit += dropped_rl;
        s.stats.dropped_overflow += overflow;
        if let Some(c) = &self.counters {
            NetCounters::add(&c.admitted, pushed);
            NetCounters::add(&c.dropped_ratelimit, dropped_rl);
            NetCounters::add(&c.dropped_overflow, overflow);
        }
        if pushed > 0 {
            if self.delivered_counts[i as usize] == 0 {
                self.touched.push(i);
            }
            self.delivered_counts[i as usize] += pushed as usize;
        }
        self.links[li].consume_front(forward, k);
        true
    }

    /// Advances the network to `target`, delivering due packets. Returns
    /// one [`Delivery`] per socket that received datagrams, sorted by
    /// socket id; the slice is backed by scratch storage reused across
    /// steps.
    ///
    /// A run-length-encoded front entry (a flood burst or paced span)
    /// with several due packets is settled in bulk — admission, drop and
    /// delivery counts for the whole run computed together (closed form
    /// where the token-bucket state permits, see
    /// [`TokenBucket::admit_span`]) — unless bulk settlement is disabled
    /// ([`Network::set_bulk`]), which pins the packet-by-packet
    /// reference path. The [`Delivery`] list is identical either way:
    /// it was already aggregated per socket per step.
    pub fn step(&mut self, target: SimTime) -> &[Delivery] {
        let bulk = !self.no_bulk;
        for li in 0..self.links.len() {
            for dir in 0..2 {
                loop {
                    if bulk && self.try_settle_span(li, dir == 0, target) {
                        continue;
                    }
                    match self.links[li].pop_due(dir == 0, target) {
                        Some((arrival, pkt)) => self.deliver_local(pkt, arrival, true),
                        None => break,
                    }
                }
            }
        }

        self.now = target;
        self.touched.sort_unstable();
        self.deliveries.clear();
        for &i in &self.touched {
            self.deliveries.push(Delivery {
                socket: SocketId(i),
                count: self.delivered_counts[i as usize],
            });
            self.delivered_counts[i as usize] = 0;
        }
        self.touched.clear();
        &self.deliveries
    }

    /// The arrival time of the earliest packet still in flight on any
    /// link, or `None` when every transmit queue is empty — the planning
    /// hint an event-driven executor composes with the machine's own to
    /// decide how far it may leap without a [`Network::step`] observing
    /// anything.
    ///
    /// Within one link direction arrivals are monotone (each packet's
    /// arrival is its predecessor's serialisation end plus latency), so
    /// the front entry of each queue is that direction's earliest; a
    /// run-length-encoded burst reports its next undelivered packet's
    /// arrival, which already accounts for the stride walked so far.
    /// Loopback sends never queue — they deliver inside
    /// [`Network::send`] — so they cannot invalidate this hint.
    pub fn next_delivery_time(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for link in &self.links {
            for dir in [&link.ab, &link.ba] {
                if let Some(front) = dir.queue.front() {
                    let t = front.next_arrival();
                    earliest = Some(earliest.map_or(t, |e| e.min(t)));
                }
            }
        }
        earliest
    }

    /// [`Network::next_delivery_time`] restricted to packets *not*
    /// destined for `excluded` — the planning hint for a flood span
    /// whose deliveries to one inert endpoint are provably safe to
    /// cross (admission is evaluated at arrival times, so settling them
    /// late is exact; the caller owns that proof).
    ///
    /// Within a direction arrivals are monotone, so the first entry not
    /// addressed to `excluded` carries that direction's earliest
    /// non-excluded arrival; the scan is per *entry*, and flood spans
    /// are run-length-encoded into single entries.
    pub fn next_delivery_time_excluding(&self, excluded: Addr) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for link in &self.links {
            for dir in [&link.ab, &link.ba] {
                for entry in &dir.queue {
                    if entry.dst() == excluded {
                        continue;
                    }
                    let t = entry.next_arrival();
                    earliest = Some(earliest.map_or(t, |e| e.min(t)));
                    break;
                }
            }
        }
        earliest
    }

    /// Enables or disables bulk span settlement in [`Network::step`].
    /// On by default; `false` pins the packet-by-packet reference path
    /// (`--no-bulk` in the campaign bins), kept forever as the
    /// equivalence witness the bulk path is byte-diffed against.
    pub fn set_bulk(&mut self, on: bool) {
        self.no_bulk = !on;
    }

    /// `true` while bulk span settlement is enabled (the default).
    pub fn bulk_enabled(&self) -> bool {
        !self.no_bulk
    }

    /// The earliest instant the ingress rate limit on `dst` would admit a
    /// packet (see [`TokenBucket::next_token_time`]); `now` itself when
    /// `dst` carries no limit or the bucket already holds a token.
    /// Predictive only — no bucket state changes.
    pub fn next_token_time(&self, dst: Addr, now: SimTime) -> SimTime {
        let bucket = match self.addr_index.get(&dst) {
            Some(&i) => self.sockets[i as usize].rate_limit.as_ref(),
            None => self.rate_limits.get(&dst),
        };
        bucket.map_or(now, |tb| tb.next_token_time(now))
    }

    /// Pops the oldest datagram from a socket's receive queue.
    pub fn recv(&mut self, socket: SocketId) -> Option<Packet> {
        self.sockets.get_mut(socket.0 as usize)?.rx.pop_front()
    }

    /// Drains the entire receive queue of a socket.
    pub fn recv_all(&mut self, socket: SocketId) -> Vec<Packet> {
        match self.sockets.get_mut(socket.0 as usize) {
            Some(s) => s.rx.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Number of datagrams waiting in a socket's receive queue.
    pub fn rx_depth(&self, socket: SocketId) -> usize {
        self.sockets
            .get(socket.0 as usize)
            .map_or(0, |s| s.rx.len())
    }

    /// Attaches shared live counters (see [`NetCounters`]). Clone one set
    /// onto every network in a fleet to aggregate admissions and drops
    /// across all of them; counters stay attached for the network's
    /// lifetime.
    pub fn set_counters(&mut self, counters: NetCounters) {
        self.counters = Some(counters);
    }

    /// Statistics of a socket.
    pub fn socket_stats(&self, socket: SocketId) -> SocketStats {
        self.sockets
            .get(socket.0 as usize)
            .map(|s| s.stats)
            .unwrap_or_default()
    }

    /// The endpoint a socket is bound to.
    pub fn socket_addr(&self, socket: SocketId) -> Option<Addr> {
        self.sockets.get(socket.0 as usize).map(|s| s.addr)
    }

    /// Total packets dropped on link transmit queues.
    pub fn link_drops(&self) -> u64 {
        self.links.iter().map(|l| l.dropped_queue).sum()
    }

    /// Total datagrams offered to the network since creation.
    pub fn packets_sent(&self) -> u64 {
        self.total_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Network, NsId, NsId) {
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let cce = net.add_namespace("cce");
        net.connect(host, cce, LinkConfig::default());
        (net, host, cce)
    }

    #[test]
    fn datagram_arrives_after_latency() {
        let (mut net, host, cce) = pair();
        let rx = net.bind(cce, 14660).unwrap();
        let tx = net.bind(host, 9000).unwrap();
        net.send(
            tx,
            Addr {
                ns: cce,
                port: 14660,
            },
            vec![0; 52],
            SimTime::ZERO,
        )
        .unwrap();
        // Before the latency elapses: nothing.
        assert!(net.step(SimTime::from_micros(10)).is_empty());
        // After: exactly one delivery.
        let deliveries = net.step(SimTime::from_micros(200));
        assert_eq!(
            deliveries,
            vec![Delivery {
                socket: rx,
                count: 1
            }]
        );
        let pkt = net.recv(rx).unwrap();
        assert_eq!(pkt.payload.len(), 52);
        assert!(net.recv(rx).is_none());
    }

    #[test]
    fn double_bind_fails() {
        let (mut net, host, _) = pair();
        net.bind(host, 14600).unwrap();
        assert_eq!(
            net.bind(host, 14600),
            Err(NetError::PortInUse {
                ns: host,
                port: 14600
            })
        );
    }

    #[test]
    fn no_route_is_reported() {
        let mut net = Network::new();
        let a = net.add_namespace("a");
        let b = net.add_namespace("b"); // not connected
        let tx = net.bind(a, 1).unwrap();
        let err = net
            .send(tx, Addr { ns: b, port: 2 }, vec![], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, NetError::NoRoute { from: a, to: b });
    }

    #[test]
    fn port_mapping_redirects() {
        let (mut net, host, cce) = pair();
        // Docker-style: host:14660 maps into the container.
        net.map_port(
            Addr {
                ns: host,
                port: 14660,
            },
            Addr {
                ns: cce,
                port: 14660,
            },
        );
        let rx = net.bind(cce, 14660).unwrap();
        let tx = net.bind(host, 9000).unwrap();
        net.send(
            tx,
            Addr {
                ns: host,
                port: 14660,
            },
            vec![1],
            SimTime::ZERO,
        )
        .unwrap();
        net.step(SimTime::from_millis(1));
        assert_eq!(net.socket_stats(rx).delivered, 1);
    }

    #[test]
    fn receive_queue_overflows_under_flood() {
        let (mut net, host, cce) = pair();
        let rx = net.bind_with_capacity(host, 14600, 64).unwrap();
        let tx = net.bind(cce, 9000).unwrap();
        // Flood 1000 packets in one instant; link queue 512, rx queue 64.
        for _ in 0..1000 {
            net.send(
                tx,
                Addr {
                    ns: host,
                    port: 14600,
                },
                vec![0; 64],
                SimTime::ZERO,
            )
            .unwrap();
        }
        net.step(SimTime::from_secs(1));
        let stats = net.socket_stats(rx);
        assert_eq!(stats.delivered, 64);
        assert!(stats.dropped_overflow > 0);
        assert!(net.link_drops() >= 1000 - 512 - 64);
    }

    #[test]
    fn rate_limit_drops_excess() {
        let (mut net, host, cce) = pair();
        let rx = net.bind(host, 14600).unwrap();
        let tx = net.bind(cce, 9000).unwrap();
        net.add_rate_limit(
            Addr {
                ns: host,
                port: 14600,
            },
            100.0,
            10.0,
        );
        // Offer 1000 packets spread over one second.
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            net.send(
                tx,
                Addr {
                    ns: host,
                    port: 14600,
                },
                vec![0; 29],
                t,
            )
            .unwrap();
            t += SimDuration::from_millis(1);
            net.step(t);
            // Drain rx so overflow never interferes with the rate limit.
            let _ = net.recv_all(rx);
        }
        let stats = net.socket_stats(rx);
        assert!(
            (100..=140).contains(&(stats.delivered as i64)),
            "delivered {}",
            stats.delivered
        );
        assert!(
            stats.dropped_ratelimit >= 850,
            "{}",
            stats.dropped_ratelimit
        );
    }

    #[test]
    fn bandwidth_serialisation_delays_bulk_traffic() {
        let mut net = Network::new();
        let a = net.add_namespace("a");
        let b = net.add_namespace("b");
        net.connect(
            a,
            b,
            LinkConfig {
                latency: SimDuration::ZERO,
                bandwidth: 1.0e6, // 1 MB/s
                queue_capacity: 1024,
            },
        );
        let rx = net.bind(b, 1).unwrap();
        let tx = net.bind(a, 2).unwrap();
        // 100 × 10 kB = 1 MB: takes a full second to serialise.
        for _ in 0..100 {
            net.send(tx, Addr { ns: b, port: 1 }, vec![0; 10_000], SimTime::ZERO)
                .unwrap();
        }
        net.step(SimTime::from_millis(500));
        let halfway = net.socket_stats(rx).delivered;
        assert!((45..=55).contains(&(halfway as i64)), "halfway {halfway}");
        net.step(SimTime::from_secs(2));
        assert_eq!(net.socket_stats(rx).delivered, 100);
    }

    #[test]
    fn loopback_delivery_within_namespace() {
        let (mut net, host, _) = pair();
        let rx = net.bind(host, 7).unwrap();
        let tx = net.bind(host, 8).unwrap();
        net.send(tx, Addr { ns: host, port: 7 }, vec![9], SimTime::ZERO)
            .unwrap();
        // Loopback is immediate.
        assert_eq!(net.socket_stats(rx).delivered, 1);
    }

    #[test]
    fn multi_tenant_routing_scales_past_two_namespaces() {
        // A miniature fleet airspace: 8 vehicles (host+container each)
        // plus one GCS namespace with an uplink per vehicle.
        let mut net = Network::new();
        let gcs = net.add_namespace("gcs");
        let mut rxs = Vec::new();
        for v in 0..8u16 {
            let host = net.add_namespace(format!("host-{v}"));
            let cont = net.add_namespace(format!("cce-{v}"));
            net.connect(host, cont, LinkConfig::default());
            net.connect(host, gcs, LinkConfig::default());
            assert!(net.connected(host, cont));
            assert!(net.connected(gcs, host));
            assert!(!net.connected(gcs, cont), "no transitive routes");
            let rx = net.bind(gcs, 15_000 + v).unwrap();
            let tx = net.bind(host, 9100).unwrap();
            net.send(
                tx,
                Addr {
                    ns: gcs,
                    port: 15_000 + v,
                },
                vec![v as u8],
                SimTime::ZERO,
            )
            .unwrap();
            rxs.push(rx);
        }
        assert_eq!(net.namespace_count(), 17);
        net.step(SimTime::from_millis(1));
        for (v, rx) in rxs.iter().enumerate() {
            let pkt = net.recv(*rx).expect("uplink datagram routed");
            assert_eq!(pkt.payload.as_slice(), [v as u8]);
        }
    }

    #[test]
    fn topology_introspection_tracks_arbitrary_peers() {
        // An airspace where peers beyond the original two tenants join
        // late: radios, a GCS, and a hostile node linked into radio range.
        let mut net = Network::new();
        let gcs = net.add_namespace("gcs");
        let r0 = net.add_namespace("radio-0");
        let r1 = net.add_namespace("radio-1");
        net.connect(r0, gcs, LinkConfig::default());
        net.connect(r1, gcs, LinkConfig::default());
        net.connect(r0, r1, LinkConfig::default()); // V2V link
        let hostile = net.add_namespace("attacker-0");
        let radio_link = LinkConfig {
            latency: SimDuration::from_millis(2),
            bandwidth: 2.0e6,
            queue_capacity: 64,
        };
        net.connect(hostile, gcs, radio_link);
        net.connect(hostile, r1, radio_link);

        assert_eq!(net.namespace_name(hostile), "attacker-0");
        assert_eq!(net.find_namespace("radio-1"), Some(r1));
        assert_eq!(net.find_namespace("radio-7"), None);
        assert_eq!(net.neighbors(gcs), vec![r0, r1, hostile]);
        assert_eq!(net.neighbors(hostile), vec![gcs, r1]);
        assert_eq!(net.neighbors(r0), vec![gcs, r1]);
        assert_eq!(net.link_config(hostile, gcs), Some(radio_link));
        assert_eq!(net.link_config(hostile, r0), None);
    }

    #[test]
    fn neighbors_reports_duplicate_links_once() {
        let (mut net, host, cce) = pair();
        net.connect(host, cce, LinkConfig::default()); // inert duplicate
        assert_eq!(net.neighbors(host), vec![cce]);
        assert_eq!(net.neighbors(cce), vec![host]);
    }

    #[test]
    fn duplicate_link_is_inert() {
        let (mut net, host, cce) = pair();
        // A second link between the same pair must not shadow the first.
        net.connect(host, cce, LinkConfig::default());
        let rx = net.bind(cce, 5).unwrap();
        let tx = net.bind(host, 6).unwrap();
        net.send(tx, Addr { ns: cce, port: 5 }, vec![1, 2], SimTime::ZERO)
            .unwrap();
        net.step(SimTime::from_millis(1));
        assert_eq!(net.socket_stats(rx).delivered, 1);
    }

    /// The RLE burst fast-path must be packet-for-packet identical to the
    /// per-packet loop it replaced: same arrivals, same capacity drops,
    /// same serialiser state afterwards.
    #[test]
    fn shared_burst_matches_per_packet_sends() {
        let build = || {
            let mut net = Network::new();
            let a = net.add_namespace("a");
            let b = net.add_namespace("b");
            net.connect(
                a,
                b,
                LinkConfig {
                    latency: SimDuration::from_micros(10),
                    bandwidth: 1.0e6,
                    queue_capacity: 300,
                },
            );
            let rx = net.bind_with_capacity(b, 1, 10_000).unwrap();
            let tx = net.bind(a, 2).unwrap();
            (net, a, b, rx, tx)
        };
        let payload: Arc<[u8]> = vec![7u8; 100].into();
        let dst = |b| Addr { ns: b, port: 1 };

        // Reference: 500 individual sends of equal bytes (200 dropped at
        // the 300-packet queue).
        let (mut reference, _, b1, rx1, tx1) = build();
        for _ in 0..500 {
            reference
                .send(tx1, dst(b1), payload.to_vec(), SimTime::ZERO)
                .unwrap();
        }
        // Burst: the same 500 packets as one RLE entry.
        let (mut burst, _, b2, rx2, tx2) = build();
        burst
            .send_shared(tx2, dst(b2), &payload, 500, SimTime::ZERO)
            .unwrap();

        assert_eq!(reference.link_drops(), 200);
        assert_eq!(burst.link_drops(), 200);
        // Halfway through the serialisation window both must have
        // delivered the same prefix...
        let t_half = SimTime::from_millis(15);
        reference.step(t_half);
        burst.step(t_half);
        assert_eq!(
            reference.socket_stats(rx1).delivered,
            burst.socket_stats(rx2).delivered,
        );
        assert!(burst.socket_stats(rx2).delivered > 0);
        // ...and at the end, all 300 admitted packets with equal bytes.
        let t_end = SimTime::from_secs(1);
        reference.step(t_end);
        burst.step(t_end);
        assert_eq!(reference.socket_stats(rx1), burst.socket_stats(rx2));
        assert_eq!(burst.socket_stats(rx2).delivered, 300);
        while let Some(p) = reference.recv(rx1) {
            let q = burst.recv(rx2).expect("burst delivered fewer packets");
            assert_eq!(p.payload, q.payload);
            assert_eq!(p.sent, q.sent);
        }
        assert!(burst.recv(rx2).is_none());
    }

    /// Individually sent packets behind a burst keep FIFO arrival order —
    /// the flood and the genuine motor stream share one link direction.
    #[test]
    fn burst_interleaves_with_single_sends_in_fifo_order() {
        let (mut net, host, cce) = pair();
        let rx = net.bind_with_capacity(host, 14600, 1024).unwrap();
        let tx = net.bind(cce, 9000).unwrap();
        let flood: Arc<[u8]> = vec![0u8; 64].into();
        let dst = Addr {
            ns: host,
            port: 14600,
        };
        net.send_shared(tx, dst, &flood, 5, SimTime::ZERO).unwrap();
        net.send(tx, dst, vec![1u8; 64], SimTime::ZERO).unwrap();
        net.send_shared(tx, dst, &flood, 3, SimTime::ZERO).unwrap();
        net.step(SimTime::from_millis(1));
        let mut seen = Vec::new();
        while let Some(pkt) = net.recv(rx) {
            seen.push(pkt.payload.as_slice()[0]);
        }
        assert_eq!(seen, [0, 0, 0, 0, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn next_delivery_time_tracks_queued_packets() {
        let (mut net, host, cce) = pair();
        let _rx = net.bind(cce, 14660).unwrap();
        let tx = net.bind(host, 9000).unwrap();
        assert_eq!(net.next_delivery_time(), None, "idle net has no arrivals");
        net.send(
            tx,
            Addr {
                ns: cce,
                port: 14660,
            },
            vec![0; 52],
            SimTime::ZERO,
        )
        .unwrap();
        let hint = net.next_delivery_time().expect("one packet in flight");
        // Stepping to just before the hint delivers nothing; stepping to
        // the hint delivers the packet and clears it.
        assert!(net.step(hint - SimDuration::from_nanos(1)).is_empty());
        assert_eq!(net.next_delivery_time(), Some(hint));
        assert_eq!(net.step(hint).len(), 1);
        assert_eq!(net.next_delivery_time(), None);
    }

    #[test]
    fn next_delivery_time_walks_burst_strides() {
        let (mut net, host, cce) = pair();
        let _rx = net.bind_with_capacity(host, 14600, 1024).unwrap();
        let tx = net.bind(cce, 9000).unwrap();
        let flood: Arc<[u8]> = vec![0u8; 64].into();
        let dst = Addr {
            ns: host,
            port: 14600,
        };
        net.send_shared(tx, dst, &flood, 10, SimTime::ZERO).unwrap();
        let first = net.next_delivery_time().expect("burst queued");
        net.step(first);
        let second = net.next_delivery_time().expect("nine packets left");
        assert!(second > first, "RLE stride advances the hint");
        net.step(SimTime::from_secs(1));
        assert_eq!(net.next_delivery_time(), None);
    }

    #[test]
    fn next_token_time_reads_socket_and_pending_limits() {
        let (mut net, host, _) = pair();
        let dst = Addr {
            ns: host,
            port: 14600,
        };
        let now = SimTime::from_millis(3);
        assert_eq!(net.next_token_time(dst, now), now, "no limit: immediate");
        // A limit installed before anything binds waits in `rate_limits`.
        net.add_rate_limit(dst, 100.0, 1.0);
        assert_eq!(net.next_token_time(dst, now), now, "full bucket");
        let _rx = net.bind(host, 14600).unwrap();
        assert_eq!(net.next_token_time(dst, now), now, "moved onto socket");
    }

    /// A fleet executor moves shard networks onto worker threads, so the
    /// whole `Network` (packets, pools, bursts included) must be `Send`.
    #[test]
    fn network_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Network>();
        assert_send::<Packet>();
        assert_send::<PacketBuf>();
    }

    #[test]
    fn deliveries_are_deterministic_and_sorted() {
        let (mut net, host, cce) = pair();
        let rx1 = net.bind(host, 1).unwrap();
        let rx2 = net.bind(host, 2).unwrap();
        let tx = net.bind(cce, 9).unwrap();
        for port in [2u16, 1, 2, 1, 2] {
            net.send(tx, Addr { ns: host, port }, vec![0], SimTime::ZERO)
                .unwrap();
        }
        let d = net.step(SimTime::from_millis(1));
        assert_eq!(
            d,
            vec![
                Delivery {
                    socket: rx1,
                    count: 2
                },
                Delivery {
                    socket: rx2,
                    count: 3
                }
            ]
        );
    }

    /// Deterministic PCG-style generator for the randomized equivalence
    /// grids — no external crates, identical sequence on every run.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn pick(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Drains both sockets fully and demands byte-identical packet
    /// streams (payload, sent time, source) plus identical stats.
    fn assert_drained_equal(a: &mut Network, ra: SocketId, b: &mut Network, rb: SocketId) {
        assert_eq!(a.socket_stats(ra), b.socket_stats(rb), "socket stats");
        loop {
            match (a.recv(ra), b.recv(rb)) {
                (None, None) => break,
                (Some(p), Some(q)) => {
                    assert_eq!(p.payload.as_slice(), q.payload.as_slice(), "payload");
                    assert_eq!(p.sent, q.sent, "sent time");
                    assert_eq!(p.src, q.src, "source");
                }
                (p, q) => panic!(
                    "stream lengths diverge: {:?} vs {:?}",
                    p.is_some(),
                    q.is_some()
                ),
            }
        }
    }

    /// The satellite equivalence grid: bulk settlement vs the per-packet
    /// reference across random token-bucket configs, link capacities,
    /// interleaved non-burst traffic from a *second* link into the same
    /// rate-limited port (exercising the non-uniform bucket-clock
    /// fallback), mid-run drains, and random step boundaries. Frames,
    /// stats, drop counts and delivery order must be byte-equal.
    #[test]
    fn bulk_settlement_matches_per_packet_reference_across_grid() {
        let mut rng = Lcg(0x5eed_cafe_f00d_0001);
        for round in 0..60 {
            let queue_cap = [4usize, 32, 300, 2048][rng.pick(4) as usize];
            let rx_cap = [2usize, 16, 256, 10_000][rng.pick(4) as usize];
            let bandwidth = [1.0e5, 2.0e6, 125.0e6][rng.pick(3) as usize];
            let latency = SimDuration::from_micros([0u64, 10, 2000][rng.pick(3) as usize]);
            let limit = match rng.pick(4) {
                0 => None,
                1 => Some((50.0, 10.0)),
                2 => Some((2000.0, 200.0)),
                _ => Some((250_000.0, 1.0)),
            };
            let build = |bulk: bool| {
                let mut net = Network::new();
                let a = net.add_namespace("a");
                let b = net.add_namespace("b");
                let c = net.add_namespace("c");
                let cfg = LinkConfig {
                    latency,
                    bandwidth,
                    queue_capacity: queue_cap,
                };
                net.connect(a, b, cfg);
                net.connect(c, b, cfg);
                let dst = Addr { ns: b, port: 1 };
                if let Some((pps, burst)) = limit {
                    net.add_rate_limit(dst, pps, burst);
                }
                let rx = net.bind_with_capacity(b, 1, rx_cap).unwrap();
                let tx_a = net.bind(a, 2).unwrap();
                let tx_c = net.bind(c, 2).unwrap();
                net.set_bulk(bulk);
                (net, rx, tx_a, tx_c, dst)
            };
            let (mut bulk, rx_b, txa_b, txc_b, dst) = build(true);
            let (mut refr, rx_r, txa_r, txc_r, _) = build(false);
            let payload: Arc<[u8]> = vec![round as u8; 1 + rng.pick(80) as usize].into();

            let mut now = SimTime::ZERO;
            for _ in 0..30 {
                now += SimDuration::from_micros(rng.pick(4000));
                match rng.pick(6) {
                    0 | 1 => {
                        let count = 1 + rng.pick(400);
                        bulk.send_shared(txa_b, dst, &payload, count, now).unwrap();
                        refr.send_shared(txa_r, dst, &payload, count, now).unwrap();
                    }
                    2 => {
                        // Interleaved individual traffic on the same dir.
                        bulk.send(txa_b, dst, payload.to_vec(), now).unwrap();
                        refr.send(txa_r, dst, payload.to_vec(), now).unwrap();
                    }
                    3 => {
                        // Cross-link traffic into the same rate-limited
                        // port: the bucket clock advances out of band.
                        let count = 1 + rng.pick(50);
                        bulk.send_shared(txc_b, dst, &payload, count, now).unwrap();
                        refr.send_shared(txc_r, dst, &payload, count, now).unwrap();
                    }
                    4 => {
                        let d_b: Vec<Delivery> = bulk.step(now).to_vec();
                        let d_r: Vec<Delivery> = refr.step(now).to_vec();
                        assert_eq!(d_b, d_r, "deliveries diverged at {now:?}");
                    }
                    _ => {
                        // Mid-run partial drain frees receive-queue space.
                        for _ in 0..rng.pick(8) {
                            match (bulk.recv(rx_b), refr.recv(rx_r)) {
                                (None, None) => break,
                                (Some(p), Some(q)) => {
                                    assert_eq!(p.sent, q.sent);
                                    assert_eq!(p.payload.as_slice(), q.payload.as_slice());
                                }
                                _ => panic!("drain diverged"),
                            }
                        }
                    }
                }
            }
            let end = now + SimDuration::from_secs(10);
            assert_eq!(bulk.step(end).to_vec(), refr.step(end).to_vec());
            assert_eq!(bulk.link_drops(), refr.link_drops(), "link drops");
            assert_eq!(bulk.packets_sent(), refr.packets_sent());
            assert_drained_equal(&mut bulk, rx_b, &mut refr, rx_r);
        }
    }

    /// `send_paced` (one collapsed span entry, or its per-batch
    /// fallback) vs the per-quantum `send_shared` loop it replaces:
    /// byte-equal delivery streams and stats across random strides,
    /// batch sizes, pre-loaded serialisers and tight queues — with bulk
    /// settlement on and off.
    #[test]
    fn paced_span_matches_per_quantum_shared_sends() {
        let mut rng = Lcg(0x5eed_cafe_f00d_0002);
        for round in 0..60 {
            let queue_cap = [8usize, 64, 1024][rng.pick(3) as usize];
            let bandwidth = [2.0e6, 125.0e6][rng.pick(2) as usize];
            let latency = SimDuration::from_micros([5u64, 50][rng.pick(2) as usize]);
            let limit = match rng.pick(3) {
                0 => None,
                1 => Some((900.0, 20.0)),
                _ => Some((20_000.0, 3.0)),
            };
            let bulk_on = rng.pick(2) == 0;
            let build = |_| {
                let mut net = Network::new();
                let a = net.add_namespace("a");
                let b = net.add_namespace("b");
                let cfg = LinkConfig {
                    latency,
                    bandwidth,
                    queue_capacity: queue_cap,
                };
                net.connect(a, b, cfg);
                let dst = Addr { ns: b, port: 1 };
                if let Some((pps, burst)) = limit {
                    net.add_rate_limit(dst, pps, burst);
                }
                let rx = net.bind_with_capacity(b, 1, 4096).unwrap();
                let tx = net.bind(a, 2).unwrap();
                net.set_bulk(bulk_on);
                (net, rx, tx, dst)
            };
            let (mut paced, rx_p, tx_p, dst) = build(());
            let (mut refr, rx_r, tx_r, _) = build(());
            let payload: Arc<[u8]> = vec![round as u8; 1 + rng.pick(64) as usize].into();

            // Sometimes pre-load the serialiser so the collapsed-entry
            // precondition fails and the fallback path runs.
            let first = SimTime::from_micros(100 + rng.pick(500));
            if rng.pick(3) == 0 {
                let t0 = SimTime::from_micros(rng.pick(700));
                paced.send(tx_p, dst, payload.to_vec(), t0).unwrap();
                refr.send(tx_r, dst, payload.to_vec(), t0).unwrap();
            }
            let per_batch = 1 + rng.pick(3);
            let batches = 1 + rng.pick(120);
            let stride = SimDuration::from_micros(1 + rng.pick(200));

            paced
                .send_paced(tx_p, dst, &payload, per_batch, batches, first, stride)
                .unwrap();
            for b in 0..batches {
                refr.send_shared(tx_r, dst, &payload, per_batch, first + stride * b)
                    .unwrap();
            }

            // Step through the span at random boundaries, comparing the
            // delivery notifications along the way.
            let span_end = first + stride * batches + SimDuration::from_secs(1);
            let mut now = first;
            while now < span_end {
                now += SimDuration::from_micros(1 + rng.pick(40_000));
                let t = now.min(span_end);
                assert_eq!(paced.step(t).to_vec(), refr.step(t).to_vec());
            }
            assert_eq!(paced.link_drops(), refr.link_drops());
            assert_eq!(paced.packets_sent(), refr.packets_sent());
            assert_drained_equal(&mut paced, rx_p, &mut refr, rx_r);
        }
    }
}
