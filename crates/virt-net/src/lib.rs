//! Virtual network stack for the ContainerDrone reproduction.
//!
//! Implements the communication substrate of §III-E/§IV-D: isolated
//! namespaces joined by a docker0-style bridge link, UDP sockets with
//! finite receive queues, Docker port mapping (hairpin NAT), and iptables
//! token-bucket ingress rate limiting. Packet delivery notifications let
//! the scheduler charge per-packet CPU cost to a receiving thread — the
//! coupling a UDP flood exploits.
//!
//! # Examples
//!
//! ```
//! use virt_net::prelude::*;
//! use sim_core::time::SimTime;
//!
//! let mut net = Network::new();
//! let host = net.add_namespace("host");
//! let cce = net.add_namespace("cce");
//! net.connect(host, cce, LinkConfig::default());
//! // The HCE listens for motor output on 14600 (Table I).
//! let rx = net.bind(host, 14600).unwrap();
//! let tx = net.bind(cce, 40000).unwrap();
//! net.add_rate_limit(Addr { ns: host, port: 14600 }, 2000.0, 100.0);
//! net.send(tx, Addr { ns: host, port: 14600 }, vec![0; 29], SimTime::ZERO).unwrap();
//! let deliveries = net.step(SimTime::from_millis(1));
//! assert_eq!(deliveries.len(), 1);
//! # let _ = rx;
//! ```

#![warn(missing_docs)]

pub mod filter;
pub mod net;

pub use filter::TokenBucket;
pub use net::{
    Addr, Delivery, LinkConfig, NetCounters, NetError, Network, NsId, Packet, SocketId, SocketStats,
};

/// Convenient glob import of the network types.
pub mod prelude {
    pub use crate::filter::TokenBucket;
    pub use crate::net::{
        Addr, Delivery, LinkConfig, NetCounters, NetError, Network, NsId, Packet, SocketId,
        SocketStats,
    };
}
