//! Property-based tests for the virtual network: packet conservation,
//! rate-limit ceilings, and per-flow FIFO ordering under arbitrary traffic.

use proptest::prelude::*;
use sim_core::time::{SimDuration, SimTime};
use virt_net::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every datagram sent is accounted for exactly once: delivered,
    /// dropped by the rate limit, dropped by the receive queue, or dropped
    /// at the link transmit queue.
    #[test]
    fn packet_conservation(
        sends in prop::collection::vec((0u64..200_000, 1usize..200), 1..200),
        rx_cap in 1usize..128,
        limit in prop::option::of((50.0f64..2000.0, 1.0f64..64.0)),
    ) {
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let cce = net.add_namespace("cce");
        net.connect(host, cce, LinkConfig::default());
        let rx = net.bind_with_capacity(host, 14600, rx_cap).unwrap();
        let tx = net.bind(cce, 9000).unwrap();
        if let Some((pps, burst)) = limit {
            net.add_rate_limit(Addr { ns: host, port: 14600 }, pps, burst);
        }

        let mut sent = 0u64;
        let mut order: Vec<(u64, usize)> = sends;
        order.sort_by_key(|&(t, _)| t);
        for (t_us, size) in order {
            let t = SimTime::from_micros(t_us);
            net.step(t);
            net.send(tx, Addr { ns: host, port: 14600 }, vec![0u8; size], t).unwrap();
            sent += 1;
        }
        net.step(SimTime::from_secs(10)); // drain everything
        let stats = net.socket_stats(rx);
        let accounted = stats.delivered
            + stats.dropped_ratelimit
            + stats.dropped_overflow
            + net.link_drops();
        prop_assert_eq!(accounted, sent, "conservation: {:?}", stats);
        // Receive queue never exceeds its capacity.
        prop_assert!(net.rx_depth(rx) <= rx_cap);
    }

    /// The token bucket never admits more than burst + rate × duration.
    #[test]
    fn rate_limit_ceiling(
        pps in 100.0f64..5000.0,
        burst in 1.0f64..100.0,
        offered_per_ms in 1usize..40,
    ) {
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let cce = net.add_namespace("cce");
        net.connect(host, cce, LinkConfig::default());
        let rx = net.bind_with_capacity(host, 1, 1_000_000).unwrap();
        let tx = net.bind(cce, 2).unwrap();
        net.add_rate_limit(Addr { ns: host, port: 1 }, pps, burst);

        let duration_ms = 500u64;
        for ms in 0..duration_ms {
            let t = SimTime::from_millis(ms);
            for _ in 0..offered_per_ms {
                net.send(tx, Addr { ns: host, port: 1 }, vec![0u8; 32], t).unwrap();
            }
            net.step(t + SimDuration::from_micros(999));
        }
        net.step(SimTime::from_secs(5));
        let delivered = net.socket_stats(rx).delivered as f64;
        let ceiling = burst + pps * (duration_ms as f64 / 1000.0) + 1.0;
        prop_assert!(
            delivered <= ceiling,
            "delivered {delivered} exceeds ceiling {ceiling}"
        );
    }

    /// Datagrams of one flow arrive in the order they were sent.
    #[test]
    fn per_flow_fifo(count in 2usize..100, gap_us in 0u64..500) {
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let cce = net.add_namespace("cce");
        net.connect(host, cce, LinkConfig::default());
        let rx = net.bind_with_capacity(host, 1, 4096).unwrap();
        let tx = net.bind(cce, 2).unwrap();
        for i in 0..count {
            let t = SimTime::from_micros(i as u64 * gap_us);
            net.step(t);
            net.send(
                tx,
                Addr { ns: host, port: 1 },
                (i as u32).to_le_bytes().to_vec(),
                t,
            )
            .unwrap();
        }
        net.step(SimTime::from_secs(10));
        let mut prev = None;
        while let Some(pkt) = net.recv(rx) {
            let seq = u32::from_le_bytes(pkt.payload[..4].try_into().unwrap());
            if let Some(p) = prev {
                prop_assert!(seq > p, "out of order: {seq} after {p}");
            }
            prev = Some(seq);
        }
        prop_assert_eq!(prev, Some(count as u32 - 1));
    }

    /// Below-limit, below-capacity traffic is delivered losslessly.
    #[test]
    fn polite_traffic_is_lossless(count in 1usize..200) {
        let mut net = Network::new();
        let host = net.add_namespace("host");
        let cce = net.add_namespace("cce");
        net.connect(host, cce, LinkConfig::default());
        let rx = net.bind_with_capacity(host, 1, 512).unwrap();
        let tx = net.bind(cce, 2).unwrap();
        net.add_rate_limit(Addr { ns: host, port: 1 }, 2000.0, 100.0);
        for i in 0..count {
            // 1 kHz offered against a 2 kHz limit; drain as we go.
            let t = SimTime::from_millis(i as u64);
            net.send(tx, Addr { ns: host, port: 1 }, vec![7u8; 29], t).unwrap();
            net.step(t + SimDuration::from_micros(900));
            let _ = net.recv_all(rx);
        }
        net.step(SimTime::from_secs(5));
        let _ = net.recv_all(rx);
        let stats = net.socket_stats(rx);
        prop_assert_eq!(stats.delivered as usize, count);
        prop_assert_eq!(stats.dropped_ratelimit, 0);
        prop_assert_eq!(stats.dropped_overflow, 0);
    }
}
