//! Virtual-machine overhead model for the Table II comparison.
//!
//! The paper compares CPU idle rates with one QEMU v3.0.0 VM emulating an
//! ARM Versatile/PB (ARM926EJ-S) with 256 MB against one container. Full-
//! system TCG emulation is expensive even for an idle guest: every guest
//! timer tick runs translated code, and QEMU's vCPU, I/O and device-model
//! threads all burn host CPU. We model those threads as host tasks whose
//! utilizations are **calibrated to the paper's measurement** (idle rates
//! ≈ 0.86/0.83/0.81/0.77) — the shape that matters is VM ≫ container ≈
//! native, and it is reproduced structurally, not hard-coded: the tasks
//! below really run on the simulated machine and the idle rates are
//! measured back from the scheduler's accounting.

use rt_sched::machine::Machine;
use rt_sched::task::{Cost, CpuSet, TaskId, TaskSpec};
use sim_core::time::SimDuration;

/// Configuration of the emulated VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// VM name.
    pub name: String,
    /// Per-core utilization of the QEMU thread pinned to each core,
    /// fractions of that core.
    pub thread_loads: Vec<f64>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            name: "qemu-arm926".to_string(),
            // Calibrated against Table II: one idle ARM926 full-system
            // emulation costs 9–22% per core in QEMU threads (vCPU TCG,
            // iothread, device timers, display/misc), on top of the host
            // background load.
            thread_loads: vec![0.09, 0.16, 0.18, 0.22],
        }
    }
}

/// A running VM: a set of QEMU host threads.
#[derive(Debug)]
pub struct Vm {
    name: String,
    tasks: Vec<TaskId>,
}

impl Vm {
    /// Starts the VM's QEMU threads on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `thread_loads` is longer than the machine's core count or
    /// any load is outside `[0, 1)`.
    pub fn start(machine: &mut Machine, config: VmConfig) -> Vm {
        assert!(
            config.thread_loads.len() <= machine.config().n_cores,
            "more QEMU threads than cores"
        );
        let root = machine.root_cgroup();
        let mut tasks = Vec::new();
        for (core, &load) in config.thread_loads.iter().enumerate() {
            assert!((0.0..1.0).contains(&load), "load out of range: {load}");
            if load == 0.0 {
                continue;
            }
            // Guest timer ticks dominate: model as a 1 kHz periodic task
            // whose per-job cost yields the calibrated utilization. TCG
            // translation of a near-idle guest runs hot in the translation
            // cache, so the cost is compute-dominated.
            let period = SimDuration::from_millis(1);
            let spec = TaskSpec::periodic_fair(
                format!("{}/thread{}", config.name, core),
                period,
                Cost::compute(period.mul_f64(load)),
            )
            .with_affinity(CpuSet::single(core));
            tasks.push(machine.spawn(spec, root));
        }
        Vm {
            name: config.name,
            tasks,
        }
    }

    /// VM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stops the VM (kills all QEMU threads).
    pub fn stop(&mut self, machine: &mut Machine) {
        for t in self.tasks.drain(..) {
            machine.kill(t);
        }
    }
}

/// Spawns the host's background load (kernel threads, system daemons):
/// the "no container nor VM" baseline of Table II, where CPU0 idles at
/// ~0.95 and the remaining cores at ~0.99.
pub fn spawn_system_background(machine: &mut Machine) -> Vec<TaskId> {
    let root = machine.root_cgroup();
    let mut ids = Vec::new();
    // Kernel housekeeping on CPU0 (~5%).
    ids.push(
        machine.spawn(
            TaskSpec::periodic_fifo(
                "kworker/0",
                40,
                SimDuration::from_millis(10),
                Cost::compute(SimDuration::from_micros(480)),
            )
            .with_affinity(CpuSet::single(0)),
            root,
        ),
    );
    // Light per-core ticks (~0.7% each).
    for core in 1..machine.config().n_cores {
        ids.push(
            machine.spawn(
                TaskSpec::periodic_fifo(
                    format!("tick/{core}"),
                    40,
                    SimDuration::from_millis(10),
                    Cost::compute(SimDuration::from_micros(70)),
                )
                .with_affinity(CpuSet::single(core)),
                root,
            ),
        );
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sched::machine::MachineConfig;
    use sim_core::time::SimTime;

    fn measure_idle<F: FnOnce(&mut Machine)>(setup: F) -> Vec<f64> {
        let mut m = Machine::new(MachineConfig::default());
        spawn_system_background(&mut m);
        setup(&mut m);
        let mut ev = Vec::new();
        // Warm up, then measure a 5 s window as the paper does.
        m.step_until(SimTime::from_secs(1), &mut ev);
        m.reset_accounting();
        m.step_until(SimTime::from_secs(6), &mut ev);
        m.idle_rates()
    }

    #[test]
    fn baseline_matches_table2_native_row() {
        let idle = measure_idle(|_| {});
        assert!((idle[0] - 0.95).abs() < 0.01, "cpu0 {}", idle[0]);
        for (c, rate) in idle.iter().enumerate().skip(1) {
            assert!(*rate > 0.98, "cpu{c} {rate}");
        }
    }

    #[test]
    fn vm_costs_far_more_than_nothing() {
        let idle = measure_idle(|m| {
            Vm::start(m, VmConfig::default());
        });
        // Table II shape: every core loses 10–25%.
        assert!(idle[0] < 0.90, "cpu0 {}", idle[0]);
        assert!(idle[3] < 0.82, "cpu3 {}", idle[3]);
        assert!(idle.iter().all(|&r| r > 0.5), "sane lower bound");
    }

    #[test]
    fn vm_stop_restores_idle() {
        let mut m = Machine::new(MachineConfig::default());
        let mut vm = Vm::start(&mut m, VmConfig::default());
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(1), &mut ev);
        vm.stop(&mut m);
        m.reset_accounting();
        m.step_until(SimTime::from_secs(2), &mut ev);
        assert!(m.idle_rates().iter().all(|&r| r > 0.999));
    }

    #[test]
    #[should_panic(expected = "load out of range")]
    fn vm_rejects_bad_load() {
        let mut m = Machine::new(MachineConfig::default());
        let _ = Vm::start(
            &mut m,
            VmConfig {
                name: "bad".into(),
                thread_loads: vec![1.5],
            },
        );
    }
}
