//! Container runtime and VM overhead models for the ContainerDrone
//! reproduction.
//!
//! * [`container`] — a Docker-like runtime over [`rt_sched`] cgroups and
//!   [`virt_net`] namespaces: cpuset confinement, no-realtime demotion,
//!   bridged networking with port mapping, lifecycle control.
//! * [`vm`] — the QEMU-style VM overhead model and the host background
//!   load, which together regenerate the paper's Table II comparison.
//!
//! # Examples
//!
//! ```
//! use container_rt::prelude::*;
//! use rt_sched::prelude::*;
//! use virt_net::prelude::*;
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let mut net = Network::new();
//! let host = net.add_namespace("host");
//! let mut cce = Container::create(&mut machine, &mut net, host,
//!                                 ContainerConfig::cce(3));
//! // Whatever the task asks for, it runs best-effort on core 3 only.
//! cce.run_task(&mut machine,
//!              TaskSpec::busy_fair("complex-controller",
//!                                  Cost::compute(sim_core::time::SimDuration::from_secs(1))));
//! ```

#![warn(missing_docs)]

pub mod container;
pub mod vm;

pub use container::{Container, ContainerConfig, ContainerState};
pub use vm::{spawn_system_background, Vm, VmConfig};

/// Convenient glob import of the runtime types.
pub mod prelude {
    pub use crate::container::{Container, ContainerConfig, ContainerState};
    pub use crate::vm::{spawn_system_background, Vm, VmConfig};
}
