//! Container runtime: a Docker-like lifecycle over the scheduler's cgroups
//! and the virtual network's namespaces.
//!
//! Reproduces the isolation properties the paper relies on (§III-C, §IV-B):
//!
//! * the container's cgroup binds all its processes to a cpuset
//!   (one core for the CCE),
//! * processes inside cannot raise themselves to a real-time class,
//! * the container lives in its own network namespace behind a
//!   docker0-style bridge, with explicit port mappings (hairpin NAT),
//! * no privileged flags: there is no API to escape any of the above —
//!   matching the paper's attacker model, which trusts Docker isolation.

use rt_sched::cgroup::{Cgroup, CgroupId};
use rt_sched::machine::Machine;
use rt_sched::task::{CpuSet, TaskId, TaskSpec};
use virt_net::net::{Addr, LinkConfig, Network, NsId};

/// Configuration for creating a container.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    /// Container name.
    pub name: String,
    /// Cores the container may use (the paper dedicates one of four).
    pub cpuset: CpuSet,
    /// Link between the container namespace and the host bridge.
    pub link: LinkConfig,
    /// Periodic runtime housekeeping cost on the host (dockerd/containerd
    /// bookkeeping). Fractions of one core, e.g. 0.002 = 0.2 %.
    pub runtime_overhead: f64,
}

impl ContainerConfig {
    /// A CCE-style container confined to `core`.
    pub fn cce(core: usize) -> Self {
        ContainerConfig {
            name: "cce".to_string(),
            cpuset: CpuSet::single(core),
            link: LinkConfig::default(),
            runtime_overhead: 0.004,
        }
    }
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created and able to run tasks.
    Running,
    /// Stopped: all tasks killed.
    Stopped,
}

/// A running container.
#[derive(Debug)]
pub struct Container {
    name: String,
    cgroup: CgroupId,
    ns: NsId,
    tasks: Vec<TaskId>,
    housekeeping: Vec<TaskId>,
    state: ContainerState,
}

impl Container {
    /// Creates a container: a restricted cgroup on `machine`, a namespace
    /// on `net` linked to `host_ns`, and host-side runtime housekeeping
    /// tasks.
    pub fn create(
        machine: &mut Machine,
        net: &mut Network,
        host_ns: NsId,
        config: ContainerConfig,
    ) -> Container {
        let cgroup = machine.add_cgroup(Cgroup::container(
            format!("docker/{}", config.name),
            config.cpuset,
        ));
        let ns = net.add_namespace(format!("netns-{}", config.name));
        net.connect(host_ns, ns, config.link);

        // dockerd + containerd-shim housekeeping on the host (fair class).
        let mut housekeeping = Vec::new();
        if config.runtime_overhead > 0.0 {
            let period = sim_core::time::SimDuration::from_millis(100);
            let cpu = period.mul_f64(config.runtime_overhead);
            let root = machine.root_cgroup();
            housekeeping.push(machine.spawn(
                rt_sched::task::TaskSpec::periodic_fair(
                    format!("dockerd/{}", config.name),
                    period,
                    rt_sched::task::Cost::compute(cpu),
                ),
                root,
            ));
        }

        Container {
            name: config.name,
            cgroup,
            ns,
            tasks: Vec::new(),
            housekeeping,
            state: ContainerState::Running,
        }
    }

    /// Container name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The network namespace of this container.
    pub fn netns(&self) -> NsId {
        self.ns
    }

    /// The cgroup its tasks run in.
    pub fn cgroup(&self) -> CgroupId {
        self.cgroup
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Task ids started in this container.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Runs a task inside the container. The cgroup's restrictions apply
    /// regardless of what the spec asks for.
    ///
    /// # Panics
    ///
    /// Panics if the container is stopped.
    pub fn run_task(&mut self, machine: &mut Machine, spec: TaskSpec) -> TaskId {
        assert_eq!(
            self.state,
            ContainerState::Running,
            "cannot start tasks in a stopped container"
        );
        let id = machine.spawn(spec, self.cgroup);
        self.tasks.push(id);
        id
    }

    /// Exposes a container port on the host (Docker port mapping with
    /// hairpin NAT): traffic to `host_ns:port` is redirected into the
    /// container.
    pub fn expose_port(&self, net: &mut Network, host_ns: NsId, port: u16) {
        net.map_port(Addr { ns: host_ns, port }, Addr { ns: self.ns, port });
    }

    /// Stops the container: kills every task inside (housekeeping on the
    /// host is also retired).
    pub fn stop(&mut self, machine: &mut Machine) {
        for t in self.tasks.drain(..) {
            machine.kill(t);
        }
        for t in self.housekeeping.drain(..) {
            machine.kill(t);
        }
        self.state = ContainerState::Stopped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sched::machine::MachineConfig;
    use rt_sched::task::{Activation, Cost, SchedPolicy};
    use sim_core::time::{SimDuration, SimTime};

    fn setup() -> (Machine, Network, NsId) {
        let machine = Machine::new(MachineConfig::default());
        let mut net = Network::new();
        let host = net.add_namespace("host");
        (machine, net, host)
    }

    #[test]
    fn container_confines_tasks_to_cpuset() {
        let (mut m, mut net, host) = setup();
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        c.run_task(
            &mut m,
            TaskSpec::busy_fair("spin", Cost::compute(SimDuration::from_secs(1))),
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(100), &mut ev);
        let cores = m.core_stats();
        assert!(cores[3].busy > SimDuration::from_millis(90));
        assert!(cores[0].busy < SimDuration::from_millis(5));
    }

    #[test]
    fn container_denies_realtime_priority() {
        let (mut m, mut net, host) = setup();
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        let id = c.run_task(
            &mut m,
            TaskSpec {
                name: "wannabe-rt".into(),
                policy: SchedPolicy::Fifo { priority: 99 },
                affinity: CpuSet::ALL,
                activation: Activation::Busy,
                cost: Cost::compute(SimDuration::from_secs(1)),
            },
        );
        // A real RT task pinned to the same core must completely dominate.
        let root = m.root_cgroup();
        let rt = m.spawn(
            TaskSpec::periodic_fifo(
                "host-rt",
                20,
                SimDuration::from_millis(1),
                Cost::compute(SimDuration::from_micros(900)),
            )
            .with_affinity(CpuSet::single(3)),
            root,
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(200), &mut ev);
        assert_eq!(m.task_stats(rt).skips, 0, "host RT task never yields");
        assert!(m.task_stats(id).busy_time < SimDuration::from_millis(40));
    }

    #[test]
    fn stop_kills_container_tasks() {
        let (mut m, mut net, host) = setup();
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(2));
        let id = c.run_task(
            &mut m,
            TaskSpec::busy_fair("spin", Cost::compute(SimDuration::from_secs(1))),
        );
        let mut ev = Vec::new();
        m.step_until(SimTime::from_millis(10), &mut ev);
        c.stop(&mut m);
        assert_eq!(c.state(), ContainerState::Stopped);
        assert!(!m.is_alive(id));
        let busy_before = m.core_stats()[2].busy;
        m.step_until(SimTime::from_millis(50), &mut ev);
        assert_eq!(m.core_stats()[2].busy, busy_before);
    }

    #[test]
    #[should_panic(expected = "stopped container")]
    fn run_task_after_stop_panics() {
        let (mut m, mut net, host) = setup();
        let mut c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(1));
        c.stop(&mut m);
        c.run_task(
            &mut m,
            TaskSpec::busy_fair("late", Cost::compute(SimDuration::from_secs(1))),
        );
    }

    #[test]
    fn expose_port_maps_host_traffic_into_container() {
        let (mut m, mut net, host) = setup();
        let c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        c.expose_port(&mut net, host, 14660);
        let rx = net.bind(c.netns(), 14660).unwrap();
        let tx = net.bind(host, 9999).unwrap();
        net.send(
            tx,
            Addr {
                ns: host,
                port: 14660,
            },
            vec![0; 52],
            SimTime::ZERO,
        )
        .unwrap();
        net.step(SimTime::from_millis(1));
        assert_eq!(net.socket_stats(rx).delivered, 1);
        let _ = m;
    }

    #[test]
    fn runtime_housekeeping_is_small() {
        let (mut m, mut net, host) = setup();
        let _c = Container::create(&mut m, &mut net, host, ContainerConfig::cce(3));
        let mut ev = Vec::new();
        m.step_until(SimTime::from_secs(5), &mut ev);
        let idle = m.idle_rates();
        // The container runtime alone costs well under 1% anywhere.
        for (i, rate) in idle.iter().enumerate() {
            assert!(*rate > 0.99, "core {i} idle {rate}");
        }
    }
}
