//! Shared-memory bandwidth modelling and MemGuard for the ContainerDrone
//! reproduction.
//!
//! Implements the substrate behind §III-D of the paper: a shared DRAM bus
//! whose contention inflates victims' execution time, per-core performance
//! counters, and the MemGuard bandwidth regulator (budget per period,
//! throttle on exhaustion, replenish at the period boundary).
//!
//! # Examples
//!
//! ```
//! use membw::prelude::*;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! let dram = DramConfig::default();
//! let mut mem = MemorySystem::new(4, dram);
//! // Regulate core 3 (the CCE core) to 5% of the bus.
//! mem.enable_memguard(MemGuardConfig::single_core(4, 3, 0.05, &dram));
//! let hog = CoreDemand { bandwidth: 14.0e6, stall_fraction: 0.95, streaming: true };
//! let idle = CoreDemand::default();
//! let out = mem.quantum(SimTime::ZERO, SimDuration::from_micros(50),
//!                       &[idle, idle, idle, hog]);
//! assert!(!out[3].throttled); // budget fresh at t=0
//! ```

#![warn(missing_docs)]

pub mod dram;

pub use dram::{
    CoreDemand, CoreOutcome, DramConfig, FairDrive, FairLeapStop, MemGuardConfig, MemorySystem,
    PerfCounter,
};

/// Convenient glob import of the memory-system types.
pub mod prelude {
    pub use crate::dram::{
        CoreDemand, CoreOutcome, DramConfig, FairDrive, FairLeapStop, MemGuardConfig, MemorySystem,
        PerfCounter,
    };
}
