//! Shared DRAM bandwidth and contention model.
//!
//! The paper's memory DoS attack works because all four Cortex-A53 cores of
//! the RPi3 share one LPDDR2 channel (and a small shared L2): a single
//! `Bandwidth`-style hog inflates every other core's memory latency. We use
//! the standard first-order model from the MemGuard / IsolBench literature:
//!
//! ```text
//! dilation_i = 1 + m_i · γ · U_other_i
//! ```
//!
//! where `m_i` is the fraction of task *i*'s execution that stalls on memory
//! at baseline, `U_other_i` is the fraction of bus bandwidth consumed by
//! *other* cores, and `γ` lumps together queueing delay, bank conflicts, and
//! shared-cache pollution. On in-order A53-class parts with a hot hog,
//! victim slowdowns up to ~10× are reported (DeepPicar; IsolBench), which
//! corresponds to `γ ≈ 10–16` for memory-heavy victims.

use sim_core::time::{SimDuration, SimTime};

/// DRAM model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Usable bus bandwidth, cache lines (64 B) per second.
    /// 15 M lines/s ≈ 960 MB/s, the practical streaming rate of the
    /// RPi3's LPDDR2-900.
    pub total_bandwidth: f64,
    /// Latency-inflation sensitivity γ (see module docs).
    pub contention_gamma: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            total_bandwidth: 15.0e6,
            contention_gamma: 14.0,
        }
    }
}

/// Per-core memory demand for one scheduler quantum.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreDemand {
    /// Cache-line fetch rate the running task would sustain unimpeded,
    /// lines/s. Zero for an idle core.
    pub bandwidth: f64,
    /// Fraction of the task's execution that is memory-stalled at baseline
    /// (`m` in the dilation formula), 0–1.
    pub stall_fraction: f64,
    /// `true` for bandwidth-bound streaming workloads (sequential reads or
    /// writes with perfect prefetch, like IsolBench `Bandwidth`): their
    /// progress degrades only by losing bus *share*, not by per-access
    /// latency. Latency-bound tasks (pointer chasing, control code with
    /// cache misses) instead suffer the γ dilation.
    pub streaming: bool,
}

/// Why [`MemorySystem::leap_fair_active`] stopped advancing. The
/// stopping quantum itself is never applied — it belongs to the caller
/// (a re-dispatch on `Rotation`, the stepped path on `Cap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairLeapStop {
    /// Hit `max_k` (the caller's span bound), or declined outright
    /// (0 quanta: residual cross-core service or streaming demand).
    Bound,
    /// The accumulator crossed the quantized-order threshold: the next
    /// dispatch would reorder the fair class.
    Rotation,
    /// The active core's MemGuard budget would cap the next quantum.
    Cap,
}

/// The caller-supplied accumulator [`MemorySystem::leap_fair_active`]
/// drives alongside the memory state: the running fair task's
/// `vruntime` (`acc += inc` per quantum) plus the quantized-order stop
/// threshold against the task's successor in the captured dispatch
/// order.
pub struct FairDrive<'a> {
    /// The running task's vruntime, advanced in place.
    pub acc: &'a mut f64,
    /// Per-quantum increment (`dt_secs × vruntime_scale`) — the same
    /// f64 product the stepped path adds, so the bits agree.
    pub inc: f64,
    /// `(successor_key, successor_id, runner_id)`: the walk stops
    /// *before* the quantum whose dispatch would order the successor
    /// ahead of the runner. `None` when no successor exists (the runner
    /// cannot rotate away).
    pub stop: Option<(u64, u32, u32)>,
}

/// Outcome of one quantum for one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreOutcome {
    /// Useful execution progress as a fraction of wall time (1 = full
    /// speed; 0.2 = 5× dilation; 0 = throttled by MemGuard).
    pub progress: f64,
    /// Cache lines actually transferred this quantum.
    pub served_lines: f64,
    /// `true` if MemGuard held the core stalled this quantum.
    pub throttled: bool,
}

/// Cumulative per-core counters (the "performance counters" MemGuard reads).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfCounter {
    /// Total cache lines transferred.
    pub lines: f64,
    /// Wall time spent throttled.
    pub throttled_time: SimDuration,
}

/// MemGuard configuration: a per-core budget of cache lines per regulation
/// period, matching the kernel module the paper deploys (§III-D).
#[derive(Debug, Clone, PartialEq)]
pub struct MemGuardConfig {
    /// Regulation period (the paper's MemGuard uses 1 ms).
    pub period: SimDuration,
    /// Per-core budget, lines per period. `None` = unregulated core.
    pub budgets: Vec<Option<f64>>,
}

impl MemGuardConfig {
    /// Regulates only `core` to `bandwidth_fraction` of the bus, leaving
    /// other cores (of `n_cores`) unregulated — the paper's deployment:
    /// only the CCE core is budgeted.
    ///
    /// # Panics
    ///
    /// Panics if `core >= n_cores` or the fraction is outside `(0, 1]`.
    pub fn single_core(
        n_cores: usize,
        core: usize,
        bandwidth_fraction: f64,
        dram: &DramConfig,
    ) -> Self {
        assert!(core < n_cores, "core {core} out of range");
        assert!(
            bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
            "fraction must be in (0,1]: {bandwidth_fraction}"
        );
        let period = SimDuration::from_millis(1);
        let lines_per_period = dram.total_bandwidth * bandwidth_fraction * period.as_secs_f64();
        let mut budgets = vec![None; n_cores];
        budgets[core] = Some(lines_per_period);
        MemGuardConfig { period, budgets }
    }
}

/// The shared memory system: DRAM bus plus optional MemGuard regulation.
///
/// # Examples
///
/// ```
/// use membw::dram::{CoreDemand, DramConfig, MemorySystem};
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut mem = MemorySystem::new(4, DramConfig::default());
/// let quiet = CoreDemand { bandwidth: 0.2e6, stall_fraction: 0.3, streaming: false };
/// let out = mem.quantum(SimTime::ZERO, SimDuration::from_micros(50), &[quiet; 4]);
/// assert!(out[0].progress > 0.95); // light load: almost no dilation
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: DramConfig,
    memguard: Option<MemGuardState>,
    counters: Vec<PerfCounter>,
    /// Served bandwidth per core in the previous quantum (lines/s); used to
    /// compute contention with one quantum of lag, which keeps the model
    /// explicit and stable.
    prev_served: Vec<f64>,
    /// Scratch for the quantum being computed (swapped into `prev_served`
    /// at the end of each quantum — no per-quantum allocation).
    served_scratch: Vec<f64>,
    /// Scratch backing the slice returned by [`MemorySystem::quantum`].
    outcomes: Vec<CoreOutcome>,
}

#[derive(Debug, Clone)]
struct MemGuardState {
    config: MemGuardConfig,
    used: Vec<f64>,
    next_replenish: SimTime,
    /// Number of throttle episodes per core.
    throttle_events: Vec<u64>,
}

impl MemorySystem {
    /// Creates an unregulated memory system for `n_cores` cores.
    pub fn new(n_cores: usize, config: DramConfig) -> Self {
        MemorySystem {
            config,
            memguard: None,
            counters: vec![PerfCounter::default(); n_cores],
            prev_served: vec![0.0; n_cores],
            served_scratch: vec![0.0; n_cores],
            outcomes: Vec::with_capacity(n_cores),
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.counters.len()
    }

    /// The DRAM parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Installs MemGuard regulation.
    ///
    /// # Panics
    ///
    /// Panics if the budget vector length differs from the core count.
    pub fn enable_memguard(&mut self, config: MemGuardConfig) {
        assert_eq!(
            config.budgets.len(),
            self.n_cores(),
            "budget vector must cover every core"
        );
        let n = self.n_cores();
        self.memguard = Some(MemGuardState {
            next_replenish: SimTime::ZERO,
            used: vec![0.0; n],
            throttle_events: vec![0; n],
            config,
        });
    }

    /// Removes MemGuard regulation.
    pub fn disable_memguard(&mut self) {
        self.memguard = None;
    }

    /// `true` if MemGuard is active.
    pub fn memguard_enabled(&self) -> bool {
        self.memguard.is_some()
    }

    /// Per-core cumulative counters.
    pub fn counters(&self) -> &[PerfCounter] {
        &self.counters
    }

    /// Throttle episodes per core (0s when MemGuard is off).
    pub fn throttle_events(&self) -> Vec<u64> {
        match &self.memguard {
            Some(s) => s.throttle_events.clone(),
            None => vec![0; self.n_cores()],
        }
    }

    /// The next MemGuard budget-replenish instant, or `None` when
    /// regulation is off. Budgets (and therefore throttle decisions) can
    /// only change at this instant, which makes it a scheduling hint for
    /// event-driven executors.
    pub fn next_replenish_time(&self) -> Option<SimTime> {
        self.memguard.as_ref().map(|mg| mg.next_replenish)
    }

    /// `true` if the regulated core `i` has exhausted its budget, i.e. its
    /// next quantum before a replenish would be fully throttled.
    pub fn core_exhausted(&self, i: usize) -> bool {
        match &self.memguard {
            Some(mg) => match mg.config.budgets[i] {
                Some(budget) => mg.used[i] >= budget,
                None => false,
            },
            None => false,
        }
    }

    /// Advances `quanta` consecutive all-idle scheduler quanta in one call,
    /// bit-identical to calling [`MemorySystem::quantum`] that many times
    /// (starting at `start`, stride `dt`) with every core at
    /// [`CoreDemand::default`].
    ///
    /// The stepped path does three things on an idle quantum, all
    /// replicated here in closed form:
    ///
    /// 1. Replenish fires on every quantum whose start is at or past
    ///    `next_replenish`, resetting budgets and re-arming at that
    ///    quantum's start plus one period — so fires recur with a stride
    ///    of `ceil(period / dt)` quanta from the first firing quantum.
    /// 2. A core that has exhausted its budget stays stalled (accruing
    ///    `throttled_time`) on every quantum before the first replenish,
    ///    even with nothing running.
    /// 3. `prev_served` decays to all zeros after one idle quantum, so
    ///    the quantum after the leap sees zero cross-core contention.
    ///
    /// Durations are integer nanoseconds, so the `dt * n` products below
    /// equal `n` repeated additions exactly — no float accumulation is
    /// involved on this path.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn leap_idle(&mut self, start: SimTime, dt: SimDuration, quanta: u64) {
        assert!(dt.as_nanos() > 0, "quantum must be non-zero");
        if quanta == 0 {
            return;
        }
        if let Some(mg) = &mut self.memguard {
            // Index of the first quantum whose start reaches the pending
            // replenish instant (it need not be grid-aligned).
            let j0 = if mg.next_replenish <= start {
                0
            } else {
                let gap = (mg.next_replenish - start).as_nanos();
                gap.div_ceil(dt.as_nanos())
            };
            for (i, budget) in mg.config.budgets.iter().enumerate() {
                let Some(budget) = budget else { continue };
                if mg.used[i] >= *budget {
                    // A non-positive budget re-exhausts instantly after
                    // every replenish; a positive one stalls only until
                    // the first replenish of the span.
                    let stalled = if *budget <= 0.0 {
                        quanta
                    } else {
                        j0.min(quanta)
                    };
                    if stalled > 0 {
                        self.counters[i].throttled_time += dt * stalled;
                    }
                }
            }
            if j0 < quanta {
                // At least one replenish fires inside the span: budgets
                // reset, and the phase re-arms from the last firing
                // quantum's start (`now + period`, as the stepped update
                // does).
                mg.used.iter_mut().for_each(|u| *u = 0.0);
                let stride = (mg.config.period.as_nanos().div_ceil(dt.as_nanos())).max(1);
                let last_fire = j0 + ((quanta - 1 - j0) / stride) * stride;
                mg.next_replenish = start + dt * last_fire + mg.config.period;
            }
        }
        self.prev_served.iter_mut().for_each(|s| *s = 0.0);
        self.served_scratch.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Advances up to `max_k` quanta during which exactly one core —
    /// `active` — has live, latency-bound demand `d` and every other core
    /// is idle or throttled (serving nothing). Returns the quanta actually
    /// advanced, bit-identical to that many [`MemorySystem::quantum`]
    /// calls with `d` on `active` and [`CoreDemand::default`] elsewhere
    /// (throttled cores short-circuit before their demand is read, so any
    /// demand shape on an exhausted core reduces to the default).
    ///
    /// With zero previous service from the other cores, `u_other` is
    /// exactly zero every quantum, so a latency-bound task runs at exactly
    /// full progress and serves a constant `bandwidth × dt` lines — the
    /// per-quantum float additions (budget draw, performance counters) are
    /// replayed in a loop because repeated f64 addition is not one
    /// multiplication. The walk stops early (returning fewer quanta) at
    /// the quantum a MemGuard budget would cap — partial-service quanta
    /// change the served rate and belong to the stepped path — and returns
    /// 0 without touching state if any *other* core has non-zero previous
    /// service or the demand is streaming (streaming progress depends on
    /// residual bus share, not worth the closed form).
    ///
    /// # Panics
    ///
    /// Panics if `active` is out of range or `dt` is zero.
    pub fn leap_one_active(
        &mut self,
        start: SimTime,
        dt: SimDuration,
        active: usize,
        d: &CoreDemand,
        max_k: u64,
    ) -> u64 {
        assert!(active < self.n_cores(), "core {active} out of range");
        assert!(dt.as_nanos() > 0, "quantum must be non-zero");
        if d.streaming {
            return 0;
        }
        if self
            .prev_served
            .iter()
            .enumerate()
            .any(|(i, &s)| i != active && s != 0.0)
        {
            return 0;
        }
        let dt_s = dt.as_secs_f64();
        // u_other is exactly 0: stall_fraction · γ · 0 = 0, progress 1/1.
        let lines = d.bandwidth * dt_s;
        let mut k = 0u64;
        let mut t = start;
        while k < max_k {
            if let Some(mg) = &mut self.memguard {
                // A replenish due at this quantum fires before anything
                // else, exactly as the stepped path orders it. (If the
                // quantum then turns out to be capped and is left to the
                // stepped path, the early firing is still identical: the
                // stepped quantum would apply the very same reset.)
                if t >= mg.next_replenish {
                    mg.used.iter_mut().for_each(|u| *u = 0.0);
                    mg.next_replenish = t + mg.config.period;
                }
                // Stop *before* the quantum where the active core's budget
                // would cap (or is already exhausted): partial service and
                // throttling belong to the stepped path, and none of this
                // quantum's effects may be applied here.
                if let Some(budget) = mg.config.budgets[active] {
                    if mg.used[active] >= budget || lines >= budget - mg.used[active] {
                        break;
                    }
                    mg.used[active] += lines;
                }
                // Exhausted *other* cores stall through this leaped
                // quantum exactly as the stepped throttle branch does.
                for (i, budget) in mg.config.budgets.iter().enumerate() {
                    let Some(budget) = budget else { continue };
                    if i != active && mg.used[i] >= *budget {
                        self.counters[i].throttled_time += dt;
                    }
                }
            }
            self.counters[active].lines += lines;
            k += 1;
            t += dt;
        }
        if k > 0 {
            for (i, s) in self.prev_served.iter_mut().enumerate() {
                *s = if i == active { lines / dt_s } else { 0.0 };
            }
            // Dead state — overwritten before every read — kept in the
            // steady value the alternating swap would leave after ≥ 2
            // quanta.
            self.served_scratch.copy_from_slice(&self.prev_served);
        }
        k
    }

    /// Residual per-core service rates from the previous quantum (lines
    /// per second). Event-driven executors read these to prove the
    /// zero-cross-contention precondition of the single-active leap
    /// forms without round-tripping through a probe quantum.
    pub fn prev_served(&self) -> &[f64] {
        &self.prev_served
    }

    /// Advances up to `max_k` quanta of the single-active steady state
    /// — at most one core (`active`) with live, latency-bound demand,
    /// every other core idle or throttled — while driving one caller-
    /// supplied linear accumulator (`acc += inc` per quantum) with a
    /// quantized-order stop threshold. Bit-identical to that many
    /// [`MemorySystem::replay_quantum`] calls with `active`'s demand on
    /// its core and [`CoreDemand::default`] elsewhere.
    ///
    /// The accumulator is the fair-class scheduler's `vruntime` of the
    /// single running fair task: the only per-quantum f64 state outside
    /// this memory system in the regime. `stop` is the `(key, id)` pair
    /// of that task's successor in the captured fair dispatch order
    /// plus the task's own id; the walk stops *before* the quantum
    /// whose dispatch would reorder the pair — `(succ_key, succ_id) <
    /// (quantize(acc), id)` — because only the running task's key moves,
    /// and only upward, so the first possible inversion of a sorted
    /// capture is against the immediate successor.
    ///
    /// As in [`MemorySystem::leap_one_active`]: with zero previous
    /// service elsewhere the active core serves a constant
    /// `bandwidth × dt` lines at exactly full progress, the walk stops
    /// before any quantum a MemGuard budget would cap, and it returns
    /// 0 quanta without touching state when another core has residual
    /// service or the demand is streaming. `active: None` covers the
    /// compute-only placement (including a throttled demand core, whose
    /// demand the stepped path never reads): no lines move, exhausted
    /// cores stall, `prev_served` decays to zero.
    ///
    /// # Panics
    ///
    /// Panics if `active` is out of range or `dt` is zero.
    pub fn leap_fair_active(
        &mut self,
        start: SimTime,
        dt: SimDuration,
        active: Option<(usize, CoreDemand)>,
        drive: FairDrive<'_>,
        max_k: u64,
    ) -> (u64, FairLeapStop) {
        let FairDrive { acc, inc, stop } = drive;
        assert!(dt.as_nanos() > 0, "quantum must be non-zero");
        if let Some((core, d)) = &active {
            assert!(*core < self.n_cores(), "core {core} out of range");
            if d.streaming {
                return (0, FairLeapStop::Bound);
            }
            if self
                .prev_served
                .iter()
                .enumerate()
                .any(|(i, &s)| i != *core && s != 0.0)
            {
                return (0, FairLeapStop::Bound);
            }
        }
        let dt_s = dt.as_secs_f64();
        // u_other is exactly 0: stall_fraction · γ · 0 = 0, progress 1/1.
        let lines = active.map(|(_, d)| d.bandwidth * dt_s);
        let mut k = 0u64;
        let mut t = start;
        let reason = loop {
            if k >= max_k {
                break FairLeapStop::Bound;
            }
            // The rotation gate comes first: the stepped dispatch would
            // re-place the fair class at this quantum's start, before
            // any memory effect, so nothing of this quantum is applied.
            if let Some((succ_key, succ_raw, raw)) = stop {
                let key = (*acc * 1e9) as u64;
                if (succ_key, succ_raw) < (key, raw) {
                    break FairLeapStop::Rotation;
                }
            }
            if let Some(mg) = &mut self.memguard {
                // A replenish due at this quantum fires before anything
                // else, exactly as the stepped path orders it (firing
                // and then stopping on the cap is still identical: the
                // stepped quantum would apply the very same reset).
                if t >= mg.next_replenish {
                    mg.used.iter_mut().for_each(|u| *u = 0.0);
                    mg.next_replenish = t + mg.config.period;
                }
                if let Some((core, _)) = active {
                    if let Some(budget) = mg.config.budgets[core] {
                        let lines = lines.unwrap_or_default();
                        if mg.used[core] >= budget || lines >= budget - mg.used[core] {
                            break FairLeapStop::Cap;
                        }
                        mg.used[core] += lines;
                    }
                }
                // Exhausted cores (other than the active one, which the
                // cap gate keeps strictly under budget) stall through
                // this quantum exactly as the stepped throttle branch.
                for (i, budget) in mg.config.budgets.iter().enumerate() {
                    let Some(budget) = budget else { continue };
                    if active.is_none_or(|(c, _)| c != i) && mg.used[i] >= *budget {
                        self.counters[i].throttled_time += dt;
                    }
                }
            }
            if let Some((core, _)) = active {
                self.counters[core].lines += lines.unwrap_or_default();
            }
            *acc += inc;
            k += 1;
            t += dt;
        };
        if k > 0 {
            match active {
                Some((core, _)) => {
                    let rate = lines.unwrap_or_default() / dt_s;
                    for (i, s) in self.prev_served.iter_mut().enumerate() {
                        *s = if i == core { rate } else { 0.0 };
                    }
                }
                None => self.prev_served.iter_mut().for_each(|s| *s = 0.0),
            }
            // Dead state — overwritten before every read — kept in the
            // steady value the alternating swap would leave.
            self.served_scratch.copy_from_slice(&self.prev_served);
        }
        (k, reason)
    }

    /// `true` when some budgeted, non-exhausted core could hit its
    /// MemGuard cap during a quantum starting at `now` with these
    /// demands. The guard the replay path must check before each
    /// [`MemorySystem::replay_quantum`]: capped quanta serve partial
    /// lines and bump `throttle_events`, which the replay does not
    /// model. Conservative — uses the demand's full `bandwidth × dt` as
    /// an upper bound on the lines a quantum can move (progress ≤ 1),
    /// and accounts for a replenish firing at `now` exactly as the
    /// quantum itself would.
    #[inline]
    pub fn cap_risk(&self, now: SimTime, dt: SimDuration, demands: &[CoreDemand]) -> bool {
        let Some(mg) = &self.memguard else {
            return false;
        };
        let dt_s = dt.as_secs_f64();
        let replenished = now >= mg.next_replenish;
        for (i, d) in demands.iter().enumerate() {
            let Some(budget) = mg.config.budgets[i] else {
                continue;
            };
            let used = if replenished { 0.0 } else { mg.used[i] };
            if used >= budget {
                // Already exhausted: the throttle branch moves no lines,
                // so the cap branch is unreachable on this core.
                continue;
            }
            if d.bandwidth * dt_s >= budget - used {
                return true;
            }
        }
        false
    }

    /// One quantum of the exact [`MemorySystem::quantum`] arithmetic for
    /// a replayed leap span: the identical per-core operation sequence —
    /// replenish, throttle branch, compute-only fast path, contention
    /// formula, budget draw, counters, served-rate swap — with per-core
    /// progress written into the caller's slice instead of the outcome
    /// vector. Progress is `0.0` exactly when the core throttled (both
    /// contention formulas are strictly positive), so no separate
    /// throttled flag is returned.
    ///
    /// Callers must rule out the MemGuard cap branch first (see
    /// [`MemorySystem::cap_risk`]); a capped quantum would bump
    /// `throttle_events` and serve partial lines, which this replay does
    /// not model — debug builds assert the precondition.
    ///
    /// # Panics
    ///
    /// Panics if `demands` or `progress` length differs from the core
    /// count.
    pub fn replay_quantum(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        demands: &[CoreDemand],
        progress: &mut [f64],
    ) {
        assert_eq!(demands.len(), self.n_cores(), "one demand per core");
        assert_eq!(progress.len(), self.n_cores(), "one progress slot per core");
        let dt_s = dt.as_secs_f64();

        if let Some(mg) = &mut self.memguard {
            if now >= mg.next_replenish {
                mg.used.iter_mut().for_each(|u| *u = 0.0);
                mg.next_replenish = now + mg.config.period;
            }
        }

        let total_prev: f64 = self.prev_served.iter().sum();
        self.served_scratch.iter_mut().for_each(|s| *s = 0.0);
        let served_now = &mut self.served_scratch;

        for (i, d) in demands.iter().enumerate() {
            let throttled = match &self.memguard {
                Some(mg) => match mg.config.budgets[i] {
                    Some(budget) => mg.used[i] >= budget,
                    None => false,
                },
                None => false,
            };
            if throttled {
                self.counters[i].throttled_time += dt;
                progress[i] = 0.0;
                continue;
            }

            if d.bandwidth == 0.0 && d.stall_fraction == 0.0 && !d.streaming {
                progress[i] = 1.0;
                continue;
            }

            let others = (total_prev - self.prev_served[i]).max(0.0);
            let u_other = (others / self.config.total_bandwidth).clamp(0.0, 1.0);
            let p = if d.streaming {
                let available =
                    (self.config.total_bandwidth - others).max(0.05 * self.config.total_bandwidth);
                (available / d.bandwidth.max(1e-9)).min(1.0)
            } else {
                1.0 / (1.0 + d.stall_fraction * self.config.contention_gamma * u_other)
            };
            let lines = d.bandwidth * dt_s * p;

            if let Some(mg) = &mut self.memguard {
                if let Some(budget) = mg.config.budgets[i] {
                    debug_assert!(
                        lines < (budget - mg.used[i]).max(0.0),
                        "cap risk must be ruled out before replay_quantum"
                    );
                    mg.used[i] += lines;
                }
            }

            self.counters[i].lines += lines;
            served_now[i] = lines / dt_s;
            progress[i] = p;
        }

        std::mem::swap(&mut self.prev_served, &mut self.served_scratch);
    }

    /// Advances one scheduler quantum.
    ///
    /// `demands[i]` describes what the task currently running on core `i`
    /// would consume; the returned outcome tells the scheduler how much
    /// useful progress that task actually made.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len()` differs from the core count.
    pub fn quantum(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        demands: &[CoreDemand],
    ) -> &[CoreOutcome] {
        assert_eq!(demands.len(), self.n_cores(), "one demand per core");
        let dt_s = dt.as_secs_f64();

        // MemGuard: replenish budgets at period boundaries.
        if let Some(mg) = &mut self.memguard {
            if now >= mg.next_replenish {
                mg.used.iter_mut().for_each(|u| *u = 0.0);
                mg.next_replenish = now + mg.config.period;
            }
        }

        let total_prev: f64 = self.prev_served.iter().sum();
        self.outcomes.clear();
        let outcomes = &mut self.outcomes;
        self.served_scratch.iter_mut().for_each(|s| *s = 0.0);
        let served_now = &mut self.served_scratch;

        for (i, d) in demands.iter().enumerate() {
            // Throttle check (uses the budget *before* this quantum's
            // accesses, as the real MemGuard interrupt does).
            let throttled = match &self.memguard {
                Some(mg) => match mg.config.budgets[i] {
                    Some(budget) => mg.used[i] >= budget,
                    None => false,
                },
                None => false,
            };

            if throttled {
                self.counters[i].throttled_time += dt;
                outcomes.push(CoreOutcome {
                    progress: 0.0,
                    served_lines: 0.0,
                    throttled: true,
                });
                continue;
            }

            // Compute-only demand (idle core or pure-CPU task): progress
            // is exactly 1 and no lines move, so skip the contention math.
            // Identical to the general path: stall_fraction 0 ⇒ no
            // dilation, bandwidth 0 ⇒ zero lines served.
            if d.bandwidth == 0.0 && d.stall_fraction == 0.0 && !d.streaming {
                outcomes.push(CoreOutcome {
                    progress: 1.0,
                    served_lines: 0.0,
                    throttled: false,
                });
                continue;
            }

            // Contention from other cores (previous quantum's served rates).
            let others = (total_prev - self.prev_served[i]).max(0.0);
            let u_other = (others / self.config.total_bandwidth).clamp(0.0, 1.0);
            let progress = if d.streaming {
                // Bandwidth-bound: slowed only by losing bus share.
                let available =
                    (self.config.total_bandwidth - others).max(0.05 * self.config.total_bandwidth);
                (available / d.bandwidth.max(1e-9)).min(1.0)
            } else {
                // Latency-bound: per-access latency inflates with others'
                // traffic (queueing + bank conflicts + shared-cache
                // pollution, lumped into γ).
                1.0 / (1.0 + d.stall_fraction * self.config.contention_gamma * u_other)
            };
            let mut lines = d.bandwidth * dt_s * progress;

            // MemGuard accounting: partial quantum until the budget runs out.
            if let Some(mg) = &mut self.memguard {
                if let Some(budget) = mg.config.budgets[i] {
                    let remaining = (budget - mg.used[i]).max(0.0);
                    if lines >= remaining {
                        lines = remaining;
                        mg.throttle_events[i] += 1;
                    }
                    mg.used[i] += lines;
                }
            }

            self.counters[i].lines += lines;
            served_now[i] = lines / dt_s;
            outcomes.push(CoreOutcome {
                progress,
                served_lines: lines,
                throttled: false,
            });
        }

        std::mem::swap(&mut self.prev_served, &mut self.served_scratch);
        &self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(50);

    fn idle() -> CoreDemand {
        CoreDemand::default()
    }

    fn hog() -> CoreDemand {
        CoreDemand {
            bandwidth: 14.0e6,
            stall_fraction: 0.95,
            streaming: true,
        }
    }

    fn victim(m: f64) -> CoreDemand {
        CoreDemand {
            bandwidth: 1.0e6,
            stall_fraction: m,
            streaming: false,
        }
    }

    fn run(mem: &mut MemorySystem, demands: &[CoreDemand], quanta: usize) -> Vec<CoreOutcome> {
        let mut t = SimTime::ZERO;
        let mut last = Vec::new();
        for _ in 0..quanta {
            last = mem.quantum(t, DT, demands).to_vec();
            t += DT;
        }
        last
    }

    #[test]
    fn no_contention_full_progress() {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let out = run(&mut mem, &[victim(0.5), idle(), idle(), idle()], 10);
        assert!((out[0].progress - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hog_dilates_other_cores() {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let out = run(&mut mem, &[victim(0.7), idle(), idle(), hog()], 100);
        // dilation ≈ 1 + 0.7·γ·U_hog; with γ=14 and the hog near saturation
        // the victim should run at well under a quarter speed.
        assert!(out[0].progress < 0.15, "progress {}", out[0].progress);
        // Compute-bound tasks barely notice.
        let mut mem2 = MemorySystem::new(4, DramConfig::default());
        let out2 = run(&mut mem2, &[victim(0.05), idle(), idle(), hog()], 100);
        assert!(out2[0].progress > 0.5, "progress {}", out2[0].progress);
    }

    #[test]
    fn dilation_grows_with_stall_fraction() {
        let mut prev = 1.1;
        for m in [0.2, 0.4, 0.6, 0.8] {
            let mut mem = MemorySystem::new(2, DramConfig::default());
            let out = run(&mut mem, &[victim(m), hog()], 50);
            assert!(out[0].progress < prev, "m={m}");
            prev = out[0].progress;
        }
    }

    #[test]
    fn own_traffic_does_not_self_dilate() {
        // A single busy core sees no contention from itself.
        let mut mem = MemorySystem::new(2, DramConfig::default());
        let out = run(&mut mem, &[hog(), idle()], 50);
        assert!((out[0].progress - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memguard_budget_caps_served_lines_per_period() {
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(4, dram);
        mem.enable_memguard(MemGuardConfig::single_core(4, 3, 0.05, &dram));
        // Run exactly one period (1 ms = 20 quanta of 50 µs).
        let demands = [idle(), idle(), idle(), hog()];
        let mut served = 0.0;
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            let out = mem.quantum(t, DT, &demands);
            served += out[3].served_lines;
            t += DT;
        }
        let budget = dram.total_bandwidth * 0.05 * 1e-3;
        assert!(served <= budget + 1e-6, "served {served} > budget {budget}");
        // The hog demands far more than the budget, so it must be pinned at it.
        assert!(served > 0.99 * budget);
    }

    #[test]
    fn memguard_throttles_then_replenishes() {
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(2, dram);
        mem.enable_memguard(MemGuardConfig::single_core(2, 1, 0.02, &dram));
        let demands = [idle(), hog()];
        // Fill the first period: the hog exhausts 2% quickly, then stalls.
        let mut t = SimTime::ZERO;
        let mut throttled_seen = false;
        for _ in 0..20 {
            let out = mem.quantum(t, DT, &demands);
            throttled_seen |= out[1].throttled;
            t += DT;
        }
        assert!(throttled_seen, "hog must hit the budget within the period");
        // First quantum of the next period: replenished, runs again.
        let out = mem.quantum(t, DT, &demands);
        assert!(!out[1].throttled);
        assert!(out[1].served_lines > 0.0);
    }

    #[test]
    fn memguard_protects_victims_from_hog() {
        let dram = DramConfig::default();
        // Unprotected baseline.
        let mut un = MemorySystem::new(4, dram);
        let base = run(&mut un, &[victim(0.7), idle(), idle(), hog()], 200);
        // Protected.
        let mut pro = MemorySystem::new(4, dram);
        pro.enable_memguard(MemGuardConfig::single_core(4, 3, 0.05, &dram));
        let prot = run(&mut pro, &[victim(0.7), idle(), idle(), hog()], 200);
        assert!(
            prot[0].progress > 0.8,
            "victim must run near full speed under MemGuard, got {}",
            prot[0].progress
        );
        assert!(prot[0].progress > 3.0 * base[0].progress);
    }

    #[test]
    fn counters_accumulate() {
        let mut mem = MemorySystem::new(2, DramConfig::default());
        run(&mut mem, &[victim(0.5), idle()], 100);
        assert!(mem.counters()[0].lines > 0.0);
        assert_eq!(mem.counters()[1].lines, 0.0);
    }

    #[test]
    #[should_panic(expected = "one demand per core")]
    fn quantum_validates_demand_length() {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let _ = mem.quantum(SimTime::ZERO, DT, &[idle()]);
    }

    /// Steps `quanta` all-idle quanta the slow way, starting at `t`.
    fn step_idle(mem: &mut MemorySystem, mut t: SimTime, quanta: u64) -> SimTime {
        let demands = vec![idle(); mem.n_cores()];
        for _ in 0..quanta {
            let _ = mem.quantum(t, DT, &demands);
            t += DT;
        }
        t
    }

    /// Asserts the two systems are in bit-identical externally-observable
    /// state: counters, throttle bookkeeping, replenish phase, and (via a
    /// probe quantum on clones) contention state.
    fn assert_same_state(a: &MemorySystem, b: &MemorySystem, t: SimTime) {
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.throttle_events(), b.throttle_events());
        assert_eq!(a.next_replenish_time(), b.next_replenish_time());
        let demands = vec![victim(0.7); a.n_cores()];
        let mut ac = a.clone();
        let mut bc = b.clone();
        let oa = ac.quantum(t, DT, &demands).to_vec();
        let ob = bc.quantum(t, DT, &demands).to_vec();
        assert_eq!(oa, ob, "probe quantum diverged");
    }

    #[test]
    fn leap_idle_matches_stepped_without_memguard() {
        let mut stepped = MemorySystem::new(4, DramConfig::default());
        // Build up non-zero prev_served first.
        let mut t = SimTime::ZERO;
        for _ in 0..7 {
            let _ = stepped.quantum(t, DT, &[victim(0.5), idle(), idle(), hog()]);
            t += DT;
        }
        let mut leaped = stepped.clone();
        let end = step_idle(&mut stepped, t, 33);
        leaped.leap_idle(t, DT, 33);
        assert_same_state(&leaped, &stepped, end);
    }

    #[test]
    fn leap_idle_matches_stepped_across_replenish() {
        let dram = DramConfig::default();
        let mut stepped = MemorySystem::new(4, dram);
        stepped.enable_memguard(MemGuardConfig::single_core(4, 3, 0.02, &dram));
        // Exhaust core 3's budget partway into a period so the idle span
        // starts with a stalled core and crosses several replenishes.
        let mut t = SimTime::ZERO;
        for _ in 0..9 {
            let _ = stepped.quantum(t, DT, &[idle(), idle(), idle(), hog()]);
            t += DT;
        }
        assert!(stepped.core_exhausted(3), "hog must exhaust the budget");
        for quanta in [1u64, 5, 11, 20, 21, 40, 67] {
            let mut leaped = stepped.clone();
            let mut slow = stepped.clone();
            let end = step_idle(&mut slow, t, quanta);
            leaped.leap_idle(t, DT, quanta);
            assert_same_state(&leaped, &slow, end);
        }
    }

    #[test]
    fn leap_idle_matches_stepped_from_unaligned_phase() {
        // Start the span on a quantum grid offset from the replenish
        // phase: the first quantum at/past `next_replenish` fires it.
        let dram = DramConfig::default();
        let mut stepped = MemorySystem::new(2, dram);
        stepped.enable_memguard(MemGuardConfig::single_core(2, 1, 0.03, &dram));
        let mut t = SimTime::from_micros(30); // off the 50 µs grid
        for _ in 0..6 {
            let _ = stepped.quantum(t, DT, &[idle(), hog()]);
            t += DT;
        }
        let mut leaped = stepped.clone();
        let end = step_idle(&mut stepped, t, 55);
        leaped.leap_idle(t, DT, 55);
        assert_same_state(&leaped, &stepped, end);
    }

    #[test]
    fn leap_idle_zero_quanta_is_a_no_op() {
        let mut mem = MemorySystem::new(2, DramConfig::default());
        let _ = mem.quantum(SimTime::ZERO, DT, &[hog(), idle()]);
        let before = mem.clone();
        mem.leap_idle(SimTime::from_micros(50), DT, 0);
        assert_eq!(mem.counters(), before.counters());
        assert_eq!(mem.next_replenish_time(), before.next_replenish_time());
    }

    /// A streaming demand for the replay equivalence walks.
    fn stream(bw: f64) -> CoreDemand {
        CoreDemand {
            bandwidth: bw,
            stall_fraction: 0.0,
            streaming: true,
        }
    }

    /// Drives `replay_quantum` and `quantum` side by side over a varied
    /// multi-core demand schedule and asserts bitwise state equality
    /// after every quantum, plus that the replayed progress equals the
    /// stepped outcome's exactly. `cap_risk` gates each replayed quantum
    /// the way the machine's leap path does: when it fires, the replay
    /// copy takes the stepped quantum instead (its conservatism is
    /// checked the other way round — a clear never caps).
    fn replay_walk(mut stepped: MemorySystem, schedule: &[Vec<CoreDemand>], quanta: usize) {
        let mut replayed = stepped.clone();
        let mut progress = vec![0.0; stepped.n_cores()];
        let mut t = SimTime::ZERO;
        let mut replayed_some = false;
        for q in 0..quanta {
            let demands = &schedule[q % schedule.len()];
            let out: Vec<CoreOutcome> = stepped.quantum(t, DT, demands).to_vec();
            if replayed.cap_risk(t, DT, demands) {
                let rout = replayed.quantum(t, DT, demands).to_vec();
                assert_eq!(out, rout, "quantum {q}: stepped copies diverged");
            } else {
                assert!(
                    out.iter().all(|o| o.served_lines >= 0.0),
                    "quantum {q}: stepped path capped without cap_risk firing"
                );
                replayed.replay_quantum(t, DT, demands, &mut progress);
                for (i, o) in out.iter().enumerate() {
                    assert_eq!(
                        progress[i].to_bits(),
                        o.progress.to_bits(),
                        "quantum {q} core {i}: replayed progress diverged"
                    );
                    assert_eq!(o.throttled, progress[i] == 0.0, "quantum {q} core {i}");
                }
                replayed_some = true;
            }
            assert_eq!(
                stepped.counters(),
                replayed.counters(),
                "quantum {q}: counters diverged"
            );
            assert_eq!(stepped.throttle_events(), replayed.throttle_events());
            assert_eq!(
                stepped.next_replenish_time(),
                replayed.next_replenish_time()
            );
            t += DT;
        }
        assert!(replayed_some, "schedule never exercised the replay path");
        assert_same_state(&stepped, &replayed, t);
    }

    #[test]
    fn replay_quantum_matches_stepped_multi_active() {
        let schedule: Vec<Vec<CoreDemand>> = vec![
            vec![victim(0.7), idle(), victim(0.55), hog()],
            vec![victim(0.7), victim(0.4), idle(), hog()],
            vec![idle(), idle(), idle(), hog()],
            vec![victim(0.7), victim(0.55), victim(0.4), hog()],
        ];
        replay_walk(MemorySystem::new(4, DramConfig::default()), &schedule, 120);
    }

    #[test]
    fn replay_quantum_matches_stepped_with_streaming() {
        let schedule: Vec<Vec<CoreDemand>> = vec![
            vec![stream(9e6), victim(0.6), idle(), victim(0.4)],
            vec![stream(9e6), stream(4e6), victim(0.6), idle()],
            vec![idle(), stream(20e6), idle(), victim(0.5)],
        ];
        replay_walk(MemorySystem::new(4, DramConfig::default()), &schedule, 90);
    }

    #[test]
    fn replay_quantum_matches_stepped_under_memguard() {
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(4, dram);
        // A budget small enough that the hog caps it every period: the
        // walk alternates cap-risk (stepped on both copies) and replayable
        // quanta across many replenish cycles.
        mem.enable_memguard(MemGuardConfig::single_core(4, 3, 0.15, &dram));
        let schedule: Vec<Vec<CoreDemand>> = vec![
            vec![victim(0.7), idle(), victim(0.55), hog()],
            vec![victim(0.7), victim(0.4), idle(), hog()],
            vec![idle(), victim(0.55), victim(0.4), hog()],
        ];
        replay_walk(mem, &schedule, 400);
    }

    #[test]
    fn cap_risk_is_conservative() {
        // Whenever cap_risk says "no", the stepped quantum must not cap:
        // throttle_events may only move on quanta cap_risk flagged.
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(2, dram);
        mem.enable_memguard(MemGuardConfig::single_core(2, 1, 0.2, &dram));
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            let demands = vec![victim(0.6), hog()];
            let risk = mem.cap_risk(t, DT, &demands);
            let before = mem.throttle_events();
            let _ = mem.quantum(t, DT, &demands);
            if !risk {
                assert_eq!(
                    before,
                    mem.throttle_events(),
                    "capped at {t:?} without cap_risk firing"
                );
            }
            t += DT;
        }
    }
}
