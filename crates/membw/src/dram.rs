//! Shared DRAM bandwidth and contention model.
//!
//! The paper's memory DoS attack works because all four Cortex-A53 cores of
//! the RPi3 share one LPDDR2 channel (and a small shared L2): a single
//! `Bandwidth`-style hog inflates every other core's memory latency. We use
//! the standard first-order model from the MemGuard / IsolBench literature:
//!
//! ```text
//! dilation_i = 1 + m_i · γ · U_other_i
//! ```
//!
//! where `m_i` is the fraction of task *i*'s execution that stalls on memory
//! at baseline, `U_other_i` is the fraction of bus bandwidth consumed by
//! *other* cores, and `γ` lumps together queueing delay, bank conflicts, and
//! shared-cache pollution. On in-order A53-class parts with a hot hog,
//! victim slowdowns up to ~10× are reported (DeepPicar; IsolBench), which
//! corresponds to `γ ≈ 10–16` for memory-heavy victims.

use sim_core::time::{SimDuration, SimTime};

/// DRAM model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Usable bus bandwidth, cache lines (64 B) per second.
    /// 15 M lines/s ≈ 960 MB/s, the practical streaming rate of the
    /// RPi3's LPDDR2-900.
    pub total_bandwidth: f64,
    /// Latency-inflation sensitivity γ (see module docs).
    pub contention_gamma: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            total_bandwidth: 15.0e6,
            contention_gamma: 14.0,
        }
    }
}

/// Per-core memory demand for one scheduler quantum.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreDemand {
    /// Cache-line fetch rate the running task would sustain unimpeded,
    /// lines/s. Zero for an idle core.
    pub bandwidth: f64,
    /// Fraction of the task's execution that is memory-stalled at baseline
    /// (`m` in the dilation formula), 0–1.
    pub stall_fraction: f64,
    /// `true` for bandwidth-bound streaming workloads (sequential reads or
    /// writes with perfect prefetch, like IsolBench `Bandwidth`): their
    /// progress degrades only by losing bus *share*, not by per-access
    /// latency. Latency-bound tasks (pointer chasing, control code with
    /// cache misses) instead suffer the γ dilation.
    pub streaming: bool,
}

/// Outcome of one quantum for one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreOutcome {
    /// Useful execution progress as a fraction of wall time (1 = full
    /// speed; 0.2 = 5× dilation; 0 = throttled by MemGuard).
    pub progress: f64,
    /// Cache lines actually transferred this quantum.
    pub served_lines: f64,
    /// `true` if MemGuard held the core stalled this quantum.
    pub throttled: bool,
}

/// Cumulative per-core counters (the "performance counters" MemGuard reads).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfCounter {
    /// Total cache lines transferred.
    pub lines: f64,
    /// Wall time spent throttled.
    pub throttled_time: SimDuration,
}

/// MemGuard configuration: a per-core budget of cache lines per regulation
/// period, matching the kernel module the paper deploys (§III-D).
#[derive(Debug, Clone, PartialEq)]
pub struct MemGuardConfig {
    /// Regulation period (the paper's MemGuard uses 1 ms).
    pub period: SimDuration,
    /// Per-core budget, lines per period. `None` = unregulated core.
    pub budgets: Vec<Option<f64>>,
}

impl MemGuardConfig {
    /// Regulates only `core` to `bandwidth_fraction` of the bus, leaving
    /// other cores (of `n_cores`) unregulated — the paper's deployment:
    /// only the CCE core is budgeted.
    ///
    /// # Panics
    ///
    /// Panics if `core >= n_cores` or the fraction is outside `(0, 1]`.
    pub fn single_core(
        n_cores: usize,
        core: usize,
        bandwidth_fraction: f64,
        dram: &DramConfig,
    ) -> Self {
        assert!(core < n_cores, "core {core} out of range");
        assert!(
            bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
            "fraction must be in (0,1]: {bandwidth_fraction}"
        );
        let period = SimDuration::from_millis(1);
        let lines_per_period = dram.total_bandwidth * bandwidth_fraction * period.as_secs_f64();
        let mut budgets = vec![None; n_cores];
        budgets[core] = Some(lines_per_period);
        MemGuardConfig { period, budgets }
    }
}

/// The shared memory system: DRAM bus plus optional MemGuard regulation.
///
/// # Examples
///
/// ```
/// use membw::dram::{CoreDemand, DramConfig, MemorySystem};
/// use sim_core::time::{SimDuration, SimTime};
///
/// let mut mem = MemorySystem::new(4, DramConfig::default());
/// let quiet = CoreDemand { bandwidth: 0.2e6, stall_fraction: 0.3, streaming: false };
/// let out = mem.quantum(SimTime::ZERO, SimDuration::from_micros(50), &[quiet; 4]);
/// assert!(out[0].progress > 0.95); // light load: almost no dilation
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: DramConfig,
    memguard: Option<MemGuardState>,
    counters: Vec<PerfCounter>,
    /// Served bandwidth per core in the previous quantum (lines/s); used to
    /// compute contention with one quantum of lag, which keeps the model
    /// explicit and stable.
    prev_served: Vec<f64>,
    /// Scratch for the quantum being computed (swapped into `prev_served`
    /// at the end of each quantum — no per-quantum allocation).
    served_scratch: Vec<f64>,
    /// Scratch backing the slice returned by [`MemorySystem::quantum`].
    outcomes: Vec<CoreOutcome>,
}

#[derive(Debug, Clone)]
struct MemGuardState {
    config: MemGuardConfig,
    used: Vec<f64>,
    next_replenish: SimTime,
    /// Number of throttle episodes per core.
    throttle_events: Vec<u64>,
}

impl MemorySystem {
    /// Creates an unregulated memory system for `n_cores` cores.
    pub fn new(n_cores: usize, config: DramConfig) -> Self {
        MemorySystem {
            config,
            memguard: None,
            counters: vec![PerfCounter::default(); n_cores],
            prev_served: vec![0.0; n_cores],
            served_scratch: vec![0.0; n_cores],
            outcomes: Vec::with_capacity(n_cores),
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.counters.len()
    }

    /// The DRAM parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Installs MemGuard regulation.
    ///
    /// # Panics
    ///
    /// Panics if the budget vector length differs from the core count.
    pub fn enable_memguard(&mut self, config: MemGuardConfig) {
        assert_eq!(
            config.budgets.len(),
            self.n_cores(),
            "budget vector must cover every core"
        );
        let n = self.n_cores();
        self.memguard = Some(MemGuardState {
            next_replenish: SimTime::ZERO,
            used: vec![0.0; n],
            throttle_events: vec![0; n],
            config,
        });
    }

    /// Removes MemGuard regulation.
    pub fn disable_memguard(&mut self) {
        self.memguard = None;
    }

    /// `true` if MemGuard is active.
    pub fn memguard_enabled(&self) -> bool {
        self.memguard.is_some()
    }

    /// Per-core cumulative counters.
    pub fn counters(&self) -> &[PerfCounter] {
        &self.counters
    }

    /// Throttle episodes per core (0s when MemGuard is off).
    pub fn throttle_events(&self) -> Vec<u64> {
        match &self.memguard {
            Some(s) => s.throttle_events.clone(),
            None => vec![0; self.n_cores()],
        }
    }

    /// Advances one scheduler quantum.
    ///
    /// `demands[i]` describes what the task currently running on core `i`
    /// would consume; the returned outcome tells the scheduler how much
    /// useful progress that task actually made.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len()` differs from the core count.
    pub fn quantum(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        demands: &[CoreDemand],
    ) -> &[CoreOutcome] {
        assert_eq!(demands.len(), self.n_cores(), "one demand per core");
        let dt_s = dt.as_secs_f64();

        // MemGuard: replenish budgets at period boundaries.
        if let Some(mg) = &mut self.memguard {
            if now >= mg.next_replenish {
                mg.used.iter_mut().for_each(|u| *u = 0.0);
                mg.next_replenish = now + mg.config.period;
            }
        }

        let total_prev: f64 = self.prev_served.iter().sum();
        self.outcomes.clear();
        let outcomes = &mut self.outcomes;
        self.served_scratch.iter_mut().for_each(|s| *s = 0.0);
        let served_now = &mut self.served_scratch;

        for (i, d) in demands.iter().enumerate() {
            // Throttle check (uses the budget *before* this quantum's
            // accesses, as the real MemGuard interrupt does).
            let throttled = match &self.memguard {
                Some(mg) => match mg.config.budgets[i] {
                    Some(budget) => mg.used[i] >= budget,
                    None => false,
                },
                None => false,
            };

            if throttled {
                self.counters[i].throttled_time += dt;
                outcomes.push(CoreOutcome {
                    progress: 0.0,
                    served_lines: 0.0,
                    throttled: true,
                });
                continue;
            }

            // Compute-only demand (idle core or pure-CPU task): progress
            // is exactly 1 and no lines move, so skip the contention math.
            // Identical to the general path: stall_fraction 0 ⇒ no
            // dilation, bandwidth 0 ⇒ zero lines served.
            if d.bandwidth == 0.0 && d.stall_fraction == 0.0 && !d.streaming {
                outcomes.push(CoreOutcome {
                    progress: 1.0,
                    served_lines: 0.0,
                    throttled: false,
                });
                continue;
            }

            // Contention from other cores (previous quantum's served rates).
            let others = (total_prev - self.prev_served[i]).max(0.0);
            let u_other = (others / self.config.total_bandwidth).clamp(0.0, 1.0);
            let progress = if d.streaming {
                // Bandwidth-bound: slowed only by losing bus share.
                let available =
                    (self.config.total_bandwidth - others).max(0.05 * self.config.total_bandwidth);
                (available / d.bandwidth.max(1e-9)).min(1.0)
            } else {
                // Latency-bound: per-access latency inflates with others'
                // traffic (queueing + bank conflicts + shared-cache
                // pollution, lumped into γ).
                1.0 / (1.0 + d.stall_fraction * self.config.contention_gamma * u_other)
            };
            let mut lines = d.bandwidth * dt_s * progress;

            // MemGuard accounting: partial quantum until the budget runs out.
            if let Some(mg) = &mut self.memguard {
                if let Some(budget) = mg.config.budgets[i] {
                    let remaining = (budget - mg.used[i]).max(0.0);
                    if lines >= remaining {
                        lines = remaining;
                        mg.throttle_events[i] += 1;
                    }
                    mg.used[i] += lines;
                }
            }

            self.counters[i].lines += lines;
            served_now[i] = lines / dt_s;
            outcomes.push(CoreOutcome {
                progress,
                served_lines: lines,
                throttled: false,
            });
        }

        std::mem::swap(&mut self.prev_served, &mut self.served_scratch);
        &self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(50);

    fn idle() -> CoreDemand {
        CoreDemand::default()
    }

    fn hog() -> CoreDemand {
        CoreDemand {
            bandwidth: 14.0e6,
            stall_fraction: 0.95,
            streaming: true,
        }
    }

    fn victim(m: f64) -> CoreDemand {
        CoreDemand {
            bandwidth: 1.0e6,
            stall_fraction: m,
            streaming: false,
        }
    }

    fn run(mem: &mut MemorySystem, demands: &[CoreDemand], quanta: usize) -> Vec<CoreOutcome> {
        let mut t = SimTime::ZERO;
        let mut last = Vec::new();
        for _ in 0..quanta {
            last = mem.quantum(t, DT, demands).to_vec();
            t += DT;
        }
        last
    }

    #[test]
    fn no_contention_full_progress() {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let out = run(&mut mem, &[victim(0.5), idle(), idle(), idle()], 10);
        assert!((out[0].progress - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hog_dilates_other_cores() {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let out = run(&mut mem, &[victim(0.7), idle(), idle(), hog()], 100);
        // dilation ≈ 1 + 0.7·γ·U_hog; with γ=14 and the hog near saturation
        // the victim should run at well under a quarter speed.
        assert!(out[0].progress < 0.15, "progress {}", out[0].progress);
        // Compute-bound tasks barely notice.
        let mut mem2 = MemorySystem::new(4, DramConfig::default());
        let out2 = run(&mut mem2, &[victim(0.05), idle(), idle(), hog()], 100);
        assert!(out2[0].progress > 0.5, "progress {}", out2[0].progress);
    }

    #[test]
    fn dilation_grows_with_stall_fraction() {
        let mut prev = 1.1;
        for m in [0.2, 0.4, 0.6, 0.8] {
            let mut mem = MemorySystem::new(2, DramConfig::default());
            let out = run(&mut mem, &[victim(m), hog()], 50);
            assert!(out[0].progress < prev, "m={m}");
            prev = out[0].progress;
        }
    }

    #[test]
    fn own_traffic_does_not_self_dilate() {
        // A single busy core sees no contention from itself.
        let mut mem = MemorySystem::new(2, DramConfig::default());
        let out = run(&mut mem, &[hog(), idle()], 50);
        assert!((out[0].progress - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memguard_budget_caps_served_lines_per_period() {
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(4, dram);
        mem.enable_memguard(MemGuardConfig::single_core(4, 3, 0.05, &dram));
        // Run exactly one period (1 ms = 20 quanta of 50 µs).
        let demands = [idle(), idle(), idle(), hog()];
        let mut served = 0.0;
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            let out = mem.quantum(t, DT, &demands);
            served += out[3].served_lines;
            t += DT;
        }
        let budget = dram.total_bandwidth * 0.05 * 1e-3;
        assert!(served <= budget + 1e-6, "served {served} > budget {budget}");
        // The hog demands far more than the budget, so it must be pinned at it.
        assert!(served > 0.99 * budget);
    }

    #[test]
    fn memguard_throttles_then_replenishes() {
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(2, dram);
        mem.enable_memguard(MemGuardConfig::single_core(2, 1, 0.02, &dram));
        let demands = [idle(), hog()];
        // Fill the first period: the hog exhausts 2% quickly, then stalls.
        let mut t = SimTime::ZERO;
        let mut throttled_seen = false;
        for _ in 0..20 {
            let out = mem.quantum(t, DT, &demands);
            throttled_seen |= out[1].throttled;
            t += DT;
        }
        assert!(throttled_seen, "hog must hit the budget within the period");
        // First quantum of the next period: replenished, runs again.
        let out = mem.quantum(t, DT, &demands);
        assert!(!out[1].throttled);
        assert!(out[1].served_lines > 0.0);
    }

    #[test]
    fn memguard_protects_victims_from_hog() {
        let dram = DramConfig::default();
        // Unprotected baseline.
        let mut un = MemorySystem::new(4, dram);
        let base = run(&mut un, &[victim(0.7), idle(), idle(), hog()], 200);
        // Protected.
        let mut pro = MemorySystem::new(4, dram);
        pro.enable_memguard(MemGuardConfig::single_core(4, 3, 0.05, &dram));
        let prot = run(&mut pro, &[victim(0.7), idle(), idle(), hog()], 200);
        assert!(
            prot[0].progress > 0.8,
            "victim must run near full speed under MemGuard, got {}",
            prot[0].progress
        );
        assert!(prot[0].progress > 3.0 * base[0].progress);
    }

    #[test]
    fn counters_accumulate() {
        let mut mem = MemorySystem::new(2, DramConfig::default());
        run(&mut mem, &[victim(0.5), idle()], 100);
        assert!(mem.counters()[0].lines > 0.0);
        assert_eq!(mem.counters()[1].lines, 0.0);
    }

    #[test]
    #[should_panic(expected = "one demand per core")]
    fn quantum_validates_demand_length() {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let _ = mem.quantum(SimTime::ZERO, DT, &[idle()]);
    }
}
