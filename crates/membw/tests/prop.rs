//! Property-based tests for the memory system: budget enforcement,
//! progress bounds, and contention monotonicity for arbitrary demand mixes.

use membw::prelude::*;
use proptest::prelude::*;
use sim_core::time::{SimDuration, SimTime};

fn arb_demand() -> impl Strategy<Value = CoreDemand> {
    (0.0f64..15.0e6, 0.0f64..1.0, any::<bool>()).prop_map(
        |(bandwidth, stall_fraction, streaming)| CoreDemand {
            bandwidth,
            stall_fraction,
            streaming,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Progress is always in (0, 1] for unthrottled cores; served lines are
    /// never negative and never exceed demand × dt.
    #[test]
    fn progress_and_lines_bounded(demands in prop::collection::vec(arb_demand(), 4)) {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let dt = SimDuration::from_micros(50);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let out = mem.quantum(t, dt, &demands);
            for (o, d) in out.iter().zip(&demands) {
                prop_assert!(o.progress > 0.0 && o.progress <= 1.0, "progress {}", o.progress);
                prop_assert!(o.served_lines >= 0.0);
                let max_lines = d.bandwidth * dt.as_secs_f64() + 1e-9;
                prop_assert!(o.served_lines <= max_lines);
                prop_assert!(!o.throttled, "no memguard, no throttling");
            }
            t += dt;
        }
    }

    /// With MemGuard, a regulated core never exceeds its budget within any
    /// regulation period, for arbitrary budgets and demands.
    #[test]
    fn memguard_budget_is_hard(
        demands in prop::collection::vec(arb_demand(), 4),
        budget_frac in 0.01f64..0.9,
        regulated in 0usize..4,
    ) {
        let dram = DramConfig::default();
        let mut mem = MemorySystem::new(4, dram);
        mem.enable_memguard(MemGuardConfig::single_core(4, regulated, budget_frac, &dram));
        let budget = dram.total_bandwidth * budget_frac * 1e-3;
        let dt = SimDuration::from_micros(50);
        let mut t = SimTime::ZERO;
        for _period in 0..20 {
            let mut served = 0.0;
            for _ in 0..20 {
                let out = mem.quantum(t, dt, &demands);
                served += out[regulated].served_lines;
                t += dt;
            }
            prop_assert!(
                served <= budget * (1.0 + 1e-9),
                "served {served} > budget {budget} in one period"
            );
        }
    }

    /// More traffic from other cores never speeds up a latency-bound task.
    #[test]
    fn contention_is_monotone(m in 0.05f64..1.0, extra_bw in 0.0f64..14.0e6) {
        let run = |other_bw: f64| {
            let mut mem = MemorySystem::new(2, DramConfig::default());
            let demands = [
                CoreDemand { bandwidth: 1.0e6, stall_fraction: m, streaming: false },
                CoreDemand { bandwidth: other_bw, stall_fraction: 0.9, streaming: true },
            ];
            let dt = SimDuration::from_micros(50);
            let mut t = SimTime::ZERO;
            let mut last = 1.0;
            for _ in 0..50 {
                last = mem.quantum(t, dt, &demands)[0].progress;
                t += dt;
            }
            last
        };
        let quiet = run(0.0);
        let loud = run(extra_bw);
        prop_assert!(loud <= quiet + 1e-12, "more contention sped victim up: {quiet} -> {loud}");
    }

    /// Perf counters equal the sum of served lines.
    #[test]
    fn counters_are_sums(demands in prop::collection::vec(arb_demand(), 4)) {
        let mut mem = MemorySystem::new(4, DramConfig::default());
        let dt = SimDuration::from_micros(50);
        let mut t = SimTime::ZERO;
        let mut sums = [0.0f64; 4];
        for _ in 0..40 {
            let out = mem.quantum(t, dt, &demands);
            for (s, o) in sums.iter_mut().zip(&out) {
                *s += o.served_lines;
            }
            t += dt;
        }
        for (s, c) in sums.iter().zip(mem.counters()) {
            prop_assert!((s - c.lines).abs() < 1e-6);
        }
    }
}
