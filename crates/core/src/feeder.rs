//! Simulation control mode: feeder-side message construction and CCE-side
//! decoding (§III-E).
//!
//! "We require the complex controller to run in a simulation mode, where it
//! does not access any device file but receive all the necessary data from
//! the network interface. Feeder threads running in HCE receive raw sensor
//! data from device drivers and send them to both controllers."
//!
//! This module converts between the simulator's sensor samples and the
//! MAVLink-lite messages of Table I, including the local-NED ↔ geodetic
//! conversion the GPS stream needs.

use mavlink_lite::messages::{RawBaro, RawGps, RawImu, RcChannels};
use sim_core::time::SimTime;
use uav_dynamics::math::Vec3;
use uav_dynamics::sensors::{BaroSample, ImuSample, PositionFix};

/// Reference latitude of the flight volume origin, degrees (the paper's
/// lab in Urbana-Champaign).
pub const REF_LAT_DEG: f64 = 40.1164;
/// Reference longitude of the flight volume origin, degrees.
pub const REF_LON_DEG: f64 = -88.2434;

/// Metres per degree of latitude (WGS-84 mean).
const M_PER_DEG_LAT: f64 = 111_320.0;

/// Converts an IMU sample to its Table I message.
pub fn imu_to_msg(s: &ImuSample) -> RawImu {
    RawImu {
        time_usec: s.time.as_micros(),
        gyro: [s.gyro.x as f32, s.gyro.y as f32, s.gyro.z as f32],
        accel: [s.accel.x as f32, s.accel.y as f32, s.accel.z as f32],
        mag: [s.mag.x as f32, s.mag.y as f32, s.mag.z as f32],
    }
}

/// Reconstructs an IMU sample from its message.
pub fn msg_to_imu(m: &RawImu) -> ImuSample {
    ImuSample {
        time: SimTime::from_micros(m.time_usec),
        gyro: Vec3::new(m.gyro[0] as f64, m.gyro[1] as f64, m.gyro[2] as f64),
        accel: Vec3::new(m.accel[0] as f64, m.accel[1] as f64, m.accel[2] as f64),
        mag: Vec3::new(m.mag[0] as f64, m.mag[1] as f64, m.mag[2] as f64),
    }
}

/// Converts a barometer sample to its Table I message.
pub fn baro_to_msg(s: &BaroSample) -> RawBaro {
    RawBaro {
        time_usec: s.time.as_micros(),
        abs_pressure: s.pressure_hpa as f32,
        diff_pressure: 0.0,
        temperature: s.temperature_c as f32,
        altitude: s.altitude as f32,
    }
}

/// Reconstructs a barometer sample from its message.
pub fn msg_to_baro(m: &RawBaro) -> BaroSample {
    BaroSample {
        time: SimTime::from_micros(m.time_usec),
        pressure_hpa: m.abs_pressure as f64,
        temperature_c: m.temperature as f64,
        altitude: m.altitude as f64,
    }
}

/// Converts a position fix to the GPS message of Table I, projecting local
/// NED onto geodetic coordinates around the lab origin (what the paper's
/// ViconMAVLink bridge does).
pub fn fix_to_msg(s: &PositionFix) -> RawGps {
    let lat = REF_LAT_DEG + s.position.x / M_PER_DEG_LAT;
    let m_per_deg_lon = M_PER_DEG_LAT * REF_LAT_DEG.to_radians().cos();
    let lon = REF_LON_DEG + s.position.y / m_per_deg_lon;
    RawGps {
        time_usec: s.time.as_micros(),
        lat: (lat * 1e7).round() as i32,
        lon: (lon * 1e7).round() as i32,
        alt_mm: (-s.position.z * 1000.0).round() as i32,
        vel_n: s.velocity.x as f32,
        vel_e: s.velocity.y as f32,
        vel_d: s.velocity.z as f32,
        eph_cm: (s.h_accuracy * 100.0).clamp(0.0, u16::MAX as f64) as u16,
        epv_cm: (s.v_accuracy * 100.0).clamp(0.0, u16::MAX as f64) as u16,
    }
}

/// Reconstructs a local-NED position fix from a GPS message.
pub fn msg_to_fix(m: &RawGps) -> PositionFix {
    let lat = m.lat as f64 / 1e7;
    let lon = m.lon as f64 / 1e7;
    let m_per_deg_lon = M_PER_DEG_LAT * REF_LAT_DEG.to_radians().cos();
    PositionFix {
        time: SimTime::from_micros(m.time_usec),
        position: Vec3::new(
            (lat - REF_LAT_DEG) * M_PER_DEG_LAT,
            (lon - REF_LON_DEG) * m_per_deg_lon,
            -(m.alt_mm as f64) / 1000.0,
        ),
        velocity: Vec3::new(m.vel_n as f64, m.vel_e as f64, m.vel_d as f64),
        h_accuracy: m.eph_cm as f64 / 100.0,
        v_accuracy: m.epv_cm as f64 / 100.0,
    }
}

/// Builds the RC message: neutral sticks, position mode, healthy link.
pub fn neutral_rc(time: SimTime) -> RcChannels {
    let mut channels = [0u16; 16];
    channels[0] = 1500; // roll
    channels[1] = 1500; // pitch
    channels[2] = 1500; // throttle
    channels[3] = 1500; // yaw
    channels[4] = 2000; // mode switch: position
    RcChannels {
        time_usec: time.as_micros(),
        channels,
        chan_count: 5,
        rssi: 220,
    }
}

/// Counts frames and bytes of one feeder stream (for the Table I report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounter {
    /// Frames sent.
    pub frames: u64,
    /// Total on-wire bytes.
    pub bytes: u64,
}

impl StreamCounter {
    /// Records one frame of `wire_len` bytes.
    pub fn record(&mut self, wire_len: usize) {
        self.frames += 1;
        self.bytes += wire_len as u64;
    }

    /// Mean frame size, bytes.
    pub fn mean_frame_size(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.bytes as f64 / self.frames as f64
        }
    }

    /// Achieved rate over `elapsed` seconds.
    pub fn rate_hz(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 {
            0.0
        } else {
            self.frames as f64 / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imu_roundtrip_is_close() {
        let s = ImuSample {
            time: SimTime::from_millis(1234),
            gyro: Vec3::new(0.1, -0.2, 0.3),
            accel: Vec3::new(-9.7, 0.1, -0.4),
            mag: Vec3::new(0.2, 0.0, 0.4),
        };
        let back = msg_to_imu(&imu_to_msg(&s));
        assert_eq!(back.time, s.time);
        assert!((back.gyro - s.gyro).norm() < 1e-6);
        assert!((back.accel - s.accel).norm() < 1e-5);
    }

    #[test]
    fn gps_roundtrip_is_centimetre_accurate() {
        for &(x, y, z) in &[(0.0, 0.0, -1.0), (2.5, -3.5, -2.0), (-4.9, 4.9, -0.3)] {
            let s = PositionFix {
                time: SimTime::from_secs(5),
                position: Vec3::new(x, y, z),
                velocity: Vec3::new(1.0, -0.5, 0.2),
                h_accuracy: 0.004,
                v_accuracy: 0.004,
            };
            let back = msg_to_fix(&fix_to_msg(&s));
            assert!(
                (back.position - s.position).norm() < 0.02,
                "roundtrip error {:?} vs {:?}",
                back.position,
                s.position
            );
            assert!((back.velocity - s.velocity).norm() < 1e-6);
        }
    }

    #[test]
    fn baro_roundtrip() {
        let s = BaroSample {
            time: SimTime::from_millis(77),
            pressure_hpa: 1003.2,
            temperature_c: 25.0,
            altitude: 1.35,
        };
        let back = msg_to_baro(&baro_to_msg(&s));
        assert!((back.altitude - s.altitude).abs() < 1e-6);
        assert!((back.pressure_hpa - s.pressure_hpa).abs() < 0.01);
    }

    #[test]
    fn neutral_rc_is_position_mode() {
        let rc = neutral_rc(SimTime::from_secs(1));
        assert_eq!(rc.channels[4], 2000);
        assert_eq!(rc.chan_count, 5);
    }

    #[test]
    fn stream_counter_accumulates() {
        let mut c = StreamCounter::default();
        for _ in 0..250 {
            c.record(52);
        }
        assert_eq!(c.frames, 250);
        assert_eq!(c.mean_frame_size(), 52.0);
        assert!((c.rate_hz(1.0) - 250.0).abs() < 1e-9);
    }
}
