//! Opt-in phase accounting for the executor hot loop.
//!
//! The perf harness needs to know *where* a row's wall time goes — network
//! step, scheduler quantum, physics catch-up, or datagram parsing — so the
//! next performance floor is diagnosable from the committed BENCH files
//! instead of ad-hoc probes. The runner cannot read a wall clock itself
//! (cd-lint's determinism rule bans wall-clock access in sim crates, and
//! rightly so), so the design is a function-pointer clock:
//!
//! - by default no clock is installed and [`now`] returns 0, so the
//!   accumulators stay zero and the per-bracket cost is one relaxed atomic
//!   load and a branch;
//! - a measurement harness (cd-bench's perf bin — *not* a sim crate)
//!   installs a monotonic-nanosecond clock via [`install_clock`], and the
//!   same brackets start attributing real time.
//!
//! Simulation results never depend on the clock: the accumulators are
//! scratch drained at report time and excluded from every equivalence
//! comparison.

use std::sync::atomic::{AtomicPtr, Ordering};

/// Phase index: [`Network::step`](virt_net::net::Network::step) plus
/// delivery routing.
pub const NET: usize = 0;
/// Phase index: machine stepping/leaping (the scheduler quantum work).
pub const SCHED: usize = 1;
/// Phase index: physics catch-up
/// ([`World::advance_to`](uav_dynamics::world::World::advance_to)).
pub const PHYSICS: usize = 2;
/// Phase index: rx-thread datagram parsing.
pub const PARSE: usize = 3;
/// Number of tracked phases.
pub const COUNT: usize = 4;
/// Stable wire names for the BENCH row fields, by phase index.
pub const NAMES: [&str; COUNT] = ["net", "sched", "physics", "parse"];

static CLOCK: AtomicPtr<()> = AtomicPtr::new(std::ptr::null_mut());

/// Installs the monotonic-nanosecond clock the phase brackets read.
/// Process-global; call once before running measured work. Only
/// measurement harnesses should call this — simulation behavior is
/// independent of it by construction.
pub fn install_clock(clock: fn() -> u64) {
    CLOCK.store(clock as *mut (), Ordering::Relaxed);
}

/// Removes the installed clock: [`now`] returns 0 again and the brackets
/// go back to costing one relaxed load. The perf harness brackets *its
/// timed repeats* with this — reading the clock twice per phase bracket
/// is measurable overhead (tens of ms on a leap-dense 30 s row), so wall
/// time is always measured clock-off and the phase breakdown comes from
/// one separate clock-on iteration of the same deterministic work.
pub fn uninstall_clock() {
    CLOCK.store(std::ptr::null_mut(), Ordering::Relaxed);
}

/// The current phase-clock reading, or 0 when no clock is installed.
/// Public so the fleet executor can bracket its own shared-network and
/// batch-physics phases with the same clock.
#[inline]
pub fn now() -> u64 {
    let p = CLOCK.load(Ordering::Relaxed);
    if p.is_null() {
        return 0;
    }
    // SAFETY: the only non-null store into CLOCK is `install_clock`
    // casting a `fn() -> u64`, and function pointers round-trip
    // losslessly through thin raw-pointer casts on all supported
    // platforms.
    let f: fn() -> u64 = unsafe { std::mem::transmute::<*mut (), fn() -> u64>(p) };
    f()
}
