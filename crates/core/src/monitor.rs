//! The security monitor and Simplex decision logic (§III-E).
//!
//! "A security monitor keeps monitoring the outputs received from the
//! interface and also the physical state of the drone. Two security rules
//! are enforced and upon a violation, the monitor kills the receiving
//! thread on the HCE and switches to use the output from the safety
//! controller."
//!
//! The two paper rules ([`ReceiveIntervalRule`], [`AttitudeErrorRule`]) are
//! implementations of the open [`SecurityRule`] trait, so deployments can
//! add their own (see the `custom_rule` example).

use sim_core::time::{SimDuration, SimTime};

use crate::config::MonitorThresholds;

/// Which controller's output drives the actuators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputSource {
    /// The complex controller in the CCE (normal operation).
    #[default]
    Complex,
    /// The safety controller on the HCE (after a violation).
    Safety,
}

/// Everything a rule may inspect at evaluation time.
#[derive(Debug, Clone, Copy)]
pub struct MonitorContext {
    /// Current time.
    pub now: SimTime,
    /// When the last *valid* `MotorOutput` frame arrived from the CCE.
    pub last_valid_output: Option<SimTime>,
    /// Attitude error of the vehicle against the HCE's own reference, rad.
    pub attitude_error: f64,
    /// Current output source.
    pub source: OutputSource,
}

/// Verdict of one rule evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleVerdict {
    /// All good.
    Ok,
    /// The rule is violated; the message is recorded in the event log.
    Violation(String),
}

/// A pluggable security rule.
pub trait SecurityRule: std::fmt::Debug + Send {
    /// Short identifier for reports.
    fn name(&self) -> &str;
    /// Evaluates the rule.
    fn evaluate(&mut self, ctx: &MonitorContext) -> RuleVerdict;
}

/// Rule 1 (§III-E): "The interval between two consecutive output received
/// by the HCE should not be longer than a threshold. A long interval
/// suggests the complex controller may have failed."
#[derive(Debug)]
pub struct ReceiveIntervalRule {
    threshold: SimDuration,
    armed_at: Option<SimTime>,
}

impl ReceiveIntervalRule {
    /// Creates the rule with the given interval threshold.
    pub fn new(threshold: SimDuration) -> Self {
        ReceiveIntervalRule {
            threshold,
            armed_at: None,
        }
    }
}

impl SecurityRule for ReceiveIntervalRule {
    fn name(&self) -> &str {
        "receive-interval"
    }

    fn evaluate(&mut self, ctx: &MonitorContext) -> RuleVerdict {
        // Arm from the first evaluation so a CCE that never speaks at all
        // also trips the rule.
        let reference = match (ctx.last_valid_output, self.armed_at) {
            (Some(rx), _) => rx,
            (None, Some(armed)) => armed,
            (None, None) => {
                self.armed_at = Some(ctx.now);
                ctx.now
            }
        };
        let gap = ctx.now.saturating_since(reference);
        if gap > self.threshold {
            RuleVerdict::Violation(format!(
                "no valid CCE output for {gap} (threshold {})",
                self.threshold
            ))
        } else {
            RuleVerdict::Ok
        }
    }
}

/// Rule 2 (§III-E): "The attitude (i.e., roll, pitch, and yaw) errors
/// should be bounded at all time … Large errors suggest the drone is in a
/// dangerous state and might crash."
#[derive(Debug)]
pub struct AttitudeErrorRule {
    max_error: f64,
    persistence: SimDuration,
    exceeded_since: Option<SimTime>,
}

impl AttitudeErrorRule {
    /// Creates the rule: error must exceed `max_error` (rad) continuously
    /// for `persistence` before it trips (so sensor noise and aggressive
    /// maneuvers do not cause spurious failovers).
    pub fn new(max_error: f64, persistence: SimDuration) -> Self {
        AttitudeErrorRule {
            max_error,
            persistence,
            exceeded_since: None,
        }
    }
}

impl SecurityRule for AttitudeErrorRule {
    fn name(&self) -> &str {
        "attitude-error"
    }

    fn evaluate(&mut self, ctx: &MonitorContext) -> RuleVerdict {
        if ctx.attitude_error > self.max_error {
            let since = *self.exceeded_since.get_or_insert(ctx.now);
            if ctx.now.saturating_since(since) >= self.persistence {
                return RuleVerdict::Violation(format!(
                    "attitude error {:.1}° above {:.1}° for {}",
                    ctx.attitude_error.to_degrees(),
                    self.max_error.to_degrees(),
                    self.persistence
                ));
            }
        } else {
            self.exceeded_since = None;
        }
        RuleVerdict::Ok
    }
}

/// A recorded monitor action.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorEvent {
    /// When the violation was detected.
    pub time: SimTime,
    /// Which rule fired.
    pub rule: String,
    /// Human-readable details.
    pub detail: String,
}

/// The security monitor: evaluates rules and performs the Simplex switch.
///
/// # Examples
///
/// ```
/// use containerdrone_core::monitor::{MonitorContext, OutputSource, SecurityMonitor};
/// use containerdrone_core::config::MonitorThresholds;
/// use sim_core::time::SimTime;
///
/// let mut mon = SecurityMonitor::new(&MonitorThresholds::default());
/// let ctx = MonitorContext {
///     now: SimTime::from_secs(10),
///     last_valid_output: Some(SimTime::from_secs(5)), // 5 s silence
///     attitude_error: 0.0,
///     source: OutputSource::Complex,
/// };
/// assert!(mon.evaluate(&ctx)); // violation -> switch demanded
/// assert_eq!(mon.source(), OutputSource::Safety);
/// ```
#[derive(Debug)]
pub struct SecurityMonitor {
    rules: Vec<Box<dyn SecurityRule>>,
    source: OutputSource,
    events: Vec<MonitorEvent>,
    switch_time: Option<SimTime>,
}

impl SecurityMonitor {
    /// Creates the monitor with the paper's two rules.
    pub fn new(thresholds: &MonitorThresholds) -> Self {
        SecurityMonitor {
            rules: vec![
                Box::new(ReceiveIntervalRule::new(thresholds.max_receive_interval)),
                Box::new(AttitudeErrorRule::new(
                    thresholds.max_attitude_error,
                    thresholds.attitude_persistence,
                )),
            ],
            source: OutputSource::Complex,
            events: Vec::new(),
            switch_time: None,
        }
    }

    /// Creates a monitor with a custom rule set.
    pub fn with_rules(rules: Vec<Box<dyn SecurityRule>>) -> Self {
        SecurityMonitor {
            rules,
            source: OutputSource::Complex,
            events: Vec::new(),
            switch_time: None,
        }
    }

    /// Adds a rule (see the `custom_rule` example).
    pub fn add_rule(&mut self, rule: Box<dyn SecurityRule>) {
        self.rules.push(rule);
    }

    /// The currently selected output source.
    pub fn source(&self) -> OutputSource {
        self.source
    }

    /// When the Simplex switch happened, if it has.
    pub fn switch_time(&self) -> Option<SimTime> {
        self.switch_time
    }

    /// Recorded violations.
    pub fn events(&self) -> &[MonitorEvent] {
        &self.events
    }

    /// Evaluates every rule. Returns `true` if a *new* violation demands
    /// the Simplex switch this call (the caller must then kill the rx
    /// thread, as the paper's monitor does).
    pub fn evaluate(&mut self, ctx: &MonitorContext) -> bool {
        if self.source == OutputSource::Safety {
            // Already switched; the safety controller keeps control for the
            // remainder of the flight (the paper performs no switch-back).
            return false;
        }
        let mut tripped = false;
        for rule in &mut self.rules {
            if let RuleVerdict::Violation(detail) = rule.evaluate(ctx) {
                self.events.push(MonitorEvent {
                    time: ctx.now,
                    rule: rule.name().to_string(),
                    detail,
                });
                tripped = true;
            }
        }
        if tripped {
            self.source = OutputSource::Safety;
            self.switch_time = Some(ctx.now);
        }
        tripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(now_ms: u64, last_rx_ms: Option<u64>, att_err_deg: f64) -> MonitorContext {
        MonitorContext {
            now: SimTime::from_millis(now_ms),
            last_valid_output: last_rx_ms.map(SimTime::from_millis),
            attitude_error: att_err_deg.to_radians(),
            source: OutputSource::Complex,
        }
    }

    #[test]
    fn interval_rule_trips_on_silence() {
        let mut r = ReceiveIntervalRule::new(SimDuration::from_millis(300));
        assert_eq!(r.evaluate(&ctx(1000, Some(900), 0.0)), RuleVerdict::Ok);
        assert!(matches!(
            r.evaluate(&ctx(1301, Some(1000), 0.0)),
            RuleVerdict::Violation(_)
        ));
    }

    #[test]
    fn interval_rule_arms_without_any_output() {
        let mut r = ReceiveIntervalRule::new(SimDuration::from_millis(300));
        assert_eq!(r.evaluate(&ctx(0, None, 0.0)), RuleVerdict::Ok);
        assert_eq!(r.evaluate(&ctx(200, None, 0.0)), RuleVerdict::Ok);
        assert!(matches!(
            r.evaluate(&ctx(400, None, 0.0)),
            RuleVerdict::Violation(_)
        ));
    }

    #[test]
    fn attitude_rule_requires_persistence() {
        let mut r = AttitudeErrorRule::new(20f64.to_radians(), SimDuration::from_millis(250));
        assert_eq!(r.evaluate(&ctx(0, None, 30.0)), RuleVerdict::Ok);
        assert_eq!(r.evaluate(&ctx(100, None, 30.0)), RuleVerdict::Ok);
        assert!(matches!(
            r.evaluate(&ctx(260, None, 30.0)),
            RuleVerdict::Violation(_)
        ));
    }

    #[test]
    fn attitude_rule_resets_on_recovery() {
        let mut r = AttitudeErrorRule::new(20f64.to_radians(), SimDuration::from_millis(250));
        assert_eq!(r.evaluate(&ctx(0, None, 30.0)), RuleVerdict::Ok);
        assert_eq!(r.evaluate(&ctx(200, None, 5.0)), RuleVerdict::Ok); // recovered
        assert_eq!(r.evaluate(&ctx(300, None, 30.0)), RuleVerdict::Ok); // re-arms
        assert_eq!(r.evaluate(&ctx(500, None, 5.0)), RuleVerdict::Ok);
    }

    #[test]
    fn monitor_switches_once_and_latches() {
        let mut mon = SecurityMonitor::new(&MonitorThresholds::default());
        // Healthy.
        assert!(!mon.evaluate(&ctx(100, Some(95), 2.0)));
        assert_eq!(mon.source(), OutputSource::Complex);
        // Silence beyond the interval threshold: switch.
        assert!(mon.evaluate(&ctx(800, Some(95), 2.0)));
        assert_eq!(mon.source(), OutputSource::Safety);
        assert_eq!(mon.switch_time(), Some(SimTime::from_millis(800)));
        // Further evaluations do not "switch" again.
        assert!(!mon.evaluate(&ctx(1200, Some(95), 45.0)));
        assert_eq!(mon.events().len(), 1);
    }

    #[test]
    fn custom_rules_participate() {
        #[derive(Debug)]
        struct AlwaysTrip;
        impl SecurityRule for AlwaysTrip {
            fn name(&self) -> &str {
                "always"
            }
            fn evaluate(&mut self, _: &MonitorContext) -> RuleVerdict {
                RuleVerdict::Violation("tripped".into())
            }
        }
        let mut mon = SecurityMonitor::with_rules(vec![Box::new(AlwaysTrip)]);
        assert!(mon.evaluate(&ctx(0, Some(0), 0.0)));
        assert_eq!(mon.events()[0].rule, "always");
    }
}
