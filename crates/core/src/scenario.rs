//! Scenario definitions: the paper's experiments as data.
//!
//! A scenario is described by a [`ScenarioConfig`], normally assembled
//! through [`ScenarioConfig::builder`]. Attacks are scheduled on a
//! composable [`AttackScript`] timeline — any number of attacks, with
//! independent onsets, per run. The paper's figures are presets
//! ([`ScenarioConfig::fig4`] … [`ScenarioConfig::fig7`]), kept as thin
//! wrappers over the builder; all presets share one calibration (costs,
//! γ, thresholds) and differ exactly where the paper's experiments
//! differ: which attacks run, when, and which protections are enabled.

use attacks::membw_hog::BandwidthHog;
use attacks::script::{AttackEvent, AttackScript};
use attacks::spoof::MotorSpoof;
use attacks::udp_flood::UdpFlood;
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::math::Vec3;
use uav_dynamics::world::WorldConfig;

use crate::config::{FrameworkConfig, Protections};

/// Who flies the drone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pilot {
    /// The complex controller in the CCE flies; the safety controller is
    /// hot standby behind the security monitor (Figures 6 and 7).
    CceSimplex,
    /// The trusted controller on the HCE flies directly and the container
    /// only hosts the attacker — the paper's memory-DoS setup, where
    /// "the Bandwidth task is the only process running inside the
    /// container" (Figures 4 and 5).
    HceDirect,
}

/// A complete scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Framework configuration (rates, costs, protections, thresholds).
    pub framework: FrameworkConfig,
    /// Physical world configuration.
    pub world: WorldConfig,
    /// Who flies.
    pub pilot: Pilot,
    /// The attack timeline (empty = healthy run).
    pub attacks: AttackScript,
    /// Flight duration.
    pub duration: SimDuration,
    /// Master random seed.
    pub seed: u64,
    /// Hover setpoint (NED), matching the paper's plots: hold at ~1 m.
    pub hover: Vec3,
    /// Telemetry sampling rate, Hz.
    pub record_hz: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            framework: FrameworkConfig::default(),
            world: WorldConfig::default(),
            pilot: Pilot::CceSimplex,
            attacks: AttackScript::none(),
            duration: SimDuration::from_secs(30),
            seed: 2019,
            hover: Vec3::new(0.0, 0.6, -1.0),
            record_hz: 50.0,
        }
    }
}

/// γ used by the memory-DoS scenarios. The library default (14) matches
/// the mid-range of published single-hog victim slowdowns; the paper's
/// testbed crashes outright, which on A53-class cores corresponds to the
/// pessimistic end (shared-L2 pollution on top of bus contention). The
/// calibration is documented in EXPERIMENTS.md and swept by the
/// `ablation_memguard` bench.
pub const MEM_ATTACK_GAMMA: f64 = 45.0;

/// Fluent assembly of a [`ScenarioConfig`].
///
/// # Examples
///
/// ```
/// use containerdrone_core::prelude::*;
/// use sim_core::time::SimTime;
///
/// let cfg = ScenarioConfig::builder()
///     .pilot(Pilot::CceSimplex)
///     .attack_at(SimTime::from_secs(12), AttackEvent::KillComplex)
///     .build();
/// assert_eq!(cfg, ScenarioConfig::fig6());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Selects the pilot mode.
    #[must_use]
    pub fn pilot(mut self, pilot: Pilot) -> Self {
        self.cfg.pilot = pilot;
        self
    }

    /// Schedules an attack event on the timeline (repeatable; events may
    /// overlap and sequence freely).
    #[must_use]
    pub fn attack_at(mut self, at: SimTime, event: AttackEvent) -> Self {
        self.cfg.attacks = self.cfg.attacks.at(at, event);
        self
    }

    /// Replaces the whole attack timeline.
    #[must_use]
    pub fn script(mut self, script: AttackScript) -> Self {
        self.cfg.attacks = script;
        self
    }

    /// Replaces the protection switches wholesale.
    #[must_use]
    pub fn protections(mut self, protections: Protections) -> Self {
        self.cfg.framework.protections = protections;
        self
    }

    /// Toggles MemGuard regulation of the CCE core.
    #[must_use]
    pub fn memguard(mut self, on: bool) -> Self {
        self.cfg.framework.protections.memguard = on;
        self
    }

    /// Toggles the iptables rate limit on the motor port.
    #[must_use]
    pub fn iptables(mut self, on: bool) -> Self {
        self.cfg.framework.protections.iptables = on;
        self
    }

    /// Toggles the security monitor (rules + Simplex switching).
    #[must_use]
    pub fn monitor(mut self, on: bool) -> Self {
        self.cfg.framework.protections.monitor = on;
        self
    }

    /// Toggles CPU isolation (container cpuset + RT-priority denial).
    #[must_use]
    pub fn cpu_isolation(mut self, on: bool) -> Self {
        self.cfg.framework.protections.cpu_isolation = on;
        self
    }

    /// Sets the DRAM contention factor γ (memory-DoS calibration).
    #[must_use]
    pub fn contention_gamma(mut self, gamma: f64) -> Self {
        self.cfg.framework.dram.contention_gamma = gamma;
        self
    }

    /// Replaces the full framework configuration.
    #[must_use]
    pub fn framework(mut self, framework: FrameworkConfig) -> Self {
        self.cfg.framework = framework;
        self
    }

    /// Replaces the physical-world configuration.
    #[must_use]
    pub fn world(mut self, world: WorldConfig) -> Self {
        self.cfg.world = world;
        self
    }

    /// Sets the flight duration.
    #[must_use]
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.cfg.duration = duration;
        self
    }

    /// Sets the master random seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the hover setpoint (NED).
    #[must_use]
    pub fn hover(mut self, hover: Vec3) -> Self {
        self.cfg.hover = hover;
        self
    }

    /// Sets the telemetry sampling rate.
    #[must_use]
    pub fn record_hz(mut self, hz: f64) -> Self {
        self.cfg.record_hz = hz;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ScenarioConfig {
        self.cfg
    }
}

impl ScenarioConfig {
    /// Starts a fluent builder from the default (healthy) configuration.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Figure 4: memory DoS with MemGuard **disabled** — the drone drifts
    /// and crashes shortly after the attack starts (10 s).
    pub fn fig4() -> Self {
        ScenarioConfig::builder()
            .pilot(Pilot::HceDirect)
            .attack_at(
                SimTime::from_secs(10),
                AttackEvent::MemoryHog(BandwidthHog::isolbench()),
            )
            .memguard(false)
            .contention_gamma(MEM_ATTACK_GAMMA)
            .build()
    }

    /// Figure 5: the same attack with MemGuard **enabled** — the drone
    /// oscillates briefly but remains stable.
    pub fn fig5() -> Self {
        ScenarioBuilder { cfg: Self::fig4() }.memguard(true).build()
    }

    /// Figure 6: the attacker kills the complex controller at 12 s; the
    /// receive-interval rule trips and the safety controller recovers.
    pub fn fig6() -> Self {
        ScenarioConfig::builder()
            .pilot(Pilot::CceSimplex)
            .attack_at(SimTime::from_secs(12), AttackEvent::KillComplex)
            .build()
    }

    /// Figure 7: UDP flood against the motor port starting at 8 s; the
    /// drone degrades until the attitude-error rule trips, then recovers.
    pub fn fig7() -> Self {
        ScenarioConfig::builder()
            .pilot(Pilot::CceSimplex)
            .attack_at(
                SimTime::from_secs(8),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            )
            .build()
    }

    /// A healthy baseline flight (no attack), used for Table I and as the
    /// reference trajectory.
    pub fn healthy() -> Self {
        ScenarioConfig::default()
    }

    /// Extension experiment: command spoofing from the CCE at 10 s —
    /// protocol-valid hostile motor output that only the attitude-error
    /// rule can catch (the paper's Figure-7 detection mechanism). This
    /// variant pairs a moderate attacker with an integrity-tuned attitude
    /// rule (12° / 50 ms) and a higher hover, and the monitor wins: switch
    /// and recovery.
    pub fn spoof() -> Self {
        let mut cfg = ScenarioConfig::builder()
            .pilot(Pilot::CceSimplex)
            .attack_at(
                SimTime::from_secs(10),
                AttackEvent::SpoofMotor(MotorSpoof::moderate()),
            )
            .hover(Vec3::new(0.0, 0.6, -2.5))
            .build();
        cfg.framework.thresholds.max_attitude_error = 12f64.to_radians();
        cfg.framework.thresholds.attitude_persistence = SimDuration::from_millis(50);
        cfg
    }

    /// Extension experiment, worst case: a full-authority spoof (hard
    /// roll) from a 1 m hover. The attitude rule fires at its configured
    /// persistence, but the vehicle flips faster than the safety
    /// controller can recover at that altitude — the classic Simplex
    /// detection-latency limitation, documented in EXPERIMENTS.md.
    pub fn spoof_violent() -> Self {
        ScenarioConfig::builder()
            .pilot(Pilot::CceSimplex)
            .attack_at(
                SimTime::from_secs(10),
                AttackEvent::SpoofMotor(MotorSpoof::default()),
            )
            .build()
    }

    /// Overrides the seed (for replication studies).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the positioning source from the lab's Vicon system to
    /// consumer-GNSS accuracy — the "other types of unmanned vehicles /
    /// outdoor" what-if the paper's conclusion gestures at.
    #[must_use]
    pub fn with_gps_positioning(mut self) -> Self {
        self.world.positioning = uav_dynamics::sensors::PositioningConfig::gps();
        self
    }

    /// Overrides the duration.
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_and_fig5_differ_only_in_memguard() {
        let a = ScenarioConfig::fig4();
        let b = ScenarioConfig::fig5();
        assert!(!a.framework.protections.memguard);
        assert!(b.framework.protections.memguard);
        let mut a2 = a;
        a2.framework.protections.memguard = true;
        assert_eq!(a2, b, "no other difference is allowed");
    }

    #[test]
    fn presets_use_paper_attack_times() {
        assert_eq!(
            ScenarioConfig::fig4().attacks.first_onset(),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(
            ScenarioConfig::fig6().attacks.first_onset(),
            Some(SimTime::from_secs(12))
        );
        assert_eq!(
            ScenarioConfig::fig7().attacks.first_onset(),
            Some(SimTime::from_secs(8))
        );
        assert_eq!(ScenarioConfig::healthy().attacks.first_onset(), None);
    }

    #[test]
    fn figure_scenarios_run_30_seconds() {
        for cfg in [
            ScenarioConfig::fig4(),
            ScenarioConfig::fig5(),
            ScenarioConfig::fig6(),
            ScenarioConfig::fig7(),
        ] {
            assert_eq!(cfg.duration, SimDuration::from_secs(30));
        }
    }

    #[test]
    fn builder_composes_multi_attack_timelines() {
        let cfg = ScenarioConfig::builder()
            .attack_at(SimTime::from_secs(15), AttackEvent::KillComplex)
            .attack_at(
                SimTime::from_secs(10),
                AttackEvent::MemoryHog(BandwidthHog::isolbench()),
            )
            .build();
        assert_eq!(cfg.attacks.len(), 2);
        assert_eq!(cfg.attacks.first_onset(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn builder_defaults_equal_healthy_preset() {
        assert_eq!(ScenarioConfig::builder().build(), ScenarioConfig::healthy());
    }
}
