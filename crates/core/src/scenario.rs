//! Scenario definitions: the paper's experiments as data.
//!
//! Each figure of the evaluation section is a preset here; the
//! [`crate::runner::Scenario`] executes them. All presets share one
//! calibration (costs, γ, thresholds) — the differences between presets
//! are exactly the differences between the paper's experiments: which
//! attack runs, when, and which protections are enabled.

use attacks::cpu_hog::CpuHog;
use attacks::membw_hog::BandwidthHog;
use attacks::spoof::MotorSpoof;
use attacks::udp_flood::UdpFlood;
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::math::Vec3;
use uav_dynamics::world::WorldConfig;

use crate::config::FrameworkConfig;

/// Who flies the drone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pilot {
    /// The complex controller in the CCE flies; the safety controller is
    /// hot standby behind the security monitor (Figures 6 and 7).
    CceSimplex,
    /// The trusted controller on the HCE flies directly and the container
    /// only hosts the attacker — the paper's memory-DoS setup, where
    /// "the Bandwidth task is the only process running inside the
    /// container" (Figures 4 and 5).
    HceDirect,
}

/// The attack of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// No attack (healthy baseline).
    None,
    /// Memory-bandwidth hog in the container.
    MemoryHog {
        /// Attack onset.
        at: SimTime,
        /// The hog profile.
        hog: BandwidthHog,
    },
    /// UDP flood against the HCE motor port.
    UdpFlood {
        /// Attack onset.
        at: SimTime,
        /// Flood parameters.
        flood: UdpFlood,
    },
    /// Kill the complex controller.
    KillComplex {
        /// Attack onset.
        at: SimTime,
    },
    /// CPU hog (ablation experiment).
    CpuHog {
        /// Attack onset.
        at: SimTime,
        /// Hog parameters.
        hog: CpuHog,
    },
    /// Protocol-valid hostile motor commands (extension beyond the
    /// paper's DoS attacker; exercises the attitude-error rule).
    SpoofMotor {
        /// Attack onset.
        at: SimTime,
        /// Spoof parameters.
        spoof: MotorSpoof,
    },
}

impl Attack {
    /// When the attack starts, if there is one.
    pub fn onset(&self) -> Option<SimTime> {
        match self {
            Attack::None => None,
            Attack::MemoryHog { at, .. }
            | Attack::UdpFlood { at, .. }
            | Attack::KillComplex { at }
            | Attack::CpuHog { at, .. }
            | Attack::SpoofMotor { at, .. } => Some(*at),
        }
    }
}

/// A complete scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Framework configuration (rates, costs, protections, thresholds).
    pub framework: FrameworkConfig,
    /// Physical world configuration.
    pub world: WorldConfig,
    /// Who flies.
    pub pilot: Pilot,
    /// What attacks.
    pub attack: Attack,
    /// Flight duration.
    pub duration: SimDuration,
    /// Master random seed.
    pub seed: u64,
    /// Hover setpoint (NED), matching the paper's plots: hold at ~1 m.
    pub hover: Vec3,
    /// Telemetry sampling rate, Hz.
    pub record_hz: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            framework: FrameworkConfig::default(),
            world: WorldConfig::default(),
            pilot: Pilot::CceSimplex,
            attack: Attack::None,
            duration: SimDuration::from_secs(30),
            seed: 2019,
            hover: Vec3::new(0.0, 0.6, -1.0),
            record_hz: 50.0,
        }
    }
}

/// γ used by the memory-DoS scenarios. The library default (14) matches
/// the mid-range of published single-hog victim slowdowns; the paper's
/// testbed crashes outright, which on A53-class cores corresponds to the
/// pessimistic end (shared-L2 pollution on top of bus contention). The
/// calibration is documented in EXPERIMENTS.md and swept by the
/// `ablation_memguard` bench.
pub const MEM_ATTACK_GAMMA: f64 = 45.0;

impl ScenarioConfig {
    /// Figure 4: memory DoS with MemGuard **disabled** — the drone drifts
    /// and crashes shortly after the attack starts (10 s).
    pub fn fig4() -> Self {
        let mut cfg = ScenarioConfig {
            pilot: Pilot::HceDirect,
            attack: Attack::MemoryHog {
                at: SimTime::from_secs(10),
                hog: BandwidthHog::isolbench(),
            },
            ..ScenarioConfig::default()
        };
        cfg.framework.protections.memguard = false;
        cfg.framework.dram.contention_gamma = MEM_ATTACK_GAMMA;
        cfg
    }

    /// Figure 5: the same attack with MemGuard **enabled** — the drone
    /// oscillates briefly but remains stable.
    pub fn fig5() -> Self {
        let mut cfg = Self::fig4();
        cfg.framework.protections.memguard = true;
        cfg
    }

    /// Figure 6: the attacker kills the complex controller at 12 s; the
    /// receive-interval rule trips and the safety controller recovers.
    pub fn fig6() -> Self {
        ScenarioConfig {
            pilot: Pilot::CceSimplex,
            attack: Attack::KillComplex {
                at: SimTime::from_secs(12),
            },
            ..ScenarioConfig::default()
        }
    }

    /// Figure 7: UDP flood against the motor port starting at 8 s; the
    /// drone degrades until the attitude-error rule trips, then recovers.
    pub fn fig7() -> Self {
        ScenarioConfig {
            pilot: Pilot::CceSimplex,
            attack: Attack::UdpFlood {
                at: SimTime::from_secs(8),
                flood: UdpFlood::against_motor_port(),
            },
            ..ScenarioConfig::default()
        }
    }

    /// A healthy baseline flight (no attack), used for Table I and as the
    /// reference trajectory.
    pub fn healthy() -> Self {
        ScenarioConfig::default()
    }

    /// Extension experiment: command spoofing from the CCE at 10 s —
    /// protocol-valid hostile motor output that only the attitude-error
    /// rule can catch (the paper's Figure-7 detection mechanism). This
    /// variant pairs a moderate attacker with an integrity-tuned attitude
    /// rule (12° / 50 ms) and a higher hover, and the monitor wins: switch
    /// and recovery.
    pub fn spoof() -> Self {
        let mut cfg = ScenarioConfig {
            pilot: Pilot::CceSimplex,
            attack: Attack::SpoofMotor {
                at: SimTime::from_secs(10),
                spoof: MotorSpoof::moderate(),
            },
            hover: uav_dynamics::math::Vec3::new(0.0, 0.6, -2.5),
            ..ScenarioConfig::default()
        };
        cfg.framework.thresholds.max_attitude_error = 12f64.to_radians();
        cfg.framework.thresholds.attitude_persistence = SimDuration::from_millis(50);
        cfg
    }

    /// Extension experiment, worst case: a full-authority spoof (hard
    /// roll) from a 1 m hover. The attitude rule fires at its configured
    /// persistence, but the vehicle flips faster than the safety
    /// controller can recover at that altitude — the classic Simplex
    /// detection-latency limitation, documented in EXPERIMENTS.md.
    pub fn spoof_violent() -> Self {
        ScenarioConfig {
            pilot: Pilot::CceSimplex,
            attack: Attack::SpoofMotor {
                at: SimTime::from_secs(10),
                spoof: MotorSpoof::default(),
            },
            ..ScenarioConfig::default()
        }
    }

    /// Overrides the seed (for replication studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the positioning source from the lab's Vicon system to
    /// consumer-GNSS accuracy — the "other types of unmanned vehicles /
    /// outdoor" what-if the paper's conclusion gestures at.
    pub fn with_gps_positioning(mut self) -> Self {
        self.world.positioning = uav_dynamics::sensors::PositioningConfig::gps();
        self
    }

    /// Overrides the duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_and_fig5_differ_only_in_memguard() {
        let a = ScenarioConfig::fig4();
        let b = ScenarioConfig::fig5();
        assert!(!a.framework.protections.memguard);
        assert!(b.framework.protections.memguard);
        let mut a2 = a.clone();
        a2.framework.protections.memguard = true;
        assert_eq!(a2, b, "no other difference is allowed");
    }

    #[test]
    fn presets_use_paper_attack_times() {
        assert_eq!(
            ScenarioConfig::fig4().attack.onset(),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(
            ScenarioConfig::fig6().attack.onset(),
            Some(SimTime::from_secs(12))
        );
        assert_eq!(
            ScenarioConfig::fig7().attack.onset(),
            Some(SimTime::from_secs(8))
        );
        assert_eq!(ScenarioConfig::healthy().attack.onset(), None);
    }

    #[test]
    fn figure_scenarios_run_30_seconds() {
        for cfg in [
            ScenarioConfig::fig4(),
            ScenarioConfig::fig5(),
            ScenarioConfig::fig6(),
            ScenarioConfig::fig7(),
        ] {
            assert_eq!(cfg.duration, SimDuration::from_secs(30));
        }
    }
}
