//! **ContainerDrone**: a container-based DoS-attack-resilient control
//! framework for real-time UAV systems — full-system reproduction of
//! Chen et al., DATE 2019.
//!
//! The framework splits the flight software into two environments:
//!
//! * the **Host Control Environment (HCE)** — sensor/motor drivers, a
//!   verified safety controller, a receiving thread, and a security
//!   monitor, all running with real-time priorities on the host;
//! * the **Container Control Environment (CCE)** — the feature-rich but
//!   untrusted complex controller, confined by cgroup cpuset, denied RT
//!   priority, regulated by MemGuard and reachable only through a bridged
//!   UDP channel with iptables rate limiting.
//!
//! A Simplex-architecture [`monitor::SecurityMonitor`] watches the CCE's
//! output stream and the vehicle's attitude; on a rule violation it kills
//! the receiving thread and hands actuation to the safety controller.
//!
//! # Quickstart
//!
//! Scenarios are assembled with [`ScenarioConfig::builder`]; attacks are
//! scheduled on a composable timeline, so one run can sequence and
//! overlap any number of them:
//!
//! ```
//! use containerdrone_core::prelude::*;
//! use sim_core::time::{SimDuration, SimTime};
//!
//! // A short flight in which the attacker kills the complex controller
//! // at 1 s — the monitor fails over to the safety controller.
//! let cfg = ScenarioConfig::builder()
//!     .pilot(Pilot::CceSimplex)
//!     .attack_at(SimTime::from_secs(1), AttackEvent::KillComplex)
//!     .duration(SimDuration::from_secs(3))
//!     .build();
//! let result = Scenario::new(cfg).run();
//! assert!(!result.crashed());
//! assert!(result.switch_time.is_some());
//! ```
//!
//! Multi-attack timelines chain `attack_at` calls (or build an
//! [`attacks::AttackScript`] directly):
//!
//! ```no_run
//! use containerdrone_core::prelude::*;
//! use sim_core::time::SimTime;
//!
//! let cfg = ScenarioConfig::builder()
//!     .attack_at(SimTime::from_secs(10), AttackEvent::MemoryHog(BandwidthHog::isolbench()))
//!     .attack_at(SimTime::from_secs(15), AttackEvent::UdpFlood(UdpFlood::against_motor_port()))
//!     .attack_at(SimTime::from_secs(20), AttackEvent::KillComplex)
//!     .build();
//! let result = Scenario::new(cfg).run();
//! ```
//!
//! The paper's experiments are presets: [`scenario::ScenarioConfig::fig4`]
//! through [`scenario::ScenarioConfig::fig7`] — thin wrappers over the
//! builder. The `cd-bench` crate regenerates every table and figure from
//! them, and its `Campaign` layer fans whole scenario grids out across
//! threads.

#![warn(missing_docs)]

pub mod config;
pub mod feeder;
pub mod monitor;
pub mod phase;
pub mod runner;
pub mod scenario;
pub mod telemetry;

pub use config::{
    FrameworkConfig, MonitorThresholds, Priorities, Protections, StreamRates, TaskCosts,
    MOTOR_PORT, SENSOR_PORT,
};
pub use monitor::{
    AttitudeErrorRule, MonitorContext, MonitorEvent, OutputSource, ReceiveIntervalRule,
    RuleVerdict, SecurityMonitor, SecurityRule,
};
pub use runner::{RunningScenario, Scenario, ScenarioResult, StreamReport};
pub use scenario::{Pilot, ScenarioBuilder, ScenarioConfig};

// The attack-timeline vocabulary is part of the scenario API surface.
pub use attacks::script::{AttackEvent, AttackScript, ScriptEntry};
pub use telemetry::{FlightRecorder, Marker};

/// Convenient glob import of the framework types.
pub mod prelude {
    pub use crate::config::{FrameworkConfig, Protections, MOTOR_PORT, SENSOR_PORT};
    pub use crate::monitor::{
        MonitorContext, OutputSource, RuleVerdict, SecurityMonitor, SecurityRule,
    };
    pub use crate::runner::{RunningScenario, Scenario, ScenarioResult, StreamReport};
    pub use crate::scenario::{Pilot, ScenarioBuilder, ScenarioConfig};
    pub use crate::telemetry::FlightRecorder;
    pub use attacks::prelude::*;
}
