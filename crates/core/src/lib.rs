//! **ContainerDrone**: a container-based DoS-attack-resilient control
//! framework for real-time UAV systems — full-system reproduction of
//! Chen et al., DATE 2019.
//!
//! The framework splits the flight software into two environments:
//!
//! * the **Host Control Environment (HCE)** — sensor/motor drivers, a
//!   verified safety controller, a receiving thread, and a security
//!   monitor, all running with real-time priorities on the host;
//! * the **Container Control Environment (CCE)** — the feature-rich but
//!   untrusted complex controller, confined by cgroup cpuset, denied RT
//!   priority, regulated by MemGuard and reachable only through a bridged
//!   UDP channel with iptables rate limiting.
//!
//! A Simplex-architecture [`monitor::SecurityMonitor`] watches the CCE's
//! output stream and the vehicle's attitude; on a rule violation it kills
//! the receiving thread and hands actuation to the safety controller.
//!
//! # Quickstart
//!
//! ```
//! use containerdrone_core::prelude::*;
//! use sim_core::time::SimDuration;
//!
//! // A short healthy hover (the full figures run 30 s).
//! let cfg = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
//! let result = Scenario::new(cfg).run();
//! assert!(!result.crashed());
//! ```
//!
//! The paper's experiments are presets: [`scenario::ScenarioConfig::fig4`]
//! through [`scenario::ScenarioConfig::fig7`]; the `cd-bench` crate
//! regenerates every table and figure from them.

#![warn(missing_docs)]

pub mod config;
pub mod feeder;
pub mod monitor;
pub mod runner;
pub mod scenario;
pub mod telemetry;

pub use config::{
    FrameworkConfig, MonitorThresholds, Priorities, Protections, StreamRates, TaskCosts,
    MOTOR_PORT, SENSOR_PORT,
};
pub use monitor::{
    AttitudeErrorRule, MonitorContext, MonitorEvent, OutputSource, ReceiveIntervalRule,
    RuleVerdict, SecurityMonitor, SecurityRule,
};
pub use runner::{Scenario, ScenarioResult, StreamReport};
pub use scenario::{Attack, Pilot, ScenarioConfig};
pub use telemetry::{FlightRecorder, Marker};

/// Convenient glob import of the framework types.
pub mod prelude {
    pub use crate::config::{FrameworkConfig, Protections, MOTOR_PORT, SENSOR_PORT};
    pub use crate::monitor::{
        MonitorContext, OutputSource, RuleVerdict, SecurityMonitor, SecurityRule,
    };
    pub use crate::runner::{Scenario, ScenarioResult, StreamReport};
    pub use crate::scenario::{Attack, Pilot, ScenarioConfig};
    pub use crate::telemetry::FlightRecorder;
}
