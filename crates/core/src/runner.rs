//! The co-simulation runner: machine + network + physics + controllers.
//!
//! [`Scenario::run`] assembles the full ContainerDrone system of Figure 2 —
//! HCE tasks on the host (drivers, rx thread, security monitor, safety
//! controller), CCE tasks in the container (complex-controller pipeline and
//! rate loop), the bridged UDP channel of Table I — and advances everything
//! in lock-step at the scheduler quantum. Job completions trigger the
//! corresponding framework actions, so every scheduling delay, memory
//! stall, dropped packet and parser resync propagates into flight quality
//! exactly the way it does on the paper's testbed.

use attacks::spoof::SpoofDriver;
use attacks::udp_flood::FloodDriver;
use autopilot::controller::{ControlGains, FlightController, Setpoint};
use container_rt::container::{Container, ContainerConfig};
use container_rt::vm::spawn_system_background;
use mavlink_lite::frame::Sender;
use mavlink_lite::messages::{Heartbeat, Message, MotorOutput};
use mavlink_lite::parser::{Parser, ParserStats};
use membw::dram::MemGuardConfig;
use rt_sched::machine::{Machine, MachineConfig, TaskStats};
use rt_sched::task::{SchedEvent, TaskId, TaskSpec};
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::crash::Crash;
use uav_dynamics::motor::cmd_to_pwm;
use uav_dynamics::world::World;
use virt_net::net::{Addr, Network, NsId, SocketId, SocketStats};

use crate::config::{MOTOR_PORT, SENSOR_PORT};
use crate::feeder::{
    baro_to_msg, fix_to_msg, imu_to_msg, msg_to_baro, msg_to_fix, msg_to_imu, neutral_rc,
    StreamCounter,
};
use crate::monitor::{MonitorContext, MonitorEvent, OutputSource, SecurityMonitor, SecurityRule};
use crate::scenario::{Attack, Pilot, ScenarioConfig};
use crate::telemetry::FlightRecorder;

/// One row of the Table I report.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Stream name (IMU, Barometer, …).
    pub name: &'static str,
    /// "HCE → CCE" or "CCE → HCE".
    pub direction: &'static str,
    /// Nominal rate from the configuration, Hz.
    pub nominal_hz: f64,
    /// Measured rate over the run, Hz.
    pub measured_hz: f64,
    /// On-wire frame size, bytes.
    pub frame_bytes: f64,
    /// Destination UDP port.
    pub port: u16,
}

/// Everything a scenario run produces.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The configuration that produced this result.
    pub config: ScenarioConfig,
    /// Recorded flight signals (the figure data).
    pub telemetry: FlightRecorder,
    /// The crash, if the flight ended in one.
    pub crash: Option<Crash>,
    /// When the Simplex switch to the safety controller happened.
    pub switch_time: Option<SimTime>,
    /// Monitor rule violations.
    pub monitor_events: Vec<MonitorEvent>,
    /// Attack onset (None for healthy runs).
    pub attack_onset: Option<SimTime>,
    /// Per-core idle fractions over the run.
    pub idle_rates: Vec<f64>,
    /// Measured Table I stream statistics.
    pub streams: Vec<StreamReport>,
    /// HCE motor-port parser statistics (flood garbage shows up here).
    pub hce_parser_stats: ParserStats,
    /// HCE motor-socket statistics (drops show up here).
    pub rx_socket_stats: SocketStats,
    /// Packets offered by the flood attack, if any.
    pub flood_sent: u64,
    /// CCE liveness heartbeats received by the HCE (1 Hz when healthy).
    pub heartbeats_received: u64,
    /// Per-task scheduler statistics (name, stats).
    pub task_report: Vec<(String, TaskStats)>,
}

impl ScenarioResult {
    /// `true` if the vehicle crashed.
    pub fn crashed(&self) -> bool {
        self.crash.is_some()
    }

    /// Largest distance between truth and the hover setpoint over
    /// `[from, to)`, metres.
    pub fn max_deviation(&self, from: SimTime, to: SimTime) -> f64 {
        ["x", "y", "z"]
            .iter()
            .map(|a| self.telemetry.max_tracking_error(a, from, to))
            .fold(0.0, f64::max)
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "outcome: {}\n",
            match &self.crash {
                Some(c) => format!("CRASHED at {} ({})", c.time, c.kind),
                None => "stable".to_string(),
            }
        ));
        if let Some(at) = self.attack_onset {
            s.push_str(&format!("attack onset: {at}\n"));
        }
        match self.switch_time {
            Some(t) => s.push_str(&format!("simplex switch: {t}\n")),
            None => s.push_str("simplex switch: never\n"),
        }
        for ev in &self.monitor_events {
            s.push_str(&format!("violation [{}] at {}: {}\n", ev.rule, ev.time, ev.detail));
        }
        let idle: Vec<String> = self.idle_rates.iter().map(|r| format!("{r:.2}")).collect();
        s.push_str(&format!("idle rates: [{}]\n", idle.join(", ")));
        s
    }
}

/// An executable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// Wraps a configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario { config }
    }

    /// Runs the scenario to completion (or 1 s past a crash) and returns
    /// the collected results.
    pub fn run(self) -> ScenarioResult {
        Runtime::build(self.config, Vec::new()).run()
    }

    /// Runs with additional custom security rules installed in the monitor
    /// (see the `custom_rule` example).
    pub fn run_with_rules(self, rules: Vec<Box<dyn SecurityRule>>) -> ScenarioResult {
        Runtime::build(self.config, rules).run()
    }
}

struct TaskIds {
    sensor_driver: TaskId,
    motor_driver: TaskId,
    monitor: Option<TaskId>,
    rx: Option<TaskId>,
    safety: Option<TaskId>,
    hce_stack: Option<TaskId>,
    cc_pipeline: Option<TaskId>,
    cc_rate: Option<TaskId>,
}

struct Runtime {
    cfg: ScenarioConfig,
    world: World,
    machine: Machine,
    net: Network,
    container: Container,
    host_ns: NsId,
    // Sockets.
    hce_motor_rx: SocketId,
    hce_sensor_tx: SocketId,
    cce_motor_tx: Option<SocketId>,
    cce_sensor_rx: Option<SocketId>,
    // Protocol state.
    hce_sender: Sender,
    cce_sender: Sender,
    hce_parser: Parser,
    cce_parser: Parser,
    // Controllers.
    safety_fc: FlightController,
    cce_fc: Option<FlightController>,
    hce_fc: Option<FlightController>,
    monitor: SecurityMonitor,
    // Simplex actuation state.
    cce_cmd_pwm: [u16; 4],
    last_valid_output: Option<SimTime>,
    motor_seq: u32,
    // Feeder state.
    sensor_jobs: u64,
    cce_rate_jobs: u64,
    heartbeats_received: u64,
    last_heartbeat: Option<SimTime>,
    imu_counter: StreamCounter,
    baro_counter: StreamCounter,
    gps_counter: StreamCounter,
    rc_counter: StreamCounter,
    motor_counter: StreamCounter,
    // Attack state.
    attack_launched: bool,
    flood: Option<FloodDriver>,
    spoof: Option<SpoofDriver>,
    // Bookkeeping.
    ids: TaskIds,
    recorder: FlightRecorder,
}

impl Runtime {
    fn build(cfg: ScenarioConfig, extra_rules: Vec<Box<dyn SecurityRule>>) -> Runtime {
        let fw = &cfg.framework;

        // --- Physical world -------------------------------------------------
        let mut world = World::new(cfg.world, cfg.seed);
        world.start_at_hover(cfg.hover);

        // --- Machine ---------------------------------------------------------
        let mut machine = Machine::new(MachineConfig {
            n_cores: 4,
            quantum: SimDuration::from_micros(50),
            dram: fw.dram,
        });
        spawn_system_background(&mut machine);
        if fw.protections.memguard {
            machine.enable_memguard(MemGuardConfig::single_core(
                4,
                fw.cce_core,
                fw.protections.memguard_budget,
                &fw.dram,
            ));
        }

        // --- Network + container ---------------------------------------------
        let mut net = Network::new();
        let host_ns = net.add_namespace("host");
        let mut container = Container::create(
            &mut machine,
            &mut net,
            host_ns,
            ContainerConfig::cce(fw.cce_core),
        );
        container.expose_port(&mut net, host_ns, SENSOR_PORT);

        let hce_motor_rx = net
            .bind_with_capacity(host_ns, MOTOR_PORT, fw.rx_queue_capacity)
            .expect("motor port free");
        let hce_sensor_tx = net.bind(host_ns, 9001).expect("feeder port free");
        if fw.protections.iptables {
            net.add_rate_limit(
                Addr { ns: host_ns, port: MOTOR_PORT },
                fw.protections.iptables_pps,
                fw.protections.iptables_burst,
            );
        }

        // --- HCE tasks ---------------------------------------------------------
        let hce_cores = rt_sched::task::CpuSet::from_cores(
            (0..4usize).filter(|c| *c != fw.cce_core),
        );
        let sensor_period = SimDuration::from_hz(fw.rates.imu_hz);
        let motor_period = SimDuration::from_hz(fw.rates.motor_hz);

        let sensor_driver = machine.spawn(
            TaskSpec::periodic_fifo("sensor-driver", fw.priorities.drivers, sensor_period, fw.costs.sensor_driver)
                .with_affinity(hce_cores),
            machine.root_cgroup(),
        );
        let motor_driver = machine.spawn(
            TaskSpec::periodic_fifo("motor-driver", fw.priorities.drivers, motor_period, fw.costs.motor_driver)
                .with_affinity(hce_cores)
                .with_offset(SimDuration::from_micros(200)),
            machine.root_cgroup(),
        );

        let params = *world.quad_params();
        let t0 = SimTime::ZERO;
        let mut safety_fc = FlightController::new(&params, ControlGains::safety());
        safety_fc.initialize_hover(cfg.hover, 0.0, t0);
        safety_fc.set_setpoint(Setpoint { position: cfg.hover, yaw: 0.0 });

        let mut monitor = SecurityMonitor::new(&fw.thresholds);
        for r in extra_rules {
            monitor.add_rule(r);
        }

        let mut ids = TaskIds {
            sensor_driver,
            motor_driver,
            monitor: None,
            rx: None,
            safety: None,
            hce_stack: None,
            cc_pipeline: None,
            cc_rate: None,
        };

        let mut cce_fc = None;
        let mut hce_fc = None;
        let mut cce_motor_tx = None;
        let mut cce_sensor_rx = None;

        match cfg.pilot {
            Pilot::CceSimplex => {
                ids.safety = Some(machine.spawn(
                    TaskSpec::periodic_fifo("safety-controller", fw.priorities.safety, motor_period, fw.costs.safety_controller)
                        .with_affinity(hce_cores)
                        .with_offset(SimDuration::from_micros(400)),
                    machine.root_cgroup(),
                ));
                if fw.protections.monitor {
                    ids.monitor = Some(machine.spawn(
                        TaskSpec::periodic_fifo("security-monitor", fw.priorities.monitor, SimDuration::from_hz(100.0), fw.costs.monitor)
                            .with_affinity(hce_cores),
                        machine.root_cgroup(),
                    ));
                }
                ids.rx = Some(machine.spawn(
                    TaskSpec::sporadic_fifo("rx-thread", fw.priorities.rx_thread, fw.costs.rx_per_packet)
                        .with_affinity(hce_cores),
                    machine.root_cgroup(),
                ));

                // CCE: complex controller pipeline + rate loop.
                let mut fc = FlightController::new(&params, ControlGains::complex());
                fc.initialize_hover(cfg.hover, 0.0, t0);
                fc.set_setpoint(Setpoint { position: cfg.hover, yaw: 0.0 });
                cce_fc = Some(fc);
                ids.cc_pipeline = Some(container.run_task(
                    &mut machine,
                    TaskSpec::periodic_fair("cce-pipeline", sensor_period, fw.costs.cce_pipeline),
                ));
                ids.cc_rate = Some(container.run_task(
                    &mut machine,
                    TaskSpec::periodic_fair("cce-rate-loop", motor_period, fw.costs.cce_rate_loop)
                        .with_offset(SimDuration::from_micros(800)),
                ));
                cce_sensor_rx = Some(
                    net.bind(container.netns(), SENSOR_PORT)
                        .expect("sensor port free in container"),
                );
                cce_motor_tx =
                    Some(net.bind(container.netns(), 9002).expect("cce tx port free"));
            }
            Pilot::HceDirect => {
                // The trusted controller flies directly on the HCE.
                let mut fc = FlightController::new(&params, ControlGains::complex());
                fc.initialize_hover(cfg.hover, 0.0, t0);
                fc.set_setpoint(Setpoint { position: cfg.hover, yaw: 0.0 });
                hce_fc = Some(fc);
                ids.hce_stack = Some(machine.spawn(
                    TaskSpec::periodic_fifo("hce-flight-stack", 50, sensor_period, fw.costs.hce_flight_stack)
                        .with_affinity(hce_cores)
                        .with_offset(SimDuration::from_micros(600)),
                    machine.root_cgroup(),
                ));
            }
        }

        let hover_pwm = cmd_to_pwm(params.hover_command());

        Runtime {
            cfg,
            world,
            machine,
            net,
            container,
            host_ns,
            hce_motor_rx,
            hce_sensor_tx,
            cce_motor_tx,
            cce_sensor_rx,
            hce_sender: Sender::new(1, 1),
            cce_sender: Sender::new(2, 1),
            hce_parser: Parser::new(),
            cce_parser: Parser::new(),
            safety_fc,
            cce_fc,
            hce_fc,
            monitor,
            cce_cmd_pwm: [hover_pwm; 4],
            last_valid_output: None,
            motor_seq: 0,
            sensor_jobs: 0,
            cce_rate_jobs: 0,
            heartbeats_received: 0,
            last_heartbeat: None,
            imu_counter: StreamCounter::default(),
            baro_counter: StreamCounter::default(),
            gps_counter: StreamCounter::default(),
            rc_counter: StreamCounter::default(),
            motor_counter: StreamCounter::default(),
            attack_launched: false,
            flood: None,
            spoof: None,
            ids,
            recorder: FlightRecorder::new(),
        }
    }

    fn run(mut self) -> ScenarioResult {
        let quantum = self.machine.config().quantum;
        let end = SimTime::ZERO + self.cfg.duration;
        let record_period = SimDuration::from_hz(self.cfg.record_hz);
        let mut next_record = SimTime::ZERO;
        let mut events: Vec<SchedEvent> = Vec::new();
        let mut crash_deadline: Option<SimTime> = None;
        let mut crash_marked = false;

        while self.machine.now() < end {
            events.clear();
            self.machine.step(&mut events);
            let now = self.machine.now();
            self.world.advance_to(now);

            for ev in events.drain(..) {
                if let SchedEvent::JobCompleted { task, .. } = ev {
                    self.dispatch(task, now);
                }
            }

            if let Some(flood) = &mut self.flood {
                flood.step(&mut self.net, now, quantum);
            }
            if let Some(spoof) = &mut self.spoof {
                spoof.step(&mut self.net, now, quantum);
            }
            let deliveries = self.net.step(now);
            for d in deliveries {
                if d.socket == self.hce_motor_rx {
                    if let Some(rx) = self.ids.rx {
                        if self.machine.is_alive(rx) {
                            self.machine.inject_job(rx, d.count);
                        }
                    }
                }
            }

            self.maybe_launch_attack(now);

            if now >= next_record {
                self.record(now);
                next_record = now + record_period;
            }

            if let Some(crash) = self.world.crash() {
                if !crash_marked {
                    self.recorder
                        .mark(crash.time, format!("crash: {}", crash.kind));
                    crash_marked = true;
                    crash_deadline = Some(now + SimDuration::from_secs(1));
                }
            }
            if crash_deadline.is_some_and(|d| now >= d) {
                break;
            }
        }

        self.finish()
    }

    fn dispatch(&mut self, task: TaskId, now: SimTime) {
        let ids = &self.ids;
        if task == ids.sensor_driver {
            self.on_sensor_driver(now);
        } else if task == ids.motor_driver {
            self.on_motor_driver(now);
        } else if Some(task) == ids.monitor {
            self.on_monitor(now);
        } else if Some(task) == ids.rx {
            self.on_rx(now);
        } else if Some(task) == ids.safety {
            self.on_safety(now);
        } else if Some(task) == ids.hce_stack {
            self.on_hce_stack(now);
        } else if Some(task) == ids.cc_pipeline {
            self.on_cce_pipeline(now);
        } else if Some(task) == ids.cc_rate {
            self.on_cce_rate(now);
        }
    }

    /// Sensor driver job: sample the devices, update the HCE view, feed the
    /// local controllers, and forward the Table I streams to the CCE.
    fn on_sensor_driver(&mut self, now: SimTime) {
        self.sensor_jobs += 1;
        let sensor_addr = Addr { ns: self.host_ns, port: SENSOR_PORT };

        let imu = self.world.sample_imu();
        self.safety_fc.on_imu(&imu);
        if let Some(fc) = &mut self.hce_fc {
            fc.on_imu(&imu);
        }
        let wire = self.hce_sender.encode(Message::Imu(imu_to_msg(&imu)));
        self.imu_counter.record(wire.len());
        let _ = self.net.send(self.hce_sensor_tx, sensor_addr, wire, now);

        // Barometer + RC at 50 Hz (every 5th 250 Hz job).
        if self.sensor_jobs.is_multiple_of(5) {
            let baro = self.world.sample_baro();
            self.safety_fc.on_baro(&baro);
            if let Some(fc) = &mut self.hce_fc {
                fc.on_baro(&baro);
            }
            let wire = self.hce_sender.encode(Message::Baro(baro_to_msg(&baro)));
            self.baro_counter.record(wire.len());
            let _ = self.net.send(self.hce_sensor_tx, sensor_addr, wire, now);

            let rc = neutral_rc(now);
            let wire = self.hce_sender.encode(Message::Rc(rc));
            self.rc_counter.record(wire.len());
            let _ = self.net.send(self.hce_sensor_tx, sensor_addr, wire, now);
        }

        // Positioning at 10 Hz (every 25th job).
        if self.sensor_jobs.is_multiple_of(25) {
            let fix = self.world.sample_position();
            self.safety_fc.on_position_fix(&fix);
            if let Some(fc) = &mut self.hce_fc {
                fc.on_position_fix(&fix);
            }
            let wire = self.hce_sender.encode(Message::Gps(fix_to_msg(&fix)));
            self.gps_counter.record(wire.len());
            let _ = self.net.send(self.hce_sensor_tx, sensor_addr, wire, now);
        }
    }

    /// Motor driver job: apply the selected controller's output.
    fn on_motor_driver(&mut self, _now: SimTime) {
        let pwm = match self.cfg.pilot {
            Pilot::HceDirect => self
                .hce_fc
                .as_ref()
                .map(|fc| fc.last_pwm())
                .unwrap_or([1000; 4]),
            Pilot::CceSimplex => match self.monitor.source() {
                OutputSource::Complex => self.cce_cmd_pwm,
                OutputSource::Safety => self.safety_fc.last_pwm(),
            },
        };
        self.world.set_motor_pwm(pwm);
    }

    /// Security monitor job: evaluate the rules, act on violations.
    fn on_monitor(&mut self, now: SimTime) {
        let ctx = MonitorContext {
            now,
            last_valid_output: self.last_valid_output,
            attitude_error: self.safety_fc.attitude_error(),
            source: self.monitor.source(),
        };
        if self.monitor.evaluate(&ctx) {
            // "the monitor kills the receiving thread on the HCE and
            // switches to use the output from the safety controller".
            if let Some(rx) = self.ids.rx {
                self.machine.kill(rx);
            }
            self.safety_fc.reset_transients();
            self.recorder.mark(now, "simplex switch to safety controller");
        }
    }

    /// Rx-thread job: process exactly one datagram from the motor port.
    fn on_rx(&mut self, now: SimTime) {
        if let Some(pkt) = self.net.recv(self.hce_motor_rx) {
            for frame in self.hce_parser.push(&pkt.payload) {
                match frame.message {
                    Message::Motor(m) if m.armed == 1 => {
                        self.cce_cmd_pwm = m.pwm;
                        self.last_valid_output = Some(now);
                    }
                    Message::Heartbeat(_) => {
                        self.heartbeats_received += 1;
                        self.last_heartbeat = Some(now);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Safety controller job (hot standby, 400 Hz).
    fn on_safety(&mut self, now: SimTime) {
        self.safety_fc.run_outer(now);
        let _ = self.safety_fc.run_rate_loop(now);
    }

    /// HCE trusted-controller job (memory-DoS experiments).
    fn on_hce_stack(&mut self, now: SimTime) {
        if let Some(fc) = &mut self.hce_fc {
            fc.run_outer(now);
            let _ = fc.run_rate_loop(now);
        }
    }

    /// CCE pipeline job: drain the sensor socket, feed the complex
    /// controller, run the outer loops.
    fn on_cce_pipeline(&mut self, now: SimTime) {
        let Some(rx) = self.cce_sensor_rx else { return };
        let Some(fc) = &mut self.cce_fc else { return };
        for pkt in self.net.recv_all(rx) {
            for frame in self.cce_parser.push(&pkt.payload) {
                match frame.message {
                    Message::Imu(m) => fc.on_imu(&msg_to_imu(&m)),
                    Message::Baro(m) => fc.on_baro(&msg_to_baro(&m)),
                    Message::Gps(m) => fc.on_position_fix(&msg_to_fix(&m)),
                    _ => {}
                }
            }
        }
        fc.run_outer(now);
    }

    /// CCE rate-loop job: compute and transmit the motor output, plus a
    /// liveness heartbeat once per second.
    fn on_cce_rate(&mut self, now: SimTime) {
        let Some(tx) = self.cce_motor_tx else { return };
        let Some(fc) = &mut self.cce_fc else { return };
        self.cce_rate_jobs += 1;
        if self.cce_rate_jobs.is_multiple_of(400) {
            let hb = Heartbeat {
                custom_mode: 0,
                vehicle_type: 2,  // MAV_TYPE_QUADROTOR
                autopilot: 12,    // MAV_AUTOPILOT_PX4
                base_mode: 0x80,  // armed
                system_status: 4, // active
                mavlink_version: 3,
            };
            let wire = self.cce_sender.encode(Message::Heartbeat(hb));
            let _ = self.net.send(
                tx,
                Addr { ns: self.host_ns, port: MOTOR_PORT },
                wire,
                now,
            );
        }
        let pwm = fc.run_rate_loop(now);
        self.motor_seq += 1;
        let msg = MotorOutput {
            time_usec: now.as_micros(),
            pwm,
            seq: self.motor_seq,
            armed: 1,
        };
        let wire = self.cce_sender.encode(Message::Motor(msg));
        self.motor_counter.record(wire.len());
        let _ = self.net.send(
            tx,
            Addr { ns: self.host_ns, port: MOTOR_PORT },
            wire,
            now,
        );
    }

    fn maybe_launch_attack(&mut self, now: SimTime) {
        if self.attack_launched {
            return;
        }
        let Some(onset) = self.cfg.attack.onset() else { return };
        if now < onset {
            return;
        }
        self.attack_launched = true;
        self.recorder.mark(now, "attack start");
        match self.cfg.attack {
            Attack::None => {}
            Attack::MemoryHog { hog, .. } => {
                hog.launch(&mut self.machine, &mut self.container);
            }
            Attack::KillComplex { .. } => {
                for t in [self.ids.cc_pipeline, self.ids.cc_rate].into_iter().flatten() {
                    self.machine.kill(t);
                }
            }
            Attack::UdpFlood { flood, .. } => {
                let driver = flood
                    .launch(
                        &mut self.machine,
                        &mut self.net,
                        &mut self.container,
                        self.host_ns,
                        40_000,
                    )
                    .expect("flood source port free");
                self.flood = Some(driver);
            }
            Attack::CpuHog { hog, .. } => {
                if self.cfg.framework.protections.cpu_isolation {
                    hog.launch(&mut self.machine, &mut self.container);
                } else {
                    hog.launch_unconfined(&mut self.machine);
                }
            }
            Attack::SpoofMotor { spoof, .. } => {
                let driver = spoof
                    .launch(
                        &mut self.machine,
                        &mut self.net,
                        &mut self.container,
                        self.host_ns,
                        41_000,
                    )
                    .expect("spoof source port free");
                self.spoof = Some(driver);
            }
        }
    }

    fn record(&mut self, now: SimTime) {
        let (estimated, att_err) = match self.cfg.pilot {
            Pilot::HceDirect => {
                let fc = self.hce_fc.as_ref().expect("hce pilot has a controller");
                (fc.position_estimate(), fc.attitude_error())
            }
            Pilot::CceSimplex => match self.monitor.source() {
                OutputSource::Complex => (
                    self.cce_fc
                        .as_ref()
                        .map(|fc| fc.position_estimate())
                        .unwrap_or(self.safety_fc.position_estimate()),
                    self.safety_fc.attitude_error(),
                ),
                OutputSource::Safety => (
                    self.safety_fc.position_estimate(),
                    self.safety_fc.attitude_error(),
                ),
            },
        };
        self.recorder.sample(
            now,
            self.cfg.hover,
            estimated,
            self.world.truth().position,
            att_err,
            self.monitor.source(),
        );
    }

    fn finish(self) -> ScenarioResult {
        let elapsed = self.machine.now().as_secs_f64();
        let fw = &self.cfg.framework;
        let streams = vec![
            StreamReport {
                name: "IMU",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.imu_hz,
                measured_hz: self.imu_counter.rate_hz(elapsed),
                frame_bytes: self.imu_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "Barometer",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.baro_hz,
                measured_hz: self.baro_counter.rate_hz(elapsed),
                frame_bytes: self.baro_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "GPS",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.gps_hz,
                measured_hz: self.gps_counter.rate_hz(elapsed),
                frame_bytes: self.gps_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "RC",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.rc_hz,
                measured_hz: self.rc_counter.rate_hz(elapsed),
                frame_bytes: self.rc_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "Motor Output",
                direction: "CCE → HCE",
                nominal_hz: fw.rates.motor_hz,
                measured_hz: self.motor_counter.rate_hz(elapsed),
                frame_bytes: self.motor_counter.mean_frame_size(),
                port: MOTOR_PORT,
            },
        ];

        let mut task_report = Vec::new();
        let all_ids = [
            Some(self.ids.sensor_driver),
            Some(self.ids.motor_driver),
            self.ids.monitor,
            self.ids.rx,
            self.ids.safety,
            self.ids.hce_stack,
            self.ids.cc_pipeline,
            self.ids.cc_rate,
        ];
        for id in all_ids.into_iter().flatten() {
            task_report.push((
                self.machine.task_name(id).to_string(),
                self.machine.task_stats(id),
            ));
        }

        ScenarioResult {
            crash: self.world.crash(),
            switch_time: self.monitor.switch_time(),
            monitor_events: self.monitor.events().to_vec(),
            attack_onset: self.cfg.attack.onset(),
            idle_rates: self.machine.idle_rates(),
            streams,
            hce_parser_stats: self.hce_parser.stats(),
            rx_socket_stats: self.net.socket_stats(self.hce_motor_rx),
            flood_sent: self.flood.as_ref().map(|f| f.sent()).unwrap_or(0),
            heartbeats_received: self.heartbeats_received,
            task_report,
            telemetry: self.recorder,
            config: self.cfg,
        }
    }
}
