//! Flight telemetry recording: the data behind the paper's figures.
//!
//! Figures 4–7 plot setpoint vs estimated X/Y/Z over a 30 s window. The
//! [`FlightRecorder`] captures those signals (plus ground truth, attitude
//! error and the active Simplex source) and renders the same CSV series the
//! bench harness writes to `results/`.

use sim_core::series::{SeriesBundle, TimeSeries};
use sim_core::time::SimTime;
use uav_dynamics::math::Vec3;

use crate::monitor::OutputSource;

/// A labelled instant (attack onset, Simplex switch, crash, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub label: String,
}

/// Per-flight signal recorder.
///
/// # Examples
///
/// ```
/// use containerdrone_core::telemetry::FlightRecorder;
/// use containerdrone_core::monitor::OutputSource;
/// use uav_dynamics::math::Vec3;
/// use sim_core::time::SimTime;
///
/// let mut rec = FlightRecorder::new();
/// rec.sample(SimTime::ZERO, Vec3::new(0.0, 0.6, -1.0), Vec3::ZERO,
///            Vec3::ZERO, 0.05, OutputSource::Complex);
/// assert_eq!(rec.series().rows(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    bundle: SeriesBundle,
    markers: Vec<Marker>,
}

const COLUMNS: [&str; 11] = [
    "x_sp",
    "y_sp",
    "z_sp",
    "x_est",
    "y_est",
    "z_est",
    "x_true",
    "y_true",
    "z_true",
    "att_err_deg",
    "source",
];

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FlightRecorder {
            bundle: SeriesBundle::new(&COLUMNS),
            markers: Vec::new(),
        }
    }

    /// Creates a recorder pre-sized for `rows` samples (duration × sample
    /// rate), so steady-state recording never allocates.
    pub fn with_capacity(rows: usize) -> Self {
        let mut rec = FlightRecorder::new();
        rec.bundle.reserve(rows);
        rec
    }

    /// Records one telemetry row.
    pub fn sample(
        &mut self,
        t: SimTime,
        setpoint: Vec3,
        estimated: Vec3,
        truth: Vec3,
        attitude_error: f64,
        source: OutputSource,
    ) {
        self.bundle.push_row(
            t,
            &[
                setpoint.x,
                setpoint.y,
                setpoint.z,
                estimated.x,
                estimated.y,
                estimated.z,
                truth.x,
                truth.y,
                truth.z,
                attitude_error.to_degrees(),
                match source {
                    OutputSource::Complex => 0.0,
                    OutputSource::Safety => 1.0,
                },
            ],
        );
    }

    /// Adds a labelled marker.
    pub fn mark(&mut self, time: SimTime, label: impl Into<String>) {
        self.markers.push(Marker {
            time,
            label: label.into(),
        });
    }

    /// The recorded markers.
    pub fn markers(&self) -> &[Marker] {
        &self.markers
    }

    /// The raw signal bundle.
    pub fn series(&self) -> &SeriesBundle {
        &self.bundle
    }

    /// A named signal, if recorded.
    pub fn signal(&self, name: &str) -> Option<&TimeSeries> {
        self.bundle.series(name)
    }

    /// Largest `|truth − setpoint|` on an axis (`"x"`, `"y"`, `"z"`) over
    /// `[from, to)`. Panics on an unknown axis name.
    pub fn max_tracking_error(&self, axis: &str, from: SimTime, to: SimTime) -> f64 {
        let sp = self
            .signal(&format!("{axis}_sp"))
            .expect("axis must be x, y or z");
        let tr = self
            .signal(&format!("{axis}_true"))
            .expect("axis must be x, y or z");
        sp.iter()
            .zip(tr.values())
            .filter(|((t, _), _)| *t >= from && *t < to)
            .map(|((_, s), v)| (v - s).abs())
            .fold(0.0, f64::max)
    }

    /// CSV of all signals plus a trailing `# marker` comment block.
    pub fn to_csv(&self) -> String {
        let mut out = self.bundle.to_csv();
        for m in &self.markers {
            out.push_str(&format!("# {:.3}s {}\n", m.time.as_secs_f64(), m.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn recorder_with_ramp() -> FlightRecorder {
        let mut rec = FlightRecorder::new();
        let mut t = SimTime::ZERO;
        for i in 0..100 {
            let drift = i as f64 * 0.01;
            rec.sample(
                t,
                Vec3::new(0.0, 0.6, -1.0),
                Vec3::new(drift, 0.6, -1.0),
                Vec3::new(drift, 0.6, -1.0),
                0.02,
                OutputSource::Complex,
            );
            t += SimDuration::from_millis(20);
        }
        rec
    }

    #[test]
    fn tracking_error_is_measured_on_truth() {
        let rec = recorder_with_ramp();
        let err = rec.max_tracking_error("x", SimTime::ZERO, SimTime::from_secs(10));
        assert!((err - 0.99).abs() < 1e-9);
        let erry = rec.max_tracking_error("y", SimTime::ZERO, SimTime::from_secs(10));
        assert!(erry < 1e-9);
    }

    #[test]
    fn csv_contains_markers() {
        let mut rec = recorder_with_ramp();
        rec.mark(SimTime::from_secs(1), "attack");
        let csv = rec.to_csv();
        assert!(csv.starts_with("time_s,x_sp"));
        assert!(csv.contains("# 1.000s attack"));
    }

    #[test]
    #[should_panic(expected = "axis must be")]
    fn unknown_axis_panics() {
        let rec = recorder_with_ramp();
        let _ = rec.max_tracking_error("w", SimTime::ZERO, SimTime::from_secs(1));
    }
}
