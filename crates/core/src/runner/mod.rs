//! The co-simulation runner: machine + network + physics + controllers.
//!
//! [`Scenario::run`] assembles the full ContainerDrone system of Figure 2 —
//! HCE tasks on the host (drivers, rx thread, security monitor, safety
//! controller), CCE tasks in the container (complex-controller pipeline and
//! rate loop), the bridged UDP channel of Table I — and advances everything
//! in lock-step at the scheduler quantum. Job completions trigger the
//! corresponding framework actions, so every scheduling delay, memory
//! stall, dropped packet and parser resync propagates into flight quality
//! exactly the way it does on the paper's testbed.
//!
//! The runner is organised by subsystem:
//!
//! | Module | Responsibility |
//! |--------|----------------|
//! | [`assembly`] | Building the machine, network, container and task set |
//! | [`hce`] | Host-side job handlers (drivers, rx, monitor, safety) |
//! | [`cce`] | Container-side job handlers (pipeline, rate loop) |
//! | [`attack`] | The attack-timeline cursor and armed-driver loop |
//! | [`report`] | Telemetry sampling and the end-of-run [`ScenarioResult`] |
//!
//! Attacks are *data* ([`attacks::AttackScript`]): the main loop arms
//! each scheduled event at its onset and thereafter steps every armed
//! [`attacks::AttackDriver`] generically, so a run may contain any number
//! of concurrent and sequenced attacks.
//!
//! # One vehicle vs many
//!
//! Per-vehicle state (machine, container, controllers, monitor, recorder)
//! lives in a [`VehicleInstance`]; the virtual [`Network`] is **not** part
//! of it. A single-vehicle [`RunningScenario`] owns a private network and
//! one instance; the `cd-fleet` crate instead builds many instances
//! against one shared "airspace" network and interleaves them on a common
//! quantum clock, which is what makes shared-airspace fleet co-simulation
//! possible without duplicating any of the per-vehicle logic.

pub mod assembly;
pub mod attack;
pub mod cce;
pub mod hce;
pub mod report;

use attacks::driver::AttackDriver;
use attacks::script::ScriptEntry;
use autopilot::controller::FlightController;
use cd_obs::{emit, ObsPort, TraceKind};
use container_rt::container::Container;
use mavlink_lite::frame::{Frame, Sender};
use mavlink_lite::parser::Parser;
use rt_sched::machine::Machine;
use rt_sched::task::SchedEvent;
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::world::World;
use virt_net::net::{Addr, Delivery, Network, NsId, SocketId};

use crate::feeder::StreamCounter;
use crate::monitor::{SecurityMonitor, SecurityRule};
use crate::scenario::ScenarioConfig;
use crate::telemetry::FlightRecorder;

pub use assembly::TaskIds;
pub use report::{ScenarioResult, StreamReport};

// `SpanEnd` is defined next to `VehicleInstance` below; both are part of
// the fleet-executor API surface.

/// An executable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// Wraps a configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario { config }
    }

    /// Runs the scenario to completion (or 1 s past a crash) and returns
    /// the collected results.
    pub fn run(self) -> ScenarioResult {
        self.start().run_to_end()
    }

    /// Runs with additional custom security rules installed in the monitor
    /// (see the `custom_rule` example).
    pub fn run_with_rules(self, rules: Vec<Box<dyn SecurityRule>>) -> ScenarioResult {
        self.start_with_rules(rules).run_to_end()
    }

    /// [`Scenario::run`] on the quantum-stepped reference executor
    /// (`--no-leap`): byte-identical result, no time-leap fast path. Kept
    /// as the safety net the leap-equivalence tests diff against.
    pub fn run_stepped(self) -> ScenarioResult {
        self.start().run_to_end_stepped()
    }

    /// Builds the full system and returns it paused at t = 0, ready to be
    /// advanced incrementally (see [`RunningScenario`]).
    pub fn start(self) -> RunningScenario {
        self.start_with_rules(Vec::new())
    }

    /// [`Scenario::start`] with additional custom security rules.
    pub fn start_with_rules(self, rules: Vec<Box<dyn SecurityRule>>) -> RunningScenario {
        let mut net = Network::new();
        let vehicle = VehicleInstance::build(self.config, rules, &mut net);
        RunningScenario { net, vehicle }
    }
}

/// A scenario mid-flight: the incremental counterpart to
/// [`Scenario::run`].
///
/// Useful for stepping a simulation from a debugger, interleaving it with
/// external stimuli, or measuring a steady-state window in isolation (the
/// allocation-regression test does exactly that).
///
/// # Examples
///
/// ```
/// use containerdrone_core::prelude::*;
/// use containerdrone_core::runner::Scenario;
/// use sim_core::time::{SimDuration, SimTime};
///
/// let cfg = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
/// let mut run = Scenario::new(cfg).start();
/// run.advance_to(SimTime::from_secs(1));
/// assert!(run.now() >= SimTime::from_secs(1));
/// let result = run.finish();
/// assert!(!result.crashed());
/// ```
pub struct RunningScenario {
    net: Network,
    vehicle: VehicleInstance,
}

impl RunningScenario {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.vehicle.now()
    }

    /// Advances one scheduler quantum: machine, physics, job dispatch,
    /// armed attacks, network, telemetry. Returns `false` once the flight
    /// is over (duration reached, or 1 s past a crash) without advancing.
    pub fn step(&mut self) -> bool {
        if !self.vehicle.advance(&mut self.net) {
            return false;
        }
        let t0 = crate::phase::now();
        let deliveries = self.net.step(self.vehicle.now());
        for &d in deliveries {
            self.vehicle.on_delivery(d);
        }
        self.vehicle
            .phase_add(crate::phase::NET, crate::phase::now() - t0);
        self.vehicle.post_step();
        true
    }

    /// Advances until `target` (or the end of the flight, whichever comes
    /// first).
    pub fn advance_to(&mut self, target: SimTime) {
        while self.vehicle.now() < target && self.step() {}
    }

    /// [`RunningScenario::advance_to`] on the time-leap executor:
    /// span-by-span instead of quantum-by-quantum, byte-identical state
    /// at every quantum boundary. Used to carve steady-state measurement
    /// windows out of a leap-executed run (the allocation-regression
    /// gate does).
    pub fn advance_to_leap(&mut self, target: SimTime) {
        let quantum = self.vehicle.rt.machine.config().quantum;
        let hard = self
            .vehicle
            .end_boundary()
            .min(VehicleInstance::quantum_end_at_or_after(target, quantum));
        while self.vehicle.now() < hard && self.vehicle.advance_span(&mut self.net, hard) {}
    }

    /// Runs the remainder of the flight on the time-leap executor and
    /// tears down into the result. Byte-identical to
    /// [`RunningScenario::run_to_end_stepped`] (the equivalence tests and
    /// figure goldens pin this), just faster across event-free spans.
    pub fn run_to_end(mut self) -> ScenarioResult {
        let end = self.vehicle.end_boundary();
        while self.vehicle.advance_span(&mut self.net, end) {}
        self.finish()
    }

    /// Runs the remainder of the flight on the quantum-stepped reference
    /// executor (the `--no-leap` path): every quantum runs all four
    /// phases, no closed-form spans.
    pub fn run_to_end_stepped(mut self) -> ScenarioResult {
        while self.step() {}
        self.finish()
    }

    /// Tears the run down into a [`ScenarioResult`] at the current time.
    pub fn finish(self) -> ScenarioResult {
        self.vehicle.finish(&self.net)
    }

    /// The vehicle instance — the inspection surface for executor
    /// counters and trace-port attachment on a single-vehicle run.
    pub fn vehicle(&self) -> &VehicleInstance {
        &self.vehicle
    }

    /// Mutable access to the vehicle instance (attach/drain its
    /// [`ObsPort`] between stepping windows).
    pub fn vehicle_mut(&mut self) -> &mut VehicleInstance {
        &mut self.vehicle
    }

    /// Selects the network delivery path: `true` (the default) settles
    /// flood spans in closed form, `false` (`--no-bulk`) replays them
    /// packet-by-packet. Byte-identical results either way — the bulk
    /// equivalence suites pin it; bulk is just O(1) per span.
    pub fn set_bulk(&mut self, on: bool) {
        self.net.set_bulk(on);
    }
}

/// One vehicle's complete simulation state — everything *except* the
/// network it flies against.
///
/// [`RunningScenario`] wraps exactly one instance over a private network;
/// the `cd-fleet` crate steps many instances against one shared airspace.
/// The stepping protocol per scheduler quantum is:
///
/// 1. [`VehicleInstance::advance`] — machine, physics, job dispatch and
///    armed attacks (traffic is *offered* to the network here);
/// 2. one [`Network::step`] on whoever owns the network;
/// 3. [`VehicleInstance::on_delivery`] for each delivery to a socket this
///    vehicle owns;
/// 4. [`VehicleInstance::post_step`] — telemetry sampling and crash
///    bookkeeping.
///
/// With a single vehicle this is byte-for-byte the classic
/// [`RunningScenario::step`]; the fleet equivalence test pins that.
pub struct VehicleInstance {
    rt: Runtime,
    end: SimTime,
    record_period: SimDuration,
    next_record: SimTime,
    events: Vec<SchedEvent>,
    crash_deadline: Option<SimTime>,
    crash_marked: bool,
    finished: bool,
}

impl VehicleInstance {
    /// Builds the full per-vehicle system (machine, container, task set,
    /// controllers) inside `net`: namespaces, links and sockets are
    /// created in the shared network, everything else is private.
    pub fn build(
        config: ScenarioConfig,
        rules: Vec<Box<dyn SecurityRule>>,
        net: &mut Network,
    ) -> Self {
        let end = SimTime::ZERO + config.duration;
        let record_period = SimDuration::from_hz(config.record_hz);
        let rt = Runtime::build(config, rules, net);
        VehicleInstance {
            rt,
            end,
            record_period,
            next_record: SimTime::ZERO,
            events: Vec::new(),
            crash_deadline: None,
            crash_marked: false,
            finished: false,
        }
    }

    /// Current simulation time of this vehicle's machine.
    pub fn now(&self) -> SimTime {
        self.rt.machine.now()
    }

    /// `true` once the flight is over (duration reached, or 1 s past a
    /// crash).
    pub fn done(&self) -> bool {
        self.finished || self.rt.machine.now() >= self.end
    }

    /// `true` if the vehicle has crashed.
    pub fn crashed(&self) -> bool {
        self.rt.world.crash().is_some()
    }

    /// Ground-truth position (NED, metres) — what a telemetry downlink
    /// reports to a ground station.
    pub fn position(&self) -> [f64; 3] {
        let p = self.rt.world.truth().position;
        [p.x, p.y, p.z]
    }

    /// The namespace of this vehicle's host network stack.
    pub fn host_ns(&self) -> NsId {
        self.rt.host_ns
    }

    /// The HCE motor-port socket — deliveries to it must be routed back
    /// via [`VehicleInstance::on_delivery`].
    pub fn motor_rx(&self) -> SocketId {
        self.rt.hce_motor_rx
    }

    /// Phase 1 of a quantum: machine, physics, completed-job dispatch and
    /// armed attacks. Returns `false` once the flight is over, without
    /// advancing. The caller must follow up with one [`Network::step`],
    /// route the deliveries, and call [`VehicleInstance::post_step`].
    pub fn advance(&mut self, net: &mut Network) -> bool {
        if self.done() {
            return false;
        }
        let quantum = self.rt.machine.config().quantum;
        self.events.clear();
        let t0 = crate::phase::now();
        self.rt.machine.step(&mut self.events);
        self.rt.steps += 1;
        let now = self.rt.machine.now();
        let t1 = crate::phase::now();
        self.rt.world.advance_to(now);
        let t2 = crate::phase::now();
        self.rt.phase_ns[crate::phase::SCHED] += t1 - t0;
        self.rt.phase_ns[crate::phase::PHYSICS] += t2 - t1;

        self.rt.trace_skips(&self.events, now);
        for i in 0..self.events.len() {
            if let SchedEvent::JobCompleted { task, .. } = self.events[i] {
                self.rt.dispatch(task, now, net);
            }
        }

        self.rt.step_attacks(now, quantum, net);
        true
    }

    /// Phase 3 of a quantum: reacts to datagrams the network delivered to
    /// one of this vehicle's sockets (motor-port traffic wakes the rx
    /// thread). Deliveries to sockets this vehicle does not own are
    /// ignored.
    pub fn on_delivery(&mut self, d: Delivery) {
        if d.socket == self.rt.hce_motor_rx {
            if let Some(rx) = self.rt.ids.rx {
                if self.rt.machine.is_alive(rx) {
                    self.rt.machine.inject_job(rx, d.count);
                }
            }
        }
    }

    /// Phase 4 of a quantum: telemetry sampling and crash bookkeeping.
    pub fn post_step(&mut self) {
        let now = self.rt.machine.now();
        if now >= self.next_record {
            self.rt.record(now);
            self.next_record = now + self.record_period;
        }

        if let Some(crash) = self.rt.world.crash() {
            if !self.crash_marked {
                self.rt
                    .recorder
                    .mark(crash.time, format!("crash: {}", crash.kind));
                emit!(
                    self.rt.obs,
                    crash.time,
                    TraceKind::Crash,
                    crash_label(crash.kind),
                    0,
                    0
                );
                self.crash_marked = true;
                // Anchored to the crash's own (substep-exact) time rather
                // than the detecting quantum so the post-crash window is
                // identical whether physics caught up every quantum or in
                // one leap. Stepped detection happens within the quantum
                // of the crash, whose end is the crash time itself (both
                // sit on the 50 µs grid), so this changes nothing there.
                self.crash_deadline = Some(crash.time + SimDuration::from_secs(1));
            }
        }
        if self.crash_deadline.is_some_and(|d| now >= d) {
            self.finished = true;
        }
    }

    /// Tears the vehicle down into a [`ScenarioResult`], reading its
    /// socket statistics from `net`.
    pub fn finish(self, net: &Network) -> ScenarioResult {
        self.rt.finish(net)
    }

    /// The first quantum boundary at/after the flight end — the natural
    /// `hard_target` for [`VehicleInstance::advance_span`] when no fleet
    /// poll boundary applies sooner.
    pub fn end_boundary(&self) -> SimTime {
        Self::quantum_end_at_or_after(self.end, self.rt.machine.config().quantum)
    }

    /// The first quantum boundary at or after `t` — where an end-of-quantum
    /// observer (network step, attack cursor, telemetry) first sees an
    /// event at time `t`.
    fn quantum_end_at_or_after(t: SimTime, quantum: SimDuration) -> SimTime {
        let qn = quantum.as_nanos();
        SimTime::from_nanos(t.as_nanos().div_ceil(qn) * qn)
    }

    /// The physical world this vehicle flies in. Fleet batch executors
    /// read it to gather SoA physics lanes
    /// ([`uav_dynamics::batch::WorldBatch::enroll`]).
    pub fn world(&self) -> &World {
        &self.rt.world
    }

    /// Mutable access to the physical world, for scattering a
    /// batch-advanced lane back before observation and
    /// [`VehicleInstance::post_step`].
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.rt.world
    }

    /// One time-leap span: advances through one event-free stretch —
    /// possibly in closed form — then runs the regular quantum tail
    /// (physics catch-up, job dispatch, armed attacks, network delivery)
    /// once at the span's end.
    ///
    /// `hard_target` must be quantum-aligned and ahead of the current
    /// time; the vehicle never advances past it (fleet executors pass
    /// their next poll boundary, the single-vehicle runner passes
    /// [`VehicleInstance::end_boundary`]).
    ///
    /// Telemetry/crash bookkeeping ([`VehicleInstance::post_step`]) runs
    /// here only when the span ends *short* of `hard_target`; at the
    /// target the caller observes the vehicle first (fleet snapshots are
    /// taken pre-`post_step`, exactly like the stepped executor) and then
    /// calls `post_step` itself. With `defer_physics` the at-target,
    /// event-free case additionally skips the physics catch-up and
    /// returns [`SpanEnd::AtTargetDeferred`]: the caller owns advancing
    /// the world to [`VehicleInstance::now`] (e.g. via a SoA
    /// [`uav_dynamics::batch::WorldBatch`]) before observing. Deferral is
    /// sound because nothing in the tail below the physics call reads the
    /// world: job dispatch is skipped (no events), attack arming and
    /// network stepping never consult physics.
    ///
    /// # Equivalence
    ///
    /// Results are byte-identical to repeated [`RunningScenario::step`]
    /// because a span only ever skips a subsystem's per-quantum call when
    /// that call is provably a no-op:
    ///
    /// - the span ends no later than the first quantum boundary at/after
    ///   the earliest pending network arrival, script onset, telemetry
    ///   record and crash deadline, so the skipped `Network::step`s
    ///   deliver nothing and the skipped attack-cursor checks and
    ///   `post_step`s fire nothing;
    /// - the machine's own [`Machine::leap_to`] never crosses a task
    ///   release, job completion, slice expiry or MemGuard boundary it
    ///   cannot reproduce in closed form;
    /// - physics integrates on a fixed 500 µs grid, so one catch-up
    ///   [`World::advance_to`] at the span end performs exactly the
    ///   substeps the per-quantum calls would have;
    /// - while any armed attack emits per-quantum traffic
    ///   ([`AttackDriver::quantum_active`]), the span degenerates to
    ///   single plain steps — *unless* the flood-span fast path below
    ///   proves batch emission exact.
    ///
    /// # Flood spans
    ///
    /// A steady flood is per-quantum traffic, which historically forced
    /// one plain step per quantum for the whole attack window. The span
    /// leap stays exact under a flood when every link in this chain is
    /// provable ([`VehicleInstance::flood_span_target`]):
    ///
    /// - exactly one armed driver has per-quantum work, and it can replay
    ///   its skipped emissions post-hoc at their historical times
    ///   ([`AttackDriver::span_emit`]) — no dispatch runs mid-span, so
    ///   nothing else enqueues on the flooded direction in between and
    ///   FIFO order is preserved;
    /// - the flooded destination is this vehicle's motor port and the rx
    ///   thread is dead (the paper's post-switch state), so deferred
    ///   deliveries wake nothing and nobody reads the socket mid-span:
    ///   admissions happen at packet arrival times either way;
    /// - every arrival *not* aimed at the flooded port still clamps the
    ///   span ([`Network::next_delivery_time_excluding`]);
    /// - the link queue has headroom for the whole span's offered load
    ///   ([`AttackDriver::span_ready`]), so deferring the queue drain to
    ///   the span-end network step cannot surface a capacity boundary
    ///   the per-quantum schedule would not have hit.
    fn span_once(
        &mut self,
        net: &mut Network,
        hard_target: SimTime,
        defer_physics: bool,
    ) -> SpanEnd {
        if self.done() {
            return SpanEnd::Done;
        }
        let quantum = self.rt.machine.config().quantum;
        let now = self.rt.machine.now();

        self.events.clear();
        let span_steps = self.rt.steps;
        let span_leaped = self.rt.quanta_leaped;
        let sched_t0 = crate::phase::now();
        let mut flood_span: Option<usize> = None;
        if self.rt.armed.iter().any(|d| d.quantum_active()) {
            if let Some((idx, target)) = self.flood_span_target(net, hard_target) {
                flood_span = Some(idx);
                self.leap_toward(target);
            } else {
                // A live emitter without a provable span: one plain
                // quantum.
                self.rt.machine.step(&mut self.events);
                self.rt.steps += 1;
            }
        } else {
            let mut target = self.span_target_base(hard_target);
            if let Some(arrival) = net.next_delivery_time() {
                target = target.min(Self::quantum_end_at_or_after(arrival, quantum));
            }
            // Within one quantum of the nearest event this degenerates to
            // exactly one plain step.
            let target = target.max(now + quantum);
            self.leap_toward(target);
        }
        self.rt.phase_ns[crate::phase::SCHED] += crate::phase::now() - sched_t0;

        let span_start = now;
        let now = self.rt.machine.now();
        if let Some(idx) = flood_span {
            // Replay the skipped per-quantum emissions at their
            // historical times, before the tail's dispatch can enqueue
            // anything behind them.
            self.rt.armed[idx].span_emit(net, span_start, now, quantum);
        }
        if self.rt.obs.enabled() {
            let leaped = self.rt.quanta_leaped - span_leaped;
            if leaped > 0 {
                // Label = why the span could go no further (the machine's
                // stop reason, or a scheduling event that needs dispatch);
                // a = quanta leaped, b = quanta stepped plainly.
                let label = if self.events.is_empty() {
                    self.rt.machine.obs().last_leap_stop
                } else {
                    "event"
                };
                let stepped = (self.rt.steps - span_steps) - leaped;
                self.rt
                    .obs
                    .record(now, TraceKind::LeapSpan, label, leaped, stepped);
            }
        }
        let at_target = now >= hard_target;
        let defer = defer_physics && at_target && self.events.is_empty();
        if !defer {
            let t0 = crate::phase::now();
            self.rt.world.advance_to(now);
            self.rt.phase_ns[crate::phase::PHYSICS] += crate::phase::now() - t0;
        }
        self.rt.trace_skips(&self.events, now);
        for i in 0..self.events.len() {
            if let SchedEvent::JobCompleted { task, .. } = self.events[i] {
                self.rt.dispatch(task, now, net);
            }
        }
        self.rt.step_attacks(now, quantum, net);

        let t0 = crate::phase::now();
        let deliveries = net.step(now);
        for &d in deliveries {
            self.on_delivery(d);
        }
        self.rt.phase_ns[crate::phase::NET] += crate::phase::now() - t0;
        if at_target {
            if defer {
                SpanEnd::AtTargetDeferred
            } else {
                SpanEnd::AtTarget
            }
        } else {
            self.post_step();
            SpanEnd::Short
        }
    }

    /// The span-target clamps shared by every leap flavor: hard target,
    /// flight end, next telemetry record, crash deadline and the next
    /// attack-script onset, each promoted to the quantum boundary where
    /// an end-of-quantum observer first sees it.
    fn span_target_base(&self, hard_target: SimTime) -> SimTime {
        let quantum = self.rt.machine.config().quantum;
        let mut target = hard_target.min(Self::quantum_end_at_or_after(self.end, quantum));
        target = target.min(Self::quantum_end_at_or_after(self.next_record, quantum));
        if let Some(d) = self.crash_deadline {
            target = target.min(Self::quantum_end_at_or_after(d, quantum));
        }
        if let Some(entry) = self.rt.script.get(self.rt.script_cursor) {
            target = target.min(Self::quantum_end_at_or_after(entry.at, quantum));
        }
        target
    }

    /// The leap loop: closed-form machine leaps toward `target`,
    /// interleaved with plain steps wherever the machine cannot leap,
    /// flushing as soon as a scheduling event needs its end-of-quantum
    /// dispatch.
    fn leap_toward(&mut self, target: SimTime) {
        let quantum = self.rt.machine.config().quantum;
        loop {
            let leaped = self.rt.machine.leap_to(target);
            self.rt.steps += leaped;
            self.rt.quanta_leaped += leaped;
            if self.rt.machine.now() + quantum > target {
                break;
            }
            self.rt.machine.step(&mut self.events);
            self.rt.steps += 1;
            if !self.events.is_empty() {
                // A scheduling event needs its end-of-quantum dispatch;
                // flush here and let the next span resume.
                break;
            }
        }
    }

    /// The flood-span precondition chain (see the *Flood spans* section
    /// of [`VehicleInstance::span_once`]): returns the index of the one
    /// span-capable live emitter and the proven leap target, or `None`
    /// when per-quantum stepping is the only exact schedule.
    fn flood_span_target(&self, net: &Network, hard_target: SimTime) -> Option<(usize, SimTime)> {
        let quantum = self.rt.machine.config().quantum;
        let now = self.rt.machine.now();
        // Exactly one driver with per-quantum work, and it is
        // span-capable.
        let mut live = self
            .rt
            .armed
            .iter()
            .enumerate()
            .filter(|(_, d)| d.quantum_active());
        let (idx, driver) = live.next()?;
        if live.next().is_some() {
            return None;
        }
        let dst = driver.span_dst()?;
        // Deliveries to the flooded port must be inert: the motor socket
        // is the only one whose deliveries wake a task (the rx thread),
        // and every other socket is read by polling handlers whose
        // mid-span reads would observe the deferred deliveries. So the
        // span only engages against the motor port with the rx thread
        // dead — the paper's post-switch state, which is exactly when
        // the flood window dominates the run.
        let motor = Addr {
            ns: self.rt.host_ns,
            port: crate::config::MOTOR_PORT,
        };
        if dst != motor {
            return None;
        }
        if self
            .rt
            .ids
            .rx
            .is_some_and(|rx| self.rt.machine.is_alive(rx))
        {
            return None;
        }
        let mut target = self.span_target_base(hard_target);
        if let Some(arrival) = net.next_delivery_time_excluding(dst) {
            target = target.min(Self::quantum_end_at_or_after(arrival, quantum));
        }
        if target <= now + quantum {
            // Degenerate span: a plain step costs less than the replay.
            return None;
        }
        if !driver.span_ready(net, now, target, quantum) {
            return None;
        }
        Some((idx, target))
    }

    /// The time-leap fast path (see [`VehicleInstance::span_once`] for
    /// the equivalence argument), with the observation hand-off folded
    /// away: runs the full quantum tail including
    /// [`VehicleInstance::post_step`] and returns `false` once the flight
    /// is over, without advancing. The single-vehicle drop-in for the
    /// [`RunningScenario::step`] loop.
    pub fn advance_span(&mut self, net: &mut Network, hard_target: SimTime) -> bool {
        match self.span_once(net, hard_target, false) {
            SpanEnd::Done => false,
            SpanEnd::Short => true,
            SpanEnd::AtTarget => {
                self.post_step();
                true
            }
            // defer_physics is false.
            SpanEnd::AtTargetDeferred => unreachable!(),
        }
    }

    /// One time-leap span with physics deferral for SoA batching — the
    /// fleet executor's building block. See
    /// [`VehicleInstance::span_once`] for the protocol each [`SpanEnd`]
    /// variant imposes on the caller.
    pub fn advance_span_deferred(&mut self, net: &mut Network, hard_target: SimTime) -> SpanEnd {
        self.span_once(net, hard_target, true)
    }

    /// The structured trace port. Detached by default; attach a ring
    /// buffer ([`ObsPort::attach`]) to start capturing
    /// [`cd_obs::TraceEvent`]s, then drain it between quanta (fleet
    /// executors drain at poll boundaries in vehicle-index order).
    pub fn obs_port(&mut self) -> &mut ObsPort {
        &mut self.rt.obs
    }

    /// Executor observability counters of the underlying machine
    /// (quanta, dispatch reuse, deadline skips, leap stop reasons).
    pub fn sched_obs(&self) -> &rt_sched::machine::SchedObs {
        self.rt.machine.obs()
    }

    /// Scheduler quanta executed so far (plain steps + leaped).
    pub fn sim_steps(&self) -> u64 {
        self.rt.steps
    }

    /// Quanta advanced in closed form by the time-leap executor.
    pub fn quanta_leaped(&self) -> u64 {
        self.rt.quanta_leaped
    }

    /// Simplex switches to the safety controller taken so far.
    pub fn simplex_switches(&self) -> u64 {
        self.rt.simplex_switches
    }

    /// Credits `ns` wall-nanoseconds to executor phase `phase`
    /// ([`crate::phase`] indices). External steppers (the fleet executor,
    /// [`RunningScenario::step`]) own the network step and batch-physics
    /// calls, so they bracket those themselves and book the time here;
    /// the totals surface in [`ScenarioResult::phase_ns`].
    pub fn phase_add(&mut self, phase: usize, ns: u64) {
        self.rt.phase_ns[phase] += ns;
    }
}

/// Stable wire label for a crash kind (trace events carry `&'static str`
/// labels; the human-facing [`std::fmt::Display`] strings stay in the
/// flight recorder).
fn crash_label(kind: uav_dynamics::crash::CrashKind) -> &'static str {
    use uav_dynamics::crash::CrashKind;
    match kind {
        CrashKind::GroundImpact => "ground_impact",
        CrashKind::CageImpact => "cage_impact",
        CrashKind::LossOfControl => "loss_of_control",
    }
}

impl Runtime {
    /// Emits one [`TraceKind::DeadlineSkip`] per skipped release in
    /// `events` (a = task ordinal, b = the skipped release instant, ns).
    fn trace_skips(&mut self, events: &[SchedEvent], now: SimTime) {
        if !self.obs.enabled() {
            return;
        }
        for ev in events {
            if let SchedEvent::ReleaseSkipped { task, release } = *ev {
                self.obs.record(
                    now,
                    TraceKind::DeadlineSkip,
                    "",
                    task.index() as u64,
                    release.as_nanos(),
                );
            }
        }
    }
}

/// How a [`VehicleInstance::advance_span_deferred`] span ended, and what
/// the caller owes the vehicle before advancing it again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEnd {
    /// The flight was already over; nothing advanced.
    Done,
    /// The span flushed before the hard target (scheduling event, or a
    /// live emitter forcing plain quanta). The full quantum tail —
    /// including [`VehicleInstance::post_step`] — already ran; call
    /// again to continue toward the target.
    Short,
    /// Reached the hard target. Physics is current, but
    /// [`VehicleInstance::post_step`] has **not** run: observe the
    /// vehicle (snapshot), then call it.
    AtTarget,
    /// Reached the hard target with no pending events; physics catch-up
    /// was deferred. Advance the world to [`VehicleInstance::now`]
    /// (e.g. batch-enroll it), then observe, then call
    /// [`VehicleInstance::post_step`].
    AtTargetDeferred,
}

/// The live state of one vehicle. Built by [`assembly`], advanced by
/// [`VehicleInstance::advance`], torn down into a [`ScenarioResult`] by
/// [`report`]. Deliberately network-free: every method that touches the
/// wire borrows the (possibly shared) [`Network`].
pub(crate) struct Runtime {
    pub(crate) cfg: ScenarioConfig,
    pub(crate) world: World,
    pub(crate) machine: Machine,
    pub(crate) container: Container,
    pub(crate) host_ns: NsId,
    // Sockets.
    pub(crate) hce_motor_rx: SocketId,
    pub(crate) hce_sensor_tx: SocketId,
    pub(crate) cce_motor_tx: Option<SocketId>,
    pub(crate) cce_sensor_rx: Option<SocketId>,
    // Protocol state.
    pub(crate) hce_sender: Sender,
    pub(crate) cce_sender: Sender,
    pub(crate) hce_parser: Parser,
    pub(crate) cce_parser: Parser,
    // Controllers.
    pub(crate) safety_fc: FlightController,
    pub(crate) cce_fc: Option<FlightController>,
    pub(crate) hce_fc: Option<FlightController>,
    pub(crate) monitor: SecurityMonitor,
    // Simplex actuation state.
    pub(crate) cce_cmd_pwm: [u16; 4],
    pub(crate) last_valid_output: Option<SimTime>,
    pub(crate) motor_seq: u32,
    // Feeder state.
    pub(crate) sensor_jobs: u64,
    pub(crate) cce_rate_jobs: u64,
    pub(crate) heartbeats_received: u64,
    pub(crate) last_heartbeat: Option<SimTime>,
    pub(crate) imu_counter: StreamCounter,
    pub(crate) baro_counter: StreamCounter,
    pub(crate) gps_counter: StreamCounter,
    pub(crate) rc_counter: StreamCounter,
    pub(crate) motor_counter: StreamCounter,
    // Attack-timeline state.
    pub(crate) script: Vec<ScriptEntry>,
    pub(crate) script_cursor: usize,
    pub(crate) armed: Vec<Box<dyn AttackDriver>>,
    pub(crate) attack_log: Vec<(SimTime, &'static str)>,
    pub(crate) next_src_port: u16,
    // Bookkeeping.
    pub(crate) ids: TaskIds,
    pub(crate) recorder: FlightRecorder,
    pub(crate) steps: u64,
    pub(crate) quanta_leaped: u64,
    /// Scratch for decoded frames, reused across every received datagram.
    pub(crate) frame_scratch: Vec<Frame>,
    /// Parse-once memo for shared flood payloads: the last shared buffer
    /// whose clean-slate parse produced no frames and left the reassembly
    /// buffer empty, with the [`ParserStats`] delta that parse booked.
    /// Later packets carrying the same buffer (pointer identity) replay
    /// the delta instead of re-scanning.
    pub(crate) flood_memo: Option<(std::sync::Arc<[u8]>, mavlink_lite::parser::ParserStats)>,
    /// Wall-nanoseconds per executor phase ([`crate::phase`] indices).
    /// All-zero unless a measurement harness installed the phase clock;
    /// never feeds simulation state.
    pub(crate) phase_ns: [u64; crate::phase::COUNT],
    /// Structured trace port — detached (a single branch per potential
    /// event) unless a fleet/scenario driver attaches a buffer.
    pub(crate) obs: ObsPort,
    /// Lifetime count of Simplex switches to the safety controller.
    pub(crate) simplex_switches: u64,
}
