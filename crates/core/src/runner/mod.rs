//! The co-simulation runner: machine + network + physics + controllers.
//!
//! [`Scenario::run`] assembles the full ContainerDrone system of Figure 2 —
//! HCE tasks on the host (drivers, rx thread, security monitor, safety
//! controller), CCE tasks in the container (complex-controller pipeline and
//! rate loop), the bridged UDP channel of Table I — and advances everything
//! in lock-step at the scheduler quantum. Job completions trigger the
//! corresponding framework actions, so every scheduling delay, memory
//! stall, dropped packet and parser resync propagates into flight quality
//! exactly the way it does on the paper's testbed.
//!
//! The runner is organised by subsystem:
//!
//! | Module | Responsibility |
//! |--------|----------------|
//! | [`assembly`] | Building the machine, network, container and task set |
//! | [`hce`] | Host-side job handlers (drivers, rx, monitor, safety) |
//! | [`cce`] | Container-side job handlers (pipeline, rate loop) |
//! | [`attack`] | The attack-timeline cursor and armed-driver loop |
//! | [`report`] | Telemetry sampling and the end-of-run [`ScenarioResult`] |
//!
//! Attacks are *data* ([`attacks::AttackScript`]): the main loop arms
//! each scheduled event at its onset and thereafter steps every armed
//! [`attacks::AttackDriver`] generically, so a run may contain any number
//! of concurrent and sequenced attacks.

pub mod assembly;
pub mod attack;
pub mod cce;
pub mod hce;
pub mod report;

use attacks::driver::AttackDriver;
use attacks::script::ScriptEntry;
use autopilot::controller::FlightController;
use container_rt::container::Container;
use mavlink_lite::frame::Sender;
use mavlink_lite::parser::Parser;
use rt_sched::machine::Machine;
use rt_sched::task::SchedEvent;
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::world::World;
use virt_net::net::{Network, NsId, SocketId};

use crate::feeder::StreamCounter;
use crate::monitor::{SecurityMonitor, SecurityRule};
use crate::scenario::ScenarioConfig;
use crate::telemetry::FlightRecorder;

pub use assembly::TaskIds;
pub use report::{ScenarioResult, StreamReport};

/// An executable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
}

impl Scenario {
    /// Wraps a configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario { config }
    }

    /// Runs the scenario to completion (or 1 s past a crash) and returns
    /// the collected results.
    pub fn run(self) -> ScenarioResult {
        Runtime::build(self.config, Vec::new()).run()
    }

    /// Runs with additional custom security rules installed in the monitor
    /// (see the `custom_rule` example).
    pub fn run_with_rules(self, rules: Vec<Box<dyn SecurityRule>>) -> ScenarioResult {
        Runtime::build(self.config, rules).run()
    }
}

/// The live state of one scenario run. Built by [`assembly`], advanced by
/// [`Runtime::run`], torn down into a [`ScenarioResult`] by [`report`].
pub(crate) struct Runtime {
    pub(crate) cfg: ScenarioConfig,
    pub(crate) world: World,
    pub(crate) machine: Machine,
    pub(crate) net: Network,
    pub(crate) container: Container,
    pub(crate) host_ns: NsId,
    // Sockets.
    pub(crate) hce_motor_rx: SocketId,
    pub(crate) hce_sensor_tx: SocketId,
    pub(crate) cce_motor_tx: Option<SocketId>,
    pub(crate) cce_sensor_rx: Option<SocketId>,
    // Protocol state.
    pub(crate) hce_sender: Sender,
    pub(crate) cce_sender: Sender,
    pub(crate) hce_parser: Parser,
    pub(crate) cce_parser: Parser,
    // Controllers.
    pub(crate) safety_fc: FlightController,
    pub(crate) cce_fc: Option<FlightController>,
    pub(crate) hce_fc: Option<FlightController>,
    pub(crate) monitor: SecurityMonitor,
    // Simplex actuation state.
    pub(crate) cce_cmd_pwm: [u16; 4],
    pub(crate) last_valid_output: Option<SimTime>,
    pub(crate) motor_seq: u32,
    // Feeder state.
    pub(crate) sensor_jobs: u64,
    pub(crate) cce_rate_jobs: u64,
    pub(crate) heartbeats_received: u64,
    pub(crate) last_heartbeat: Option<SimTime>,
    pub(crate) imu_counter: StreamCounter,
    pub(crate) baro_counter: StreamCounter,
    pub(crate) gps_counter: StreamCounter,
    pub(crate) rc_counter: StreamCounter,
    pub(crate) motor_counter: StreamCounter,
    // Attack-timeline state.
    pub(crate) script: Vec<ScriptEntry>,
    pub(crate) script_cursor: usize,
    pub(crate) armed: Vec<Box<dyn AttackDriver>>,
    pub(crate) attack_log: Vec<(SimTime, &'static str)>,
    pub(crate) next_src_port: u16,
    // Bookkeeping.
    pub(crate) ids: TaskIds,
    pub(crate) recorder: FlightRecorder,
}

impl Runtime {
    /// The main lock-step loop: scheduler quantum by quantum, dispatching
    /// completed jobs, stepping armed attacks and the network, recording
    /// telemetry, and stopping 1 s after a crash.
    fn run(mut self) -> ScenarioResult {
        let quantum = self.machine.config().quantum;
        let end = SimTime::ZERO + self.cfg.duration;
        let record_period = SimDuration::from_hz(self.cfg.record_hz);
        let mut next_record = SimTime::ZERO;
        let mut events: Vec<SchedEvent> = Vec::new();
        let mut crash_deadline: Option<SimTime> = None;
        let mut crash_marked = false;

        while self.machine.now() < end {
            events.clear();
            self.machine.step(&mut events);
            let now = self.machine.now();
            self.world.advance_to(now);

            for ev in events.drain(..) {
                if let SchedEvent::JobCompleted { task, .. } = ev {
                    self.dispatch(task, now);
                }
            }

            self.step_attacks(now, quantum);

            let deliveries = self.net.step(now);
            for d in deliveries {
                if d.socket == self.hce_motor_rx {
                    if let Some(rx) = self.ids.rx {
                        if self.machine.is_alive(rx) {
                            self.machine.inject_job(rx, d.count);
                        }
                    }
                }
            }

            if now >= next_record {
                self.record(now);
                next_record = now + record_period;
            }

            if let Some(crash) = self.world.crash() {
                if !crash_marked {
                    self.recorder
                        .mark(crash.time, format!("crash: {}", crash.kind));
                    crash_marked = true;
                    crash_deadline = Some(now + SimDuration::from_secs(1));
                }
            }
            if crash_deadline.is_some_and(|d| now >= d) {
                break;
            }
        }

        self.finish()
    }
}
