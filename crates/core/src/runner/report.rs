//! Telemetry sampling during the run and the end-of-run report: stream
//! statistics, task accounting, monitor events and the flight record.

use mavlink_lite::parser::ParserStats;
use rt_sched::machine::TaskStats;
use sim_core::time::SimTime;
use uav_dynamics::crash::Crash;
use virt_net::net::Network;
use virt_net::net::SocketStats;

use crate::config::{MOTOR_PORT, SENSOR_PORT};
use crate::monitor::{MonitorEvent, OutputSource};
use crate::scenario::{Pilot, ScenarioConfig};
use crate::telemetry::FlightRecorder;

use super::Runtime;

/// One row of the Table I report.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Stream name (IMU, Barometer, …).
    pub name: &'static str,
    /// "HCE → CCE" or "CCE → HCE".
    pub direction: &'static str,
    /// Nominal rate from the configuration, Hz.
    pub nominal_hz: f64,
    /// Measured rate over the run, Hz.
    pub measured_hz: f64,
    /// On-wire frame size, bytes.
    pub frame_bytes: f64,
    /// Destination UDP port.
    pub port: u16,
}

/// Everything a scenario run produces.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The configuration that produced this result.
    pub config: ScenarioConfig,
    /// Recorded flight signals (the figure data).
    pub telemetry: FlightRecorder,
    /// The crash, if the flight ended in one.
    pub crash: Option<Crash>,
    /// When the Simplex switch to the safety controller happened.
    pub switch_time: Option<SimTime>,
    /// Monitor rule violations.
    pub monitor_events: Vec<MonitorEvent>,
    /// Onset of the first attack (None for healthy runs).
    pub attack_onset: Option<SimTime>,
    /// Every timeline event that fired, in firing order.
    pub attack_log: Vec<(SimTime, &'static str)>,
    /// Per-core idle fractions over the run.
    pub idle_rates: Vec<f64>,
    /// Measured Table I stream statistics.
    pub streams: Vec<StreamReport>,
    /// HCE motor-port parser statistics (flood garbage shows up here).
    pub hce_parser_stats: ParserStats,
    /// HCE motor-socket statistics (drops show up here).
    pub rx_socket_stats: SocketStats,
    /// Packets offered by flood attacks, if any.
    pub flood_sent: u64,
    /// Datagrams offered by all network-borne attacks combined.
    pub attack_packets: u64,
    /// CCE liveness heartbeats received by the HCE (1 Hz when healthy).
    pub heartbeats_received: u64,
    /// Scheduler quanta executed by the run loop (the perf harness's
    /// steps/sec denominator is wall time; this is the numerator).
    pub sim_steps: u64,
    /// Of [`ScenarioResult::sim_steps`], how many were advanced in closed
    /// form by the time-leap executor rather than stepped one quantum at a
    /// time. Always 0 on the quantum-stepped reference path (`--no-leap`);
    /// everything else about the result is byte-identical either way.
    pub quanta_leaped: u64,
    /// Total datagrams offered to the virtual network over the run
    /// (legitimate streams and attack traffic combined). This counter is
    /// network-global: in a fleet run it is the whole shared airspace's
    /// total (including GCS telemetry), identical across vehicles — use
    /// per-socket stats for per-vehicle traffic analysis.
    pub net_packets_sent: u64,
    /// Per-task scheduler statistics (name, stats).
    pub task_report: Vec<(String, TaskStats)>,
    /// Wall-nanoseconds the executor spent per phase ([`crate::phase`]
    /// indices / [`crate::phase::NAMES`]). All-zero unless a measurement
    /// harness installed the phase clock ([`crate::phase::install_clock`]);
    /// scratch for the perf harness, excluded from every equivalence
    /// comparison.
    pub phase_ns: [u64; crate::phase::COUNT],
}

impl ScenarioResult {
    /// `true` if the vehicle crashed.
    pub fn crashed(&self) -> bool {
        self.crash.is_some()
    }

    /// Largest distance between truth and the hover setpoint over
    /// `[from, to)`, metres.
    pub fn max_deviation(&self, from: SimTime, to: SimTime) -> f64 {
        ["x", "y", "z"]
            .iter()
            .map(|a| self.telemetry.max_tracking_error(a, from, to))
            .fold(0.0, f64::max)
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "outcome: {}\n",
            match &self.crash {
                Some(c) => format!("CRASHED at {} ({})", c.time, c.kind),
                None => "stable".to_string(),
            }
        ));
        if let Some(at) = self.attack_onset {
            s.push_str(&format!("attack onset: {at}\n"));
        }
        for (at, name) in &self.attack_log {
            s.push_str(&format!("attack event at {at}: {name}\n"));
        }
        match self.switch_time {
            Some(t) => s.push_str(&format!("simplex switch: {t}\n")),
            None => s.push_str("simplex switch: never\n"),
        }
        for ev in &self.monitor_events {
            s.push_str(&format!(
                "violation [{}] at {}: {}\n",
                ev.rule, ev.time, ev.detail
            ));
        }
        let idle: Vec<String> = self.idle_rates.iter().map(|r| format!("{r:.2}")).collect();
        s.push_str(&format!("idle rates: [{}]\n", idle.join(", ")));
        s
    }
}

impl Runtime {
    /// Samples the telemetry signals at the configured record rate.
    pub(crate) fn record(&mut self, now: SimTime) {
        let (estimated, att_err) = match self.cfg.pilot {
            Pilot::HceDirect => {
                let fc = self.hce_fc.as_ref().expect("hce pilot has a controller");
                (fc.position_estimate(), fc.attitude_error())
            }
            Pilot::CceSimplex => match self.monitor.source() {
                OutputSource::Complex => (
                    self.cce_fc
                        .as_ref()
                        .map(|fc| fc.position_estimate())
                        .unwrap_or(self.safety_fc.position_estimate()),
                    self.safety_fc.attitude_error(),
                ),
                OutputSource::Safety => (
                    self.safety_fc.position_estimate(),
                    self.safety_fc.attitude_error(),
                ),
            },
        };
        self.recorder.sample(
            now,
            self.cfg.hover,
            estimated,
            self.world.truth().position,
            att_err,
            self.monitor.source(),
        );
    }

    /// Tears the run down into a [`ScenarioResult`], reading socket-level
    /// statistics from the (possibly fleet-shared) network.
    pub(crate) fn finish(self, net: &Network) -> ScenarioResult {
        let elapsed = self.machine.now().as_secs_f64();
        let fw = &self.cfg.framework;
        let streams = vec![
            StreamReport {
                name: "IMU",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.imu_hz,
                measured_hz: self.imu_counter.rate_hz(elapsed),
                frame_bytes: self.imu_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "Barometer",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.baro_hz,
                measured_hz: self.baro_counter.rate_hz(elapsed),
                frame_bytes: self.baro_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "GPS",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.gps_hz,
                measured_hz: self.gps_counter.rate_hz(elapsed),
                frame_bytes: self.gps_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "RC",
                direction: "HCE → CCE",
                nominal_hz: fw.rates.rc_hz,
                measured_hz: self.rc_counter.rate_hz(elapsed),
                frame_bytes: self.rc_counter.mean_frame_size(),
                port: SENSOR_PORT,
            },
            StreamReport {
                name: "Motor Output",
                direction: "CCE → HCE",
                nominal_hz: fw.rates.motor_hz,
                measured_hz: self.motor_counter.rate_hz(elapsed),
                frame_bytes: self.motor_counter.mean_frame_size(),
                port: MOTOR_PORT,
            },
        ];

        let mut task_report = Vec::new();
        let all_ids = [
            Some(self.ids.sensor_driver),
            Some(self.ids.motor_driver),
            self.ids.monitor,
            self.ids.rx,
            self.ids.safety,
            self.ids.hce_stack,
            self.ids.cc_pipeline,
            self.ids.cc_rate,
        ];
        for id in all_ids.into_iter().flatten() {
            task_report.push((
                self.machine.task_name(id).to_string(),
                self.machine.task_stats(id),
            ));
        }

        let flood_sent = self
            .armed
            .iter()
            .filter(|d| d.name() == attacks::udp_flood::FloodDriver::NAME)
            .map(|d| d.packets_sent())
            .sum();
        let attack_packets = self.armed.iter().map(|d| d.packets_sent()).sum();

        ScenarioResult {
            crash: self.world.crash(),
            switch_time: self.monitor.switch_time(),
            monitor_events: self.monitor.events().to_vec(),
            attack_onset: self.cfg.attacks.first_onset(),
            attack_log: self.attack_log,
            idle_rates: self.machine.idle_rates(),
            streams,
            hce_parser_stats: self.hce_parser.stats(),
            rx_socket_stats: net.socket_stats(self.hce_motor_rx),
            flood_sent,
            attack_packets,
            heartbeats_received: self.heartbeats_received,
            sim_steps: self.steps,
            quanta_leaped: self.quanta_leaped,
            phase_ns: self.phase_ns,
            net_packets_sent: net.packets_sent(),
            task_report,
            telemetry: self.recorder,
            config: self.cfg,
        }
    }
}
