//! Container Control Environment job handlers: the complex-controller
//! pipeline and the 400 Hz rate loop feeding motor output back over the
//! bridged UDP channel.

use mavlink_lite::messages::{Heartbeat, Message, MotorOutput};
use sim_core::time::SimTime;
use virt_net::net::{Addr, Network};

use crate::config::MOTOR_PORT;
use crate::feeder::{msg_to_baro, msg_to_fix, msg_to_imu};

use super::Runtime;

impl Runtime {
    /// CCE pipeline job: drain the sensor socket, feed the complex
    /// controller, run the outer loops.
    pub(crate) fn on_cce_pipeline(&mut self, now: SimTime, net: &mut Network) {
        let Some(rx) = self.cce_sensor_rx else { return };
        let Some(fc) = &mut self.cce_fc else { return };
        let mut frames = std::mem::take(&mut self.frame_scratch);
        while let Some(pkt) = net.recv(rx) {
            frames.clear();
            self.cce_parser.push_into(&pkt.payload, &mut frames);
            net.recycle(pkt);
            for frame in &frames {
                match frame.message {
                    Message::Imu(m) => fc.on_imu(&msg_to_imu(&m)),
                    Message::Baro(m) => fc.on_baro(&msg_to_baro(&m)),
                    Message::Gps(m) => fc.on_position_fix(&msg_to_fix(&m)),
                    _ => {}
                }
            }
        }
        self.frame_scratch = frames;
        fc.run_outer(now);
    }

    /// CCE rate-loop job: compute and transmit the motor output, plus a
    /// liveness heartbeat once per second.
    pub(crate) fn on_cce_rate(&mut self, now: SimTime, net: &mut Network) {
        let Some(tx) = self.cce_motor_tx else { return };
        let Some(fc) = &mut self.cce_fc else { return };
        self.cce_rate_jobs += 1;
        if self.cce_rate_jobs.is_multiple_of(400) {
            let hb = Heartbeat {
                custom_mode: 0,
                vehicle_type: 2,  // MAV_TYPE_QUADROTOR
                autopilot: 12,    // MAV_AUTOPILOT_PX4
                base_mode: 0x80,  // armed
                system_status: 4, // active
                mavlink_version: 3,
            };
            let mut wire = net.take_buf();
            self.cce_sender
                .encode_into(Message::Heartbeat(hb), &mut wire);
            let _ = net.send(
                tx,
                Addr {
                    ns: self.host_ns,
                    port: MOTOR_PORT,
                },
                wire,
                now,
            );
        }
        let pwm = fc.run_rate_loop(now);
        self.motor_seq += 1;
        let msg = MotorOutput {
            time_usec: now.as_micros(),
            pwm,
            seq: self.motor_seq,
            armed: 1,
        };
        let mut wire = net.take_buf();
        self.cce_sender.encode_into(Message::Motor(msg), &mut wire);
        self.motor_counter.record(wire.len());
        let _ = net.send(
            tx,
            Addr {
                ns: self.host_ns,
                port: MOTOR_PORT,
            },
            wire,
            now,
        );
    }
}
