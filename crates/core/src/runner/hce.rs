//! Host Control Environment job handlers: drivers, rx thread, security
//! monitor, safety controller and the direct-pilot flight stack — plus the
//! completion-dispatch switch connecting scheduler events to them.

use std::sync::Arc;

use rt_sched::task::TaskId;
use sim_core::time::SimTime;
use virt_net::net::{Addr, Network};

use crate::config::SENSOR_PORT;
use crate::feeder::{baro_to_msg, fix_to_msg, imu_to_msg, neutral_rc};
use crate::monitor::{MonitorContext, OutputSource};
use crate::scenario::Pilot;

use mavlink_lite::messages::Message;

use super::Runtime;

impl Runtime {
    /// Routes a completed job to its handler. Handlers that touch the
    /// wire borrow the (possibly fleet-shared) network.
    pub(crate) fn dispatch(&mut self, task: TaskId, now: SimTime, net: &mut Network) {
        let ids = &self.ids;
        if task == ids.sensor_driver {
            self.on_sensor_driver(now, net);
        } else if task == ids.motor_driver {
            self.on_motor_driver(now);
        } else if Some(task) == ids.monitor {
            self.on_monitor(now);
        } else if Some(task) == ids.rx {
            self.on_rx(now, net);
        } else if Some(task) == ids.safety {
            self.on_safety(now);
        } else if Some(task) == ids.hce_stack {
            self.on_hce_stack(now);
        } else if Some(task) == ids.cc_pipeline {
            self.on_cce_pipeline(now, net);
        } else if Some(task) == ids.cc_rate {
            self.on_cce_rate(now, net);
        }
    }

    /// Sensor driver job: sample the devices, update the HCE view, feed the
    /// local controllers, and forward the Table I streams to the CCE.
    pub(crate) fn on_sensor_driver(&mut self, now: SimTime, net: &mut Network) {
        self.sensor_jobs += 1;
        let sensor_addr = Addr {
            ns: self.host_ns,
            port: SENSOR_PORT,
        };

        let imu = self.world.sample_imu();
        self.safety_fc.on_imu(&imu);
        if let Some(fc) = &mut self.hce_fc {
            fc.on_imu(&imu);
        }
        let mut wire = net.take_buf();
        self.hce_sender
            .encode_into(Message::Imu(imu_to_msg(&imu)), &mut wire);
        self.imu_counter.record(wire.len());
        let _ = net.send(self.hce_sensor_tx, sensor_addr, wire, now);

        // Barometer + RC at 50 Hz (every 5th 250 Hz job).
        if self.sensor_jobs.is_multiple_of(5) {
            let baro = self.world.sample_baro();
            self.safety_fc.on_baro(&baro);
            if let Some(fc) = &mut self.hce_fc {
                fc.on_baro(&baro);
            }
            let mut wire = net.take_buf();
            self.hce_sender
                .encode_into(Message::Baro(baro_to_msg(&baro)), &mut wire);
            self.baro_counter.record(wire.len());
            let _ = net.send(self.hce_sensor_tx, sensor_addr, wire, now);

            let rc = neutral_rc(now);
            let mut wire = net.take_buf();
            self.hce_sender.encode_into(Message::Rc(rc), &mut wire);
            self.rc_counter.record(wire.len());
            let _ = net.send(self.hce_sensor_tx, sensor_addr, wire, now);
        }

        // Positioning at 10 Hz (every 25th job).
        if self.sensor_jobs.is_multiple_of(25) {
            let fix = self.world.sample_position();
            self.safety_fc.on_position_fix(&fix);
            if let Some(fc) = &mut self.hce_fc {
                fc.on_position_fix(&fix);
            }
            let mut wire = net.take_buf();
            self.hce_sender
                .encode_into(Message::Gps(fix_to_msg(&fix)), &mut wire);
            self.gps_counter.record(wire.len());
            let _ = net.send(self.hce_sensor_tx, sensor_addr, wire, now);
        }
    }

    /// Motor driver job: apply the selected controller's output.
    pub(crate) fn on_motor_driver(&mut self, _now: SimTime) {
        let pwm = match self.cfg.pilot {
            Pilot::HceDirect => self
                .hce_fc
                .as_ref()
                .map(|fc| fc.last_pwm())
                .unwrap_or([1000; 4]),
            Pilot::CceSimplex => match self.monitor.source() {
                OutputSource::Complex => self.cce_cmd_pwm,
                OutputSource::Safety => self.safety_fc.last_pwm(),
            },
        };
        self.world.set_motor_pwm(pwm);
    }

    /// Security monitor job: evaluate the rules, act on violations.
    pub(crate) fn on_monitor(&mut self, now: SimTime) {
        let ctx = MonitorContext {
            now,
            last_valid_output: self.last_valid_output,
            attitude_error: self.safety_fc.attitude_error(),
            source: self.monitor.source(),
        };
        if self.monitor.evaluate(&ctx) {
            // "the monitor kills the receiving thread on the HCE and
            // switches to use the output from the safety controller".
            if let Some(rx) = self.ids.rx {
                self.machine.kill(rx);
            }
            self.safety_fc.reset_transients();
            self.recorder
                .mark(now, "simplex switch to safety controller");
            self.simplex_switches += 1;
            cd_obs::emit!(
                self.obs,
                now,
                cd_obs::TraceKind::SimplexSwitch,
                "to_safety",
                self.simplex_switches,
                0
            );
        }
    }

    /// Rx-thread job: process exactly one datagram from the motor port.
    ///
    /// A flood fans one shared buffer out as thousands of byte-identical
    /// datagrams, and the parse outcome of such a datagram against an
    /// empty reassembly buffer is a pure function of its bytes — so it is
    /// parsed once and its statistics delta replayed
    /// ([`Parser::account`](mavlink_lite::parser::Parser::account)) for
    /// every later packet carrying the same buffer. A pending partial
    /// frame, or a push that decoded frames or buffered a tail, falls
    /// back to (and re-records from) the full scan.
    pub(crate) fn on_rx(&mut self, now: SimTime, net: &mut Network) {
        let t0 = crate::phase::now();
        self.on_rx_inner(now, net);
        self.phase_ns[crate::phase::PARSE] += crate::phase::now() - t0;
    }

    fn on_rx_inner(&mut self, now: SimTime, net: &mut Network) {
        let Some(pkt) = net.recv(self.hce_motor_rx) else {
            return;
        };
        let memo_key = if self.hce_parser.pending_bytes() == 0 {
            pkt.payload.shared().cloned()
        } else {
            None
        };
        if let (Some(key), Some((memo_payload, delta))) = (&memo_key, &self.flood_memo) {
            if Arc::ptr_eq(key, memo_payload) {
                let delta = *delta;
                self.hce_parser.account(delta);
                net.recycle(pkt);
                return;
            }
        }
        let before = self.hce_parser.stats();
        let mut frames = std::mem::take(&mut self.frame_scratch);
        frames.clear();
        self.hce_parser.push_into(&pkt.payload, &mut frames);
        net.recycle(pkt);
        if let Some(key) = memo_key {
            if frames.is_empty() && self.hce_parser.pending_bytes() == 0 {
                self.flood_memo = Some((key, self.hce_parser.stats().delta_since(&before)));
            }
        }
        for frame in &frames {
            match frame.message {
                Message::Motor(m) if m.armed == 1 => {
                    self.cce_cmd_pwm = m.pwm;
                    self.last_valid_output = Some(now);
                }
                Message::Heartbeat(_) => {
                    self.heartbeats_received += 1;
                    self.last_heartbeat = Some(now);
                }
                _ => {}
            }
        }
        self.frame_scratch = frames;
    }

    /// Safety controller job (hot standby, 400 Hz).
    pub(crate) fn on_safety(&mut self, now: SimTime) {
        self.safety_fc.run_outer(now);
        let _ = self.safety_fc.run_rate_loop(now);
    }

    /// HCE trusted-controller job (memory-DoS experiments).
    pub(crate) fn on_hce_stack(&mut self, now: SimTime) {
        if let Some(fc) = &mut self.hce_fc {
            fc.run_outer(now);
            let _ = fc.run_rate_loop(now);
        }
    }
}
