//! System assembly: the machine, network, container, controllers and the
//! §IV-C task set, wired exactly as Figure 2 lays them out.

use autopilot::controller::{ControlGains, FlightController, Setpoint};
use container_rt::container::{Container, ContainerConfig};
use container_rt::vm::spawn_system_background;
use mavlink_lite::frame::Sender;
use mavlink_lite::parser::Parser;
use membw::dram::MemGuardConfig;
use rt_sched::machine::{Machine, MachineConfig};
use rt_sched::task::{TaskId, TaskSpec};
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::motor::cmd_to_pwm;
use uav_dynamics::world::World;
use virt_net::net::{Addr, Network};

use crate::config::{MOTOR_PORT, SENSOR_PORT};
use crate::feeder::StreamCounter;
use crate::monitor::{SecurityMonitor, SecurityRule};
use crate::scenario::{Pilot, ScenarioConfig};
use crate::telemetry::FlightRecorder;

use super::Runtime;

/// Task ids of the spawned framework task set (fields are `None` when the
/// scenario's pilot mode or protections leave that task unspawned).
pub struct TaskIds {
    /// HCE sensor driver (always present).
    pub sensor_driver: TaskId,
    /// HCE motor driver (always present).
    pub motor_driver: TaskId,
    /// Security monitor (requires the monitor protection).
    pub monitor: Option<TaskId>,
    /// HCE receiving thread (Simplex mode only).
    pub rx: Option<TaskId>,
    /// Safety controller (Simplex mode only).
    pub safety: Option<TaskId>,
    /// HCE flight stack (direct-pilot mode only).
    pub hce_stack: Option<TaskId>,
    /// CCE complex-controller pipeline (Simplex mode only).
    pub cc_pipeline: Option<TaskId>,
    /// CCE rate loop (Simplex mode only).
    pub cc_rate: Option<TaskId>,
}

impl TaskIds {
    /// The complex controller's tasks — the kill-attack target set.
    pub(crate) fn controller_tasks(&self) -> Vec<TaskId> {
        [self.cc_pipeline, self.cc_rate]
            .into_iter()
            .flatten()
            .collect()
    }
}

/// First source port handed to network-borne attacks; each armed attack
/// gets the next port so concurrent attacks never collide on a bind.
const ATTACK_SRC_PORT_BASE: u16 = 40_000;

impl Runtime {
    pub(crate) fn build(
        cfg: ScenarioConfig,
        extra_rules: Vec<Box<dyn SecurityRule>>,
        net: &mut Network,
    ) -> Runtime {
        let fw = &cfg.framework;

        // --- Physical world -------------------------------------------------
        let mut world = World::new(cfg.world, cfg.seed);
        world.start_at_hover(cfg.hover);

        // --- Machine ---------------------------------------------------------
        let mut machine = Machine::new(MachineConfig {
            n_cores: 4,
            quantum: crate::config::SCHED_QUANTUM,
            dram: fw.dram,
        });
        spawn_system_background(&mut machine);
        if fw.protections.memguard {
            machine.enable_memguard(MemGuardConfig::single_core(
                4,
                fw.cce_core,
                fw.protections.memguard_budget,
                &fw.dram,
            ));
        }

        // --- Network + container ---------------------------------------------
        // The network is borrowed, not owned: a fleet shares one airspace
        // across many vehicles, each building its own namespaces into it.
        let host_ns = net.add_namespace("host");
        let mut container = Container::create(
            &mut machine,
            net,
            host_ns,
            ContainerConfig::cce(fw.cce_core),
        );
        container.expose_port(net, host_ns, SENSOR_PORT);

        let hce_motor_rx = net
            .bind_with_capacity(host_ns, MOTOR_PORT, fw.rx_queue_capacity)
            .expect("motor port free");
        let hce_sensor_tx = net.bind(host_ns, 9001).expect("feeder port free");
        if fw.protections.iptables {
            net.add_rate_limit(
                Addr {
                    ns: host_ns,
                    port: MOTOR_PORT,
                },
                fw.protections.iptables_pps,
                fw.protections.iptables_burst,
            );
        }

        // --- HCE tasks ---------------------------------------------------------
        let hce_cores =
            rt_sched::task::CpuSet::from_cores((0..4usize).filter(|c| *c != fw.cce_core));
        let sensor_period = SimDuration::from_hz(fw.rates.imu_hz);
        let motor_period = SimDuration::from_hz(fw.rates.motor_hz);

        let sensor_driver = machine.spawn(
            TaskSpec::periodic_fifo(
                "sensor-driver",
                fw.priorities.drivers,
                sensor_period,
                fw.costs.sensor_driver,
            )
            .with_affinity(hce_cores),
            machine.root_cgroup(),
        );
        let motor_driver = machine.spawn(
            TaskSpec::periodic_fifo(
                "motor-driver",
                fw.priorities.drivers,
                motor_period,
                fw.costs.motor_driver,
            )
            .with_affinity(hce_cores)
            .with_offset(SimDuration::from_micros(200)),
            machine.root_cgroup(),
        );

        let params = *world.quad_params();
        let t0 = SimTime::ZERO;
        let mut safety_fc = FlightController::new(&params, ControlGains::safety());
        safety_fc.initialize_hover(cfg.hover, 0.0, t0);
        safety_fc.set_setpoint(Setpoint {
            position: cfg.hover,
            yaw: 0.0,
        });

        let mut monitor = SecurityMonitor::new(&fw.thresholds);
        for r in extra_rules {
            monitor.add_rule(r);
        }

        let mut ids = TaskIds {
            sensor_driver,
            motor_driver,
            monitor: None,
            rx: None,
            safety: None,
            hce_stack: None,
            cc_pipeline: None,
            cc_rate: None,
        };

        let mut cce_fc = None;
        let mut hce_fc = None;
        let mut cce_motor_tx = None;
        let mut cce_sensor_rx = None;

        match cfg.pilot {
            Pilot::CceSimplex => {
                ids.safety = Some(
                    machine.spawn(
                        TaskSpec::periodic_fifo(
                            "safety-controller",
                            fw.priorities.safety,
                            motor_period,
                            fw.costs.safety_controller,
                        )
                        .with_affinity(hce_cores)
                        .with_offset(SimDuration::from_micros(400)),
                        machine.root_cgroup(),
                    ),
                );
                if fw.protections.monitor {
                    ids.monitor = Some(
                        machine.spawn(
                            TaskSpec::periodic_fifo(
                                "security-monitor",
                                fw.priorities.monitor,
                                SimDuration::from_hz(100.0),
                                fw.costs.monitor,
                            )
                            .with_affinity(hce_cores),
                            machine.root_cgroup(),
                        ),
                    );
                }
                ids.rx = Some(
                    machine.spawn(
                        TaskSpec::sporadic_fifo(
                            "rx-thread",
                            fw.priorities.rx_thread,
                            fw.costs.rx_per_packet,
                        )
                        .with_affinity(hce_cores),
                        machine.root_cgroup(),
                    ),
                );

                // CCE: complex controller pipeline + rate loop.
                let mut fc = FlightController::new(&params, ControlGains::complex());
                fc.initialize_hover(cfg.hover, 0.0, t0);
                fc.set_setpoint(Setpoint {
                    position: cfg.hover,
                    yaw: 0.0,
                });
                cce_fc = Some(fc);
                ids.cc_pipeline = Some(container.run_task(
                    &mut machine,
                    TaskSpec::periodic_fair("cce-pipeline", sensor_period, fw.costs.cce_pipeline),
                ));
                ids.cc_rate = Some(
                    container.run_task(
                        &mut machine,
                        TaskSpec::periodic_fair(
                            "cce-rate-loop",
                            motor_period,
                            fw.costs.cce_rate_loop,
                        )
                        .with_offset(SimDuration::from_micros(800)),
                    ),
                );
                cce_sensor_rx = Some(
                    net.bind(container.netns(), SENSOR_PORT)
                        .expect("sensor port free in container"),
                );
                cce_motor_tx = Some(net.bind(container.netns(), 9002).expect("cce tx port free"));
            }
            Pilot::HceDirect => {
                // The trusted controller flies directly on the HCE.
                let mut fc = FlightController::new(&params, ControlGains::complex());
                fc.initialize_hover(cfg.hover, 0.0, t0);
                fc.set_setpoint(Setpoint {
                    position: cfg.hover,
                    yaw: 0.0,
                });
                hce_fc = Some(fc);
                ids.hce_stack = Some(
                    machine.spawn(
                        TaskSpec::periodic_fifo(
                            "hce-flight-stack",
                            50,
                            sensor_period,
                            fw.costs.hce_flight_stack,
                        )
                        .with_affinity(hce_cores)
                        .with_offset(SimDuration::from_micros(600)),
                        machine.root_cgroup(),
                    ),
                );
            }
        }

        let hover_pwm = cmd_to_pwm(params.hover_command());
        let script = cfg.attacks.entries().to_vec();
        // Pre-size the telemetry store for the whole flight so recording
        // never reallocates mid-run.
        let expected_rows = (cfg.duration.as_secs_f64() * cfg.record_hz).ceil() as usize + 2;
        let recorder = FlightRecorder::with_capacity(expected_rows);

        Runtime {
            cfg,
            world,
            machine,
            container,
            host_ns,
            hce_motor_rx,
            hce_sensor_tx,
            cce_motor_tx,
            cce_sensor_rx,
            hce_sender: Sender::new(1, 1),
            cce_sender: Sender::new(2, 1),
            hce_parser: Parser::new(),
            cce_parser: Parser::new(),
            safety_fc,
            cce_fc,
            hce_fc,
            monitor,
            cce_cmd_pwm: [hover_pwm; 4],
            last_valid_output: None,
            motor_seq: 0,
            sensor_jobs: 0,
            cce_rate_jobs: 0,
            heartbeats_received: 0,
            last_heartbeat: None,
            imu_counter: StreamCounter::default(),
            baro_counter: StreamCounter::default(),
            gps_counter: StreamCounter::default(),
            rc_counter: StreamCounter::default(),
            motor_counter: StreamCounter::default(),
            script,
            script_cursor: 0,
            armed: Vec::new(),
            attack_log: Vec::new(),
            next_src_port: ATTACK_SRC_PORT_BASE,
            ids,
            recorder,
            steps: 0,
            quanta_leaped: 0,
            frame_scratch: Vec::new(),
            flood_memo: None,
            phase_ns: [0; crate::phase::COUNT],
            obs: cd_obs::ObsPort::detached(),
            simplex_switches: 0,
        }
    }
}
