//! The attack-timeline engine: arms scheduled events at their onsets and
//! advances every armed driver each quantum.
//!
//! This replaces the old single-shot attack dispatch: the runner no longer
//! knows the attack kinds, only the [`AttackDriver`] contract, so the
//! timeline may sequence and overlap any number of attacks.

use attacks::driver::AttackCtx;
use attacks::script::AttackEvent;
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::Network;

use super::Runtime;

impl Runtime {
    /// Arms every script entry whose time has come, then steps all armed
    /// drivers by one quantum.
    pub(crate) fn step_attacks(&mut self, now: SimTime, quantum: SimDuration, net: &mut Network) {
        while let Some(entry) = self.script.get(self.script_cursor) {
            if now < entry.at {
                break;
            }
            let event = entry.event.clone();
            self.script_cursor += 1;
            self.fire(now, &event, net);
        }

        for driver in &mut self.armed {
            driver.step(net, now, quantum);
        }
    }

    /// Fires one timeline event: `CeaseFire` halts everything armed so
    /// far; anything else arms a new driver.
    fn fire(&mut self, now: SimTime, event: &AttackEvent, net: &mut Network) {
        self.attack_log.push((now, event.name()));
        if *event == AttackEvent::CeaseFire {
            self.recorder.mark(now, "attack stop: cease-fire");
            cd_obs::emit!(
                self.obs,
                now,
                cd_obs::TraceKind::AttackCease,
                event.name(),
                self.armed.len() as u64,
                0
            );
            for driver in &mut self.armed {
                driver.halt(&mut self.machine);
            }
            return;
        }

        self.recorder
            .mark(now, format!("attack start: {}", event.name()));
        cd_obs::emit!(
            self.obs,
            now,
            cd_obs::TraceKind::AttackArm,
            event.name(),
            self.script_cursor as u64,
            0
        );
        let controller_tasks = self.ids.controller_tasks();
        let src_port = self.next_src_port;
        self.next_src_port += 1;
        let mut ctx = AttackCtx {
            machine: &mut self.machine,
            net,
            container: &mut self.container,
            host_ns: self.host_ns,
            controller_tasks: &controller_tasks,
            cpu_isolation: self.cfg.framework.protections.cpu_isolation,
            src_port,
        };
        if let Some(driver) = event.arm(&mut ctx) {
            self.armed.push(driver);
        }
    }
}
