//! Framework configuration: stream rates and ports (Table I), task
//! priorities (§IV-C), execution-cost models, protections, and monitor
//! thresholds.

use membw::dram::DramConfig;
use rt_sched::task::Cost;
use sim_core::time::SimDuration;

/// UDP port on which the CCE receives sensor streams (Table I).
pub const SENSOR_PORT: u16 = 14660;
/// UDP port on which the HCE receives motor output (Table I).
pub const MOTOR_PORT: u16 = 14600;
/// The scheduler quantum every scenario runs at; shared with the perf
/// harness so steps ↔ simulated-time conversions can never drift from
/// the machine the runner actually builds.
pub const SCHED_QUANTUM: SimDuration = SimDuration::from_micros(50);

/// Stream cadences of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRates {
    /// IMU messages, Hz (paper: 250).
    pub imu_hz: f64,
    /// Barometer messages, Hz (paper: 50).
    pub baro_hz: f64,
    /// GPS (Vicon) messages, Hz (paper: 10).
    pub gps_hz: f64,
    /// RC messages, Hz (paper: 50).
    pub rc_hz: f64,
    /// Motor output, Hz (paper: 400).
    pub motor_hz: f64,
}

impl Default for StreamRates {
    fn default() -> Self {
        StreamRates {
            imu_hz: 250.0,
            baro_hz: 50.0,
            gps_hz: 10.0,
            rc_hz: 50.0,
            motor_hz: 400.0,
        }
    }
}

/// Execution-cost models for every task in the system.
///
/// Baselines approximate PX4-on-RPi3 measurements; the memory-intensity
/// (`stall_fraction`) values are the calibration surface for the memory-DoS
/// experiments and are documented per-experiment in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCosts {
    /// HCE sensor driver, per 250 Hz job.
    pub sensor_driver: Cost,
    /// HCE motor driver, per 400 Hz job.
    pub motor_driver: Cost,
    /// HCE security monitor, per 100 Hz job.
    pub monitor: Cost,
    /// HCE rx thread, per received datagram (MAVLink parse + dispatch).
    pub rx_per_packet: Cost,
    /// HCE safety controller, per 400 Hz job.
    pub safety_controller: Cost,
    /// HCE full flight stack (estimator + cascade), per 250 Hz job — the
    /// pilot task in the memory-DoS experiments.
    pub hce_flight_stack: Cost,
    /// CCE complex-controller pipeline (parse + estimate + outer loops),
    /// per 250 Hz job.
    pub cce_pipeline: Cost,
    /// CCE rate loop + motor-output send, per 400 Hz job.
    pub cce_rate_loop: Cost,
    /// Kernel housekeeping tick, per 1 kHz job (the "system interrupts"
    /// around priority 40 in §IV-C).
    pub system_tick: Cost,
}

impl Default for TaskCosts {
    fn default() -> Self {
        TaskCosts {
            sensor_driver: Cost::memory_bound(SimDuration::from_micros(350), 2.2e6, 0.70),
            motor_driver: Cost::compute(SimDuration::from_micros(60)),
            monitor: Cost::compute(SimDuration::from_micros(50)),
            rx_per_packet: Cost::memory_bound(SimDuration::from_micros(90), 1.0e6, 0.30),
            safety_controller: Cost::memory_bound(SimDuration::from_micros(320), 1.5e6, 0.55),
            hce_flight_stack: Cost::memory_bound(SimDuration::from_micros(2000), 2.8e6, 0.90),
            cce_pipeline: Cost::memory_bound(SimDuration::from_micros(900), 2.0e6, 0.60),
            cce_rate_loop: Cost::memory_bound(SimDuration::from_micros(300), 1.0e6, 0.40),
            system_tick: Cost::compute(SimDuration::from_micros(25)),
        }
    }
}

/// FIFO priorities from §IV-C: drivers 90, system interrupts ≈ 40,
/// safety controller 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Priorities {
    /// Kernel driver tasks (sensor + motor).
    pub drivers: u8,
    /// System interrupt work.
    pub system: u8,
    /// Security monitor.
    pub monitor: u8,
    /// HCE receiving thread.
    pub rx_thread: u8,
    /// Safety controller.
    pub safety: u8,
}

impl Default for Priorities {
    fn default() -> Self {
        Priorities {
            drivers: 90,
            system: 40,
            monitor: 35,
            rx_thread: 30,
            safety: 20,
        }
    }
}

/// The three protection mechanisms of §III, individually switchable for
/// the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protections {
    /// CPU: confine the CCE to its cpuset and deny RT priority.
    pub cpu_isolation: bool,
    /// Memory: MemGuard regulation of the CCE core.
    pub memguard: bool,
    /// MemGuard budget for the CCE core, fraction of bus bandwidth.
    pub memguard_budget: f64,
    /// Communication: iptables rate limit on the HCE motor port.
    pub iptables: bool,
    /// iptables admitted packet rate, packets/s.
    pub iptables_pps: f64,
    /// iptables burst size, packets.
    pub iptables_burst: f64,
    /// Security monitoring (rules + Simplex switching).
    pub monitor: bool,
}

impl Default for Protections {
    fn default() -> Self {
        Protections {
            cpu_isolation: true,
            memguard: true,
            memguard_budget: 0.05,
            iptables: true,
            iptables_pps: 2_000.0,
            iptables_burst: 200.0,
            monitor: true,
        }
    }
}

/// Security-monitor thresholds (§III-E names the two rules; the paper
/// leaves the numbers to the implementation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorThresholds {
    /// Rule 1: maximum interval between valid outputs from the CCE.
    pub max_receive_interval: SimDuration,
    /// Rule 2: maximum attitude error, rad.
    pub max_attitude_error: f64,
    /// Rule 2 persistence: the error must exceed the bound for this long.
    pub attitude_persistence: SimDuration,
}

impl Default for MonitorThresholds {
    fn default() -> Self {
        MonitorThresholds {
            max_receive_interval: SimDuration::from_millis(600),
            max_attitude_error: 20f64.to_radians(),
            attitude_persistence: SimDuration::from_millis(250),
        }
    }
}

/// Top-level framework configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkConfig {
    /// Stream rates (Table I).
    pub rates: StreamRates,
    /// Task cost models.
    pub costs: TaskCosts,
    /// FIFO priorities (§IV-C).
    pub priorities: Priorities,
    /// Protection switches.
    pub protections: Protections,
    /// Monitor thresholds.
    pub thresholds: MonitorThresholds,
    /// Which core the CCE owns ("one of the four cores is assigned
    /// exclusively for CCE use", §IV-B).
    pub cce_core: usize,
    /// DRAM model (γ is the memory-DoS calibration parameter).
    pub dram: DramConfig,
    /// HCE receive-socket queue capacity, datagrams.
    pub rx_queue_capacity: usize,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            rates: StreamRates::default(),
            costs: TaskCosts::default(),
            priorities: Priorities::default(),
            protections: Protections::default(),
            thresholds: MonitorThresholds::default(),
            cce_core: 3,
            dram: DramConfig::default(),
            rx_queue_capacity: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_match_table1() {
        let r = StreamRates::default();
        assert_eq!(r.imu_hz, 250.0);
        assert_eq!(r.baro_hz, 50.0);
        assert_eq!(r.gps_hz, 10.0);
        assert_eq!(r.rc_hz, 50.0);
        assert_eq!(r.motor_hz, 400.0);
    }

    #[test]
    fn default_priorities_match_paper() {
        let p = Priorities::default();
        assert_eq!(p.drivers, 90);
        assert_eq!(p.safety, 20);
        assert!(p.system < p.drivers && p.system > p.safety);
    }

    #[test]
    fn ports_match_table1() {
        assert_eq!(SENSOR_PORT, 14660);
        assert_eq!(MOTOR_PORT, 14600);
    }

    #[test]
    fn all_protections_default_on() {
        let p = Protections::default();
        assert!(p.cpu_isolation && p.memguard && p.iptables && p.monitor);
    }
}
