//! Allocation regression test: after warmup, the simulation hot loop must
//! run entirely out of reused scratch state — pooled packet buffers,
//! incrementally maintained ready queues, pre-sized telemetry vectors.
//!
//! A counting global allocator measures exactly one simulated second of
//! steady state — once for the healthy scenario and once under the
//! Figure 7 UDP flood (locking in the shared-payload flood fast-path) —
//! and demands **zero** heap allocations. If any future change sneaks a
//! per-tick allocation back into the machine/network/runner path, these
//! tests name the regression immediately.
//!
//! The fleet-level twin of this gate lives in
//! `crates/fleet/tests/zero_alloc.rs` (it must sit in the `cd-fleet`
//! crate, which depends on this one): same counting allocator, measuring
//! a flooded multi-vehicle fleet's per-quantum step.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use containerdrone_core::runner::Scenario;
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::SimTime;

/// The allocation counter is process-global, so the two measurement
/// windows must never overlap: each test serializes on this lock.
static MEASUREMENT: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System` with the caller's exact
// layout/pointer arguments, so `System`'s contract is upheld verbatim;
// the only addition is a relaxed atomic increment, which allocates
// nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn healthy_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    let mut run = Scenario::new(ScenarioConfig::healthy()).start();

    // Warmup: scratch vectors grow to steady-state capacity, the packet
    // pool fills, the parser buffers settle.
    run.advance_to(SimTime::from_secs(3));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    run.advance_to(SimTime::from_secs(4)); // one simulated second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state loop allocated {} times in one simulated second",
        after - before
    );

    // The run is still healthy, not silently degenerate.
    let result = run.finish();
    assert!(!result.crashed());
    assert!(result.sim_steps >= 4 * 20_000, "4 s at 50 µs quanta");
}

/// The time-leap executor's counterpart of the healthy gate: one
/// simulated second advanced span-by-span ([`RunningScenario::
/// advance_to_leap`]) must also be allocation-free. The leap path has
/// its own scratch state beyond the stepped loop's — the pinned
/// assignment's demand set, the replayed memory progress, the captured
/// fair dispatch order — all of which must come from pre-sized,
/// persistent buffers.
#[test]
fn healthy_leap_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    let mut run = Scenario::new(ScenarioConfig::healthy()).start();

    // Warmup on the same executor the window measures, so every
    // leap-path scratch vector has reached steady-state capacity.
    run.advance_to_leap(SimTime::from_secs(3));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    run.advance_to_leap(SimTime::from_secs(4)); // one simulated second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "leap steady-state loop allocated {} times in one simulated second",
        after - before
    );

    // The window really ran the leap executor, not a degenerate step loop.
    let result = run.finish();
    assert!(!result.crashed());
    assert!(result.sim_steps >= 4 * 20_000, "4 s at 50 µs quanta");
    assert!(
        result.quanta_leaped * 2 > result.sim_steps,
        "a healthy leap run must leap most quanta: {} of {}",
        result.quanta_leaped,
        result.sim_steps
    );
}

/// The flood fast-path counterpart: one simulated second of the Figure 7
/// UDP flood in steady state must also be allocation-free. The warmup is
/// pool-aware — it runs well past the 8 s attack onset and the Simplex
/// switch, so the link queues have grown to their flood depth, the
/// receive queue has filled to capacity, the shared flood payload is
/// armed, and the one-off switch/violation records have been written.
#[test]
fn udp_flood_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    let mut run = Scenario::new(ScenarioConfig::fig7()).start();

    // fig7: flood onset at 8 s, monitor switch shortly after. By 12 s the
    // attack has been in steady state for seconds.
    run.advance_to(SimTime::from_secs(12));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    run.advance_to(SimTime::from_secs(13)); // one simulated flood second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "flood steady-state loop allocated {} times in one simulated second",
        after - before
    );

    // The window really was under attack and the framework really did
    // its thing — not a silently degenerate run.
    let result = run.finish();
    assert!(!result.crashed());
    assert!(result.switch_time.is_some(), "monitor never switched");
    assert!(
        result.flood_sent > 4 * 20_000,
        "flood offered only {} packets",
        result.flood_sent
    );
    assert!(
        result.rx_socket_stats.dropped_ratelimit > 0,
        "iptables limit never engaged"
    );
}

/// The bulk flood-span counterpart: one simulated second of the Figure 7
/// flood advanced span-by-span — closed-form machine leaps, batched
/// emission replay ([`AttackDriver::span_emit`]), run-length-encoded
/// link entries and closed-form token-bucket settlement — must also be
/// allocation-free. This is the gate the PR's O(1)-per-span flood
/// arithmetic has to clear: a span that materialized its packets (or a
/// memo that grew per datagram) would show up here as per-quantum heap
/// traffic.
#[test]
fn udp_flood_leap_steady_state_allocates_nothing() {
    let _window = MEASUREMENT.lock().expect("serialize measurement");
    let mut run = Scenario::new(ScenarioConfig::fig7()).start();

    // Warmup on the leap executor itself, well past onset and switch:
    // flood-span scratch (the driver's replay cursor, the RLE front,
    // the machine's captured fair order) reaches steady capacity.
    run.advance_to_leap(SimTime::from_secs(12));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let leaped_before = run.vehicle().sched_obs().leaped_quanta;
    assert!(before > 0, "counter must have registered setup allocations");
    run.advance_to_leap(SimTime::from_secs(13)); // one simulated flood second
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let leaped_in_window = run.vehicle().sched_obs().leaped_quanta - leaped_before;

    assert_eq!(
        after - before,
        0,
        "bulk flood-span loop allocated {} times in one simulated second",
        after - before
    );
    // The window really took flood spans — the gate must cover the bulk
    // path, not a degenerate per-quantum fallback.
    assert!(
        leaped_in_window * 2 > 20_000,
        "the flood window must leap most of its quanta: {leaped_in_window} of 20000"
    );

    let result = run.finish();
    assert!(!result.crashed());
    assert!(result.switch_time.is_some(), "monitor never switched");
    assert!(
        result.flood_sent > 4 * 20_000,
        "flood offered only {} packets",
        result.flood_sent
    );
}
