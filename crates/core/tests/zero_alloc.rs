//! Allocation regression test: after warmup, the simulation hot loop must
//! run entirely out of reused scratch state — pooled packet buffers,
//! incrementally maintained ready queues, pre-sized telemetry vectors.
//!
//! A counting global allocator measures exactly one simulated second of
//! the healthy scenario in steady state and demands **zero** heap
//! allocations. If any future change sneaks a per-tick allocation back
//! into the machine/network/runner path, this test names the regression
//! immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use containerdrone_core::runner::Scenario;
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::SimTime;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn healthy_steady_state_allocates_nothing() {
    let mut run = Scenario::new(ScenarioConfig::healthy()).start();

    // Warmup: scratch vectors grow to steady-state capacity, the packet
    // pool fills, the parser buffers settle.
    run.advance_to(SimTime::from_secs(3));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(before > 0, "counter must have registered setup allocations");
    run.advance_to(SimTime::from_secs(4)); // one simulated second
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state loop allocated {} times in one simulated second",
        after - before
    );

    // The run is still healthy, not silently degenerate.
    let result = run.finish();
    assert!(!result.crashed());
    assert!(result.sim_steps >= 4 * 20_000, "4 s at 50 µs quanta");
}
