//! Smoke tests for the scenario runner: short flights exercising both
//! pilot modes, result plumbing and telemetry integrity — fast checks that
//! complement the full 30 s reproductions under `/tests`.

use containerdrone_core::prelude::*;
use sim_core::time::{SimDuration, SimTime};

fn short(cfg: ScenarioConfig) -> ScenarioResult {
    Scenario::new(cfg.with_duration(SimDuration::from_secs(3))).run()
}

#[test]
fn cce_simplex_mode_spawns_the_full_task_set() {
    let r = short(ScenarioConfig::healthy());
    let names: Vec<&str> = r.task_report.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "sensor-driver",
        "motor-driver",
        "security-monitor",
        "rx-thread",
        "safety-controller",
        "cce-pipeline",
        "cce-rate-loop",
    ] {
        assert!(
            names.contains(&expected),
            "missing task {expected}: {names:?}"
        );
    }
    assert!(!names.contains(&"hce-flight-stack"));
}

#[test]
fn hce_direct_mode_spawns_the_pilot_stack_only() {
    let r = short(ScenarioConfig::fig4());
    let names: Vec<&str> = r.task_report.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"hce-flight-stack"));
    assert!(
        !names.contains(&"cce-pipeline"),
        "no CCE controller in fig4/5 mode"
    );
    assert!(!names.contains(&"rx-thread"));
}

#[test]
fn every_task_actually_runs() {
    let r = short(ScenarioConfig::healthy());
    for (name, stats) in &r.task_report {
        assert!(
            stats.completions > 0,
            "task {name} never completed a job: {stats:?}"
        );
    }
}

#[test]
fn telemetry_is_sampled_at_the_configured_rate() {
    let r = short(ScenarioConfig::healthy());
    // 3 s at 50 Hz: one row per 20 ms (within one sample of the ideal).
    let rows = r.telemetry.series().rows();
    assert!((145..=152).contains(&rows), "rows {rows}");
    // Time column strictly increasing (checked by construction, but make
    // sure the CSV round-trips the full row count).
    let csv = r.telemetry.to_csv();
    assert_eq!(csv.lines().count(), rows + 1 + r.telemetry.markers().len());
}

#[test]
fn summary_mentions_the_key_facts() {
    let r = short(ScenarioConfig::fig6());
    let s = r.summary();
    assert!(s.contains("outcome:"));
    assert!(s.contains("attack onset: 12"));
    assert!(s.contains("idle rates:"));
}

#[test]
fn monitor_disabled_spawns_no_monitor_task() {
    let mut cfg = ScenarioConfig::healthy();
    cfg.framework.protections.monitor = false;
    let r = short(cfg);
    let names: Vec<&str> = r.task_report.iter().map(|(n, _)| n.as_str()).collect();
    assert!(!names.contains(&"security-monitor"));
}

#[test]
fn attack_before_end_of_short_run_is_launched() {
    let mut cfg = ScenarioConfig::fig6();
    cfg.attacks = AttackScript::single(SimTime::from_secs(1), AttackEvent::KillComplex);
    let r = short(cfg);
    assert_eq!(r.attack_onset, Some(SimTime::from_secs(1)));
    assert!(r
        .telemetry
        .markers()
        .iter()
        .any(|m| m.label == "attack start: kill-complex"));
    // 3 s run: kill at 1 s, switch by ~1.6 s.
    assert!(r.switch_time.is_some());
}

#[test]
fn stream_rates_scale_with_duration() {
    let r = short(ScenarioConfig::healthy());
    let imu = r.streams.iter().find(|s| s.name == "IMU").unwrap();
    assert!((imu.measured_hz - 250.0).abs() < 5.0, "{}", imu.measured_hz);
    let motor = r.streams.iter().find(|s| s.name == "Motor Output").unwrap();
    assert!(
        (motor.measured_hz - 400.0).abs() < 8.0,
        "{}",
        motor.measured_hz
    );
}

#[test]
fn rx_socket_sees_exactly_the_motor_stream_when_healthy() {
    let r = short(ScenarioConfig::healthy());
    let stats = r.rx_socket_stats;
    assert_eq!(stats.dropped_overflow, 0);
    assert_eq!(stats.dropped_ratelimit, 0);
    // Motor frames at 400 Hz plus 1 Hz heartbeats.
    let expected = 3 * 400 + 3;
    let got = stats.delivered as i64;
    assert!(
        (got - expected).abs() <= 8,
        "delivered {got}, expected ≈{expected}"
    );
}

#[test]
fn determinism_holds_for_short_runs_too() {
    let a = short(ScenarioConfig::healthy());
    let b = short(ScenarioConfig::healthy());
    assert_eq!(a.telemetry.to_csv(), b.telemetry.to_csv());
}
