//! Criterion benchmarks for the table artifacts: the Table I measurement
//! flight and the Table II overhead measurements, each asserting its
//! qualitative outcome so `cargo bench` smoke-checks the tables too.

use container_rt::prelude::*;
use containerdrone_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rt_sched::prelude::*;
use sim_core::time::{SimDuration, SimTime};
use std::hint::black_box;
use virt_net::prelude::*;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_stream_rates", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(5));
            let r = Scenario::new(cfg).run();
            let imu = r.streams.iter().find(|s| s.name == "IMU").unwrap();
            assert!((imu.measured_hz - 250.0).abs() < 10.0);
            assert_eq!(imu.frame_bytes, 52.0);
            black_box(r.streams.len())
        });
    });
    group.finish();
}

fn measure_idle(seconds: u64, setup: impl FnOnce(&mut Machine, &mut Network)) -> Vec<f64> {
    let mut machine = Machine::new(MachineConfig::default());
    let mut net = Network::new();
    spawn_system_background(&mut machine);
    setup(&mut machine, &mut net);
    let mut ev = Vec::new();
    machine.step_until(SimTime::from_secs(1), &mut ev);
    machine.reset_accounting();
    machine.step_until(SimTime::from_secs(1 + seconds), &mut ev);
    machine.idle_rates()
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_overhead", |b| {
        b.iter(|| {
            let native = measure_idle(2, |_, _| {});
            let vm = measure_idle(2, |m, _| {
                Vm::start(m, VmConfig::default());
            });
            let container = measure_idle(2, |m, n| {
                let host = n.add_namespace("host");
                let _c = Container::create(m, n, host, ContainerConfig::cce(3));
            });
            // Table II shape: VM overhead dominates.
            assert!(vm[3] < container[3] - 0.05);
            black_box((native, vm, container))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
