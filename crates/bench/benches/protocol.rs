//! Criterion benchmarks for the protocol layer: frame encode/decode and
//! streaming-parser throughput — the per-packet costs that bound how fast
//! a flood can hurt the rx thread.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mavlink_lite::prelude::*;
use std::hint::black_box;

fn imu_message() -> Message {
    Message::Imu(RawImu {
        time_usec: 123_456,
        gyro: [0.01, -0.02, 0.03],
        accel: [0.1, 0.2, -9.8],
        mag: [0.2, 0.0, 0.4],
    })
}

fn motor_message() -> Message {
    Message::Motor(MotorOutput {
        time_usec: 123_456,
        pwm: [1500, 1480, 1520, 1490],
        seq: 42,
        armed: 1,
    })
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/encode");
    for (name, msg) in [("imu_52B", imu_message()), ("motor_29B", motor_message())] {
        let mut tx = Sender::new(1, 1);
        group.throughput(Throughput::Bytes(
            (msg.payload_len() + mavlink_lite::FRAME_OVERHEAD) as u64,
        ));
        group.bench_function(name, |b| {
            b.iter(|| black_box(tx.encode(black_box(msg))));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/decode");
    for (name, msg) in [("imu_52B", imu_message()), ("motor_29B", motor_message())] {
        let wire = Sender::new(1, 1).encode(msg);
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| mavlink_lite::Frame::decode(black_box(&wire)).unwrap());
        });
    }
    group.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/parser");

    // A healthy second of motor output: 400 frames back to back.
    let mut tx = Sender::new(1, 1);
    let clean: Vec<u8> = (0..400).flat_map(|_| tx.encode(motor_message())).collect();
    group.throughput(Throughput::Bytes(clean.len() as u64));
    group.bench_function("clean_stream_400_frames", |b| {
        b.iter(|| {
            let mut p = Parser::new();
            black_box(p.push(black_box(&clean)))
        });
    });

    // A flooded second: the same frames drowned in garbage datagrams.
    let mut flooded = Vec::new();
    for chunk in clean.chunks(29) {
        flooded.extend_from_slice(&[0u8; 64]);
        flooded.extend_from_slice(chunk);
    }
    group.throughput(Throughput::Bytes(flooded.len() as u64));
    group.bench_function("flooded_stream", |b| {
        b.iter(|| {
            let mut p = Parser::new();
            black_box(p.push(black_box(&flooded)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_parser);
criterion_main!(benches);
