//! Criterion benchmarks for the ablation scenarios (the design-choice
//! studies DESIGN.md commits to): CPU protection and MemGuard budget.

use attacks::cpu_hog::CpuHog;
use containerdrone_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::time::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_cpu_protection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("cpu_protection", |b| {
        b.iter(|| {
            let mut protected = ScenarioConfig::builder()
                .attack_at(
                    SimTime::from_secs(2),
                    AttackEvent::CpuHog(CpuHog::aggressive()),
                )
                .duration(SimDuration::from_secs(8))
                .build();
            let mut unprotected = protected.clone();
            protected.framework.protections.cpu_isolation = true;
            unprotected.framework.protections.cpu_isolation = false;

            let p = Scenario::new(protected).run();
            let u = Scenario::new(unprotected).run();
            let skips = |r: &ScenarioResult| {
                r.task_report
                    .iter()
                    .find(|(n, _)| n == "safety-controller")
                    .map(|(_, s)| s.skips)
                    .unwrap_or(0)
            };
            assert_eq!(skips(&p), 0, "protected run never starves");
            assert!(skips(&u) > 100, "ablated run starves");
            black_box((skips(&p), skips(&u)))
        });
    });
    group.finish();
}

fn bench_memguard_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("memguard_budget_sweep", |b| {
        b.iter(|| {
            let mut devs = Vec::new();
            for budget in [0.02, 0.10, 0.35] {
                let mut cfg = ScenarioConfig::fig5().with_duration(SimDuration::from_secs(8));
                cfg.attacks = AttackScript::single(
                    SimTime::from_secs(2),
                    AttackEvent::MemoryHog(attacks::membw_hog::BandwidthHog::isolbench()),
                );
                cfg.framework.protections.memguard_budget = budget;
                let r = Scenario::new(cfg).run();
                devs.push(r.max_deviation(SimTime::from_secs(2), SimTime::from_secs(8)));
            }
            black_box(devs)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cpu_protection, bench_memguard_budget);
criterion_main!(benches);
