//! Criterion benchmarks running each *figure scenario* end to end (shorter
//! windows than the paper's 30 s, sized for benchmarking). Each bench also
//! sanity-asserts the scenario's expected qualitative outcome, so
//! `cargo bench` doubles as a smoke reproduction of Figures 4–7.

use containerdrone_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::time::{SimDuration, SimTime};
use std::hint::black_box;

/// Shifts every attack on a scenario's timeline to `attack_at` and trims
/// the duration so the qualitative outcome still happens inside the
/// benched window.
fn shortened(mut cfg: ScenarioConfig, attack_at: u64, duration: u64) -> ScenarioConfig {
    let mut script = AttackScript::new();
    for entry in cfg.attacks.entries() {
        script = script.at(SimTime::from_secs(attack_at), entry.event.clone());
    }
    cfg.attacks = script;
    cfg.with_duration(SimDuration::from_secs(duration))
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig4_mem_attack_unprotected", |b| {
        b.iter(|| {
            let r = Scenario::new(shortened(ScenarioConfig::fig4(), 2, 20)).run();
            assert!(r.crashed(), "fig4 shape: crash");
            black_box(r.max_deviation(SimTime::from_secs(2), SimTime::from_secs(20)))
        });
    });

    group.bench_function("fig5_mem_attack_memguard", |b| {
        b.iter(|| {
            let r = Scenario::new(shortened(ScenarioConfig::fig5(), 2, 10)).run();
            assert!(!r.crashed(), "fig5 shape: stable");
            black_box(r.max_deviation(SimTime::from_secs(2), SimTime::from_secs(10)))
        });
    });

    group.bench_function("fig6_controller_kill", |b| {
        b.iter(|| {
            let r = Scenario::new(shortened(ScenarioConfig::fig6(), 3, 12)).run();
            assert!(!r.crashed() && r.switch_time.is_some(), "fig6 shape: failover");
            black_box(r.switch_time)
        });
    });

    group.bench_function("fig7_udp_flood", |b| {
        b.iter(|| {
            let r = Scenario::new(shortened(ScenarioConfig::fig7(), 3, 12)).run();
            assert!(!r.crashed() && r.switch_time.is_some(), "fig7 shape: failover");
            black_box(r.flood_sent)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
