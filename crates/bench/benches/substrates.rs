//! Criterion benchmarks for the substrate simulators: scheduler stepping,
//! the DRAM/MemGuard model, quadrotor physics, and the network stack.
//! These bound the wall-clock cost of a full co-simulated flight second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membw::prelude::*;
use rt_sched::prelude::*;
use sim_core::time::{SimDuration, SimTime};
use std::hint::black_box;
use uav_dynamics::prelude::*;
use virt_net::prelude::*;

/// The ContainerDrone HCE-like task set on 4 cores.
fn loaded_machine() -> Machine {
    let mut m = Machine::new(MachineConfig::default());
    let root = m.root_cgroup();
    m.spawn(
        TaskSpec::periodic_fifo("drv", 90, SimDuration::from_hz(250.0),
            Cost::memory_bound(SimDuration::from_micros(350), 2.2e6, 0.7)),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fifo("motor", 90, SimDuration::from_hz(400.0),
            Cost::compute(SimDuration::from_micros(60))),
        root,
    );
    m.spawn(
        TaskSpec::periodic_fifo("safety", 20, SimDuration::from_hz(400.0),
            Cost::memory_bound(SimDuration::from_micros(320), 1.5e6, 0.55)),
        root,
    );
    let cce = m.add_cgroup(Cgroup::container("cce", CpuSet::single(3)));
    m.spawn(
        TaskSpec::busy_fair("hog", Cost::streaming(SimDuration::from_secs(1), 14.0e6, 0.95)),
        cce,
    );
    m
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/scheduler");
    group.throughput(Throughput::Elements(20_000)); // quanta per simulated second
    group.bench_function("simulated_second_4core_taskset", |b| {
        b.iter_batched(
            loaded_machine,
            |mut m| {
                let mut ev = Vec::new();
                m.step_until(SimTime::from_secs(1), &mut ev);
                black_box(ev.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/membw");
    let demands = [
        CoreDemand { bandwidth: 2.2e6, stall_fraction: 0.7, streaming: false },
        CoreDemand { bandwidth: 1.5e6, stall_fraction: 0.55, streaming: false },
        CoreDemand::default(),
        CoreDemand { bandwidth: 14.0e6, stall_fraction: 0.95, streaming: true },
    ];
    for memguard in [false, true] {
        let name = if memguard { "quantum_with_memguard" } else { "quantum_unregulated" };
        group.bench_function(name, |b| {
            let dram = DramConfig::default();
            let mut mem = MemorySystem::new(4, dram);
            if memguard {
                mem.enable_memguard(MemGuardConfig::single_core(4, 3, 0.05, &dram));
            }
            let mut t = SimTime::ZERO;
            let dt = SimDuration::from_micros(50);
            b.iter(|| {
                let out = mem.quantum(t, dt, black_box(&demands));
                t += dt;
                black_box(out)
            });
        });
    }
    group.finish();
}

fn bench_physics(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/dynamics");
    group.throughput(Throughput::Elements(2000)); // 2 kHz steps per second
    group.bench_function("simulated_second_2khz", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(WorldConfig::default(), 7);
                w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
                w.set_motor_commands([w.quad_params().hover_command(); 4]);
                w
            },
            |mut w| {
                w.advance_to(SimTime::from_secs(1));
                black_box(w.truth().position)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("imu_sample", |b| {
        let mut w = World::new(WorldConfig::default(), 7);
        w.start_at_hover(Vec3::new(0.0, 0.0, -1.0));
        b.iter(|| black_box(w.sample_imu()));
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/network");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("send_deliver_1000_datagrams", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new();
                let host = net.add_namespace("host");
                let cce = net.add_namespace("cce");
                net.connect(host, cce, LinkConfig::default());
                let rx = net.bind_with_capacity(host, 14600, 2048).unwrap();
                let tx = net.bind(cce, 9000).unwrap();
                (net, host, rx, tx)
            },
            |(mut net, host, rx, tx)| {
                for i in 0..1000u64 {
                    let t = SimTime::from_micros(i * 50);
                    net.send(tx, Addr { ns: host, port: 14600 }, vec![0u8; 29], t).unwrap();
                }
                net.step(SimTime::from_secs(1));
                black_box(net.socket_stats(rx).delivered)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_memory_system,
    bench_physics,
    bench_network
);
criterion_main!(benches);
