//! Campaign-layer integration tests: parallel execution determinism and
//! grid semantics against real scenario runs.

use cd_bench::CampaignSpec;
use containerdrone_core::prelude::*;
use sim_core::time::{SimDuration, SimTime};

fn kill_at_2s(seed: u64) -> ScenarioConfig {
    ScenarioConfig::builder()
        .attack_at(SimTime::from_secs(2), AttackEvent::KillComplex)
        .duration(SimDuration::from_secs(5))
        .seed(seed)
        .build()
}

#[test]
fn identical_seeds_yield_identical_results_across_the_pool() {
    // N copies of the same scenario spread over several workers must
    // produce bit-identical telemetry: the simulations share nothing.
    let n = 8;
    let mut spec = CampaignSpec::new("determinism");
    for i in 0..n {
        spec = spec.variant(format!("copy{i}"), kill_at_2s(2019));
    }
    let report = spec.run_with_threads(4);
    assert_eq!(report.outcomes.len(), n);
    let reference = report.outcomes[0].result.telemetry.to_csv();
    for o in &report.outcomes[1..] {
        assert_eq!(
            o.result.telemetry.to_csv(),
            reference,
            "{} diverged from copy0",
            o.label
        );
    }
    assert!(report
        .outcomes
        .iter()
        .all(|o| o.result.switch_time.is_some()));
}

#[test]
fn parallel_and_serial_execution_agree() {
    let build = || {
        CampaignSpec::new("agree")
            .variant("kill-2019", kill_at_2s(2019))
            .variant("kill-7", kill_at_2s(7))
            .variant(
                "healthy",
                ScenarioConfig::healthy().with_duration(SimDuration::from_secs(3)),
            )
    };
    let serial = build().run_serial();
    let parallel = build().run_with_threads(3);
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.result.telemetry.to_csv(), p.result.telemetry.to_csv());
        assert_eq!(s.result.switch_time, p.result.switch_time);
    }
}

#[test]
fn product_grid_runs_every_cell() {
    let base = ScenarioConfig::builder()
        .duration(SimDuration::from_secs(3))
        .build();
    let stock = Protections::default();
    let mut no_monitor = stock;
    no_monitor.monitor = false;
    let spec = CampaignSpec::product(
        "grid",
        &base,
        &[
            ("none", AttackScript::none()),
            (
                "kill",
                AttackScript::single(SimTime::from_secs(1), AttackEvent::KillComplex),
            ),
        ],
        &[("stock", stock), ("no-monitor", no_monitor)],
        &[2019, 7],
    );
    assert_eq!(spec.len(), 8);
    let report = spec.run();

    // Healthy cells never switch; killed cells switch only when the
    // monitor protection is on.
    for o in &report.outcomes {
        let switched = o.result.switch_time.is_some();
        let expected = o.label.starts_with("kill/stock");
        assert_eq!(switched, expected, "{}: switch={switched}", o.label);
    }
}
