//! Shared harness code for the table/figure regeneration binaries.
//!
//! Every evaluation artifact of the paper has a binary in `src/bin/`:
//!
//! | Binary | Artifact |
//! |--------|----------|
//! | `table1` | Table I — stream rates/sizes/ports |
//! | `table2` | Table II — per-core idle: native vs VM vs container |
//! | `fig4`   | Fig. 4 — memory DoS, MemGuard off (crash) |
//! | `fig5`   | Fig. 5 — memory DoS, MemGuard on (stable) |
//! | `fig6`   | Fig. 6 — complex controller killed (failover) |
//! | `fig7`   | Fig. 7 — UDP flood (failover) |
//! | `ablation_cpu` | CPU protection on/off |
//! | `ablation_comm` | iptables on/off under flood |
//! | `ablation_monitor` | monitor rules on/off |
//! | `ablation_memguard` | MemGuard budget sweep |
//! | `all`   | everything above, writing CSVs to `results/` |

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use containerdrone_core::runner::ScenarioResult;
use sim_core::time::SimTime;

pub mod campaign;
pub mod cli;

pub use campaign::{CampaignOutcome, CampaignReport, CampaignSpec};

/// Renders an ASCII table with a header row.
///
/// # Examples
///
/// ```
/// let t = cd_bench::ascii_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()]],
/// );
/// assert!(t.contains("| a"));
/// ```
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, cell) in widths.iter().zip(cells) {
            let _ = write!(s, " {cell:<w$} |");
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Resolves the results directory from an optional `CD_RESULTS_DIR`
/// override value (empty counts as unset).
fn resolve_results_dir(overridden: Option<&str>) -> PathBuf {
    match overridden {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

/// The results directory (created on demand): `$CD_RESULTS_DIR` when set
/// and non-empty, otherwise `results/` at the workspace root.
pub fn results_dir() -> PathBuf {
    let overridden = std::env::var("CD_RESULTS_DIR").ok();
    let dir = resolve_results_dir(overridden.as_deref());
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes `content` to `results/<name>` and reports the path on stdout.
pub fn write_result(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write result file");
    println!("wrote {}", path.display());
}

/// Prints a rendered table and persists it as `results/<stem>.txt` — the
/// standard tail of every ablation/analysis binary.
pub fn emit_table(stem: &str, table: &str) {
    print!("{table}");
    write_result(&format!("{stem}.txt"), table);
}

/// The standard fleet timelines shared by the `fleet` campaign bin and
/// the perf harness's fleet rows, so both always measure the same cells.
pub mod fleet_timelines {
    use attacks::fleet::{FleetScript, FleetTarget};
    use attacks::membw_hog::BandwidthHog;
    use attacks::script::AttackEvent;
    use attacks::udp_flood::UdpFlood;
    use sim_core::time::{SimDuration, SimTime};

    /// A UDP flood that hops to the next vehicle every second, starting
    /// at 2 s.
    pub fn rolling_flood() -> FleetScript {
        FleetScript::new().at(
            SimTime::from_secs(2),
            FleetTarget::Rolling {
                period: SimDuration::from_secs(1),
            },
            AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
        )
    }

    /// The rolling flood plus two targeted strikes: a memory hog on
    /// vehicle 10 at 3 s and a controller kill on vehicle 20 at 4 s.
    ///
    /// The strike targets sit outside the flood's first rotation windows
    /// so that, at N ≥ 25, the rolling `CeaseFire`s do not clip the hog
    /// (a `CeaseFire` halts *every* armed attack on its vehicle). On
    /// small fleets the modulo wrap folds the strikes onto early rotation
    /// victims and the hog runs only until that vehicle's next window
    /// boundary — an inherent property of attacking a small fleet with
    /// overlapping placements, not a measurement artifact.
    pub fn mixed() -> FleetScript {
        rolling_flood()
            .at(
                SimTime::from_secs(3),
                FleetTarget::Vehicle(10),
                AttackEvent::MemoryHog(BandwidthHog::isolbench()),
            )
            .at(
                SimTime::from_secs(4),
                FleetTarget::Vehicle(20),
                AttackEvent::KillComplex,
            )
    }

    /// The adversarial-airspace campaign: external attacker nodes jam
    /// two swarm ports (vehicles 0 and 10, 2 s and 2.5 s) and flood one
    /// GCS uplink (vehicle 5 at 2 s, cease-fire at 4.5 s), over a fleet
    /// flying V2V coordination streams. Requires a fleet configured
    /// `.with_swarm(..)` — [`super::swarm_fleet_config`] assembles the
    /// whole cell.
    pub fn swarm_jam() -> FleetScript {
        FleetScript::new()
            .at(
                SimTime::from_secs(2),
                FleetTarget::SwarmJam(0),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            )
            .at(
                SimTime::from_millis(2500),
                FleetTarget::SwarmJam(10),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            )
            .at(
                SimTime::from_secs(2),
                FleetTarget::GcsUplink(5),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            )
            .at(
                SimTime::from_millis(4500),
                FleetTarget::GcsUplink(5),
                AttackEvent::CeaseFire,
            )
    }
}

/// The standard swarm-jam fleet cell shared by the `fleet` campaign bin
/// and the perf harness's `fleet-*-swarm-jam` rows: `n` vehicles flying
/// ring-topology V2V streams under the
/// [`fleet_timelines::swarm_jam`] external-attacker campaign.
pub fn swarm_fleet_config(
    base: containerdrone_core::scenario::ScenarioConfig,
    n: usize,
) -> cd_fleet::FleetConfig {
    cd_fleet::FleetConfig::new(base, n)
        .with_script(fleet_timelines::swarm_jam())
        .with_swarm(cd_fleet::SwarmConfig::default())
}

/// The standard campaign grid shared by the `campaign` speedup bin and
/// the perf harness: attacks × protections × seeds over a healthy base,
/// with half the variants scheduling **two** attacks (memory hog at 3 s,
/// then controller kill at 6 s) in a single run.
pub fn standard_grid(
    name: &str,
    duration: sim_core::time::SimDuration,
    seeds: &[u64],
) -> CampaignSpec {
    use attacks::membw_hog::BandwidthHog;
    use attacks::script::{AttackEvent, AttackScript};
    use containerdrone_core::scenario::ScenarioConfig;
    use containerdrone_core::Protections;
    use sim_core::time::SimTime;

    let base = ScenarioConfig::builder().duration(duration).build();
    let kill_only = AttackScript::single(SimTime::from_secs(3), AttackEvent::KillComplex);
    let hog_then_kill = AttackScript::new()
        .at(
            SimTime::from_secs(3),
            AttackEvent::MemoryHog(BandwidthHog::isolbench()),
        )
        .at(SimTime::from_secs(6), AttackEvent::KillComplex);
    let stock = Protections::default();
    let mut no_monitor = stock;
    no_monitor.monitor = false;
    CampaignSpec::product(
        name,
        &base,
        &[("kill", kill_only), ("hog+kill", hog_then_kill)],
        &[("stock", stock), ("no-monitor", no_monitor)],
        seeds,
    )
}

/// Prints the standard figure narration: outcome, switch, events, and the
/// X/Y/Z deviation profile the paper plots.
pub fn narrate_figure(title: &str, paper_expectation: &str, result: &ScenarioResult) {
    println!("── {title} ──");
    println!("paper: {paper_expectation}");
    print!("{}", result.summary());
    let end = SimTime::from_secs(30);
    for axis in ["x", "y", "z"] {
        let full = result
            .telemetry
            .max_tracking_error(axis, SimTime::from_secs(2), end);
        println!("max |{axis}_true − {axis}_sp| = {full:.3} m");
    }
    if let Some(at) = result.attack_onset {
        println!(
            "deviation before attack: {:.3} m | after: {:.3} m",
            result.max_deviation(SimTime::from_secs(2), at),
            result.max_deviation(at, end)
        );
    }
    println!();
}

/// Saves a figure's telemetry CSV under `results/`.
pub fn save_figure_csv(name: &str, result: &ScenarioResult) {
    write_result(name, &result.telemetry.to_csv());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_aligns_columns() {
        let t = ascii_table(
            &["col", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], lines[2], "separators match");
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "rectangular"
        );
        assert!(t.contains("| long-name |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ascii_table_validates_width() {
        let _ = ascii_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn results_dir_honours_env_override() {
        // The env-reading wrapper is exercised end-to-end by the bins;
        // the resolution rules are tested here without mutating
        // process-global state.
        assert_eq!(
            resolve_results_dir(Some("/tmp/cd-override")),
            Path::new("/tmp/cd-override")
        );
        assert!(resolve_results_dir(None).ends_with("results"));
        assert!(
            resolve_results_dir(Some("")).ends_with("results"),
            "empty override falls back to the default"
        );
    }
}
