//! Minimal shared argument parsing for the `cd-bench` binaries.
//!
//! Every bin takes the same shape of command line — boolean switches
//! (`--smoke`, `--merge`) and valued flags (`--out X`, `--repeat 3`) —
//! and used to hand-roll the scanning. This module is the one copy.

use std::fmt::Display;
use std::str::FromStr;

/// The binary's arguments (everything after the program name).
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// `true` if the boolean switch is present.
    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    /// The value following a `--flag value` pair, if present.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Parses the value of `--flag value`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value does not parse —
    /// these are developer-facing harness binaries, not a public CLI.
    pub fn parsed<T>(&self, flag: &str) -> Option<T>
    where
        T: FromStr,
        T::Err: Display,
    {
        self.value(flag)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("{flag} {v}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_vec(s.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn switches_and_values_parse() {
        let a = args(&["--smoke", "--repeat", "5", "--out", "B.json"]);
        assert!(a.has("--smoke"));
        assert!(!a.has("--merge"));
        assert_eq!(a.value("--out"), Some("B.json"));
        assert_eq!(a.parsed::<usize>("--repeat"), Some(5));
        assert_eq!(a.parsed::<usize>("--missing"), None);
    }

    #[test]
    #[should_panic(expected = "--repeat")]
    fn bad_value_panics_with_the_flag_name() {
        let _ = args(&["--repeat", "many"]).parsed::<usize>("--repeat");
    }
}
