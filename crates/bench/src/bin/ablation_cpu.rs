//! Ablation A1 — CPU protection (cgroup cpuset + no-RT): an aggressive CPU
//! hog (4 spinners requesting FIFO 95) launched at 8 s, with the
//! protection on vs off.

use attacks::cpu_hog::CpuHog;
use cd_bench::{ascii_table, write_result};
use containerdrone_core::prelude::*;
use sim_core::time::SimTime;

fn run(cpu_isolation: bool) -> (bool, u64, f64) {
    let mut cfg = ScenarioConfig {
        attack: Attack::CpuHog {
            at: SimTime::from_secs(8),
            hog: CpuHog::aggressive(),
        },
        ..ScenarioConfig::healthy()
    };
    cfg.framework.protections.cpu_isolation = cpu_isolation;
    let r = Scenario::new(cfg).run();
    let safety_skips = r
        .task_report
        .iter()
        .find(|(n, _)| n == "safety-controller")
        .map(|(_, s)| s.skips)
        .unwrap_or(0);
    let dev = r.max_deviation(SimTime::from_secs(8), SimTime::from_secs(30));
    (r.crashed(), safety_skips, dev)
}

fn main() {
    println!("Ablation — CPU DoS protection (cpuset + priority restriction)\n");
    let (crash_on, skips_on, dev_on) = run(true);
    let (crash_off, skips_off, dev_off) = run(false);
    let table = ascii_table(
        &["protection", "crashed", "safety-controller skips", "max deviation (m)"],
        &[
            vec!["on (paper)".into(), fmt(crash_on), skips_on.to_string(), format!("{dev_on:.3}")],
            vec!["off (ablation)".into(), fmt(crash_off), skips_off.to_string(), format!("{dev_off:.3}")],
        ],
    );
    print!("{table}");
    write_result("ablation_cpu.txt", &table);
}

fn fmt(b: bool) -> String {
    if b { "yes".into() } else { "no".into() }
}
