//! Ablation A1 — CPU protection (cgroup cpuset + no-RT): an aggressive CPU
//! hog (4 spinners requesting FIFO 95) launched at 8 s, with the
//! protection on vs off. Both variants run as one parallel campaign.

use attacks::cpu_hog::CpuHog;
use cd_bench::{ascii_table, emit_table, CampaignSpec};
use containerdrone_core::prelude::*;
use sim_core::time::SimTime;

fn variant(cpu_isolation: bool) -> ScenarioConfig {
    ScenarioConfig::builder()
        .attack_at(
            SimTime::from_secs(8),
            AttackEvent::CpuHog(CpuHog::aggressive()),
        )
        .cpu_isolation(cpu_isolation)
        .build()
}

fn main() {
    println!("Ablation — CPU DoS protection (cpuset + priority restriction)\n");
    let report = CampaignSpec::new("ablation_cpu")
        .variant("on (paper)", variant(true))
        .variant("off (ablation)", variant(false))
        .run();

    let rows: Vec<Vec<String>> = report
        .outcomes
        .iter()
        .map(|o| {
            let safety_skips = o
                .result
                .task_report
                .iter()
                .find(|(n, _)| n == "safety-controller")
                .map(|(_, s)| s.skips)
                .unwrap_or(0);
            vec![
                o.label.clone(),
                if o.result.crashed() { "yes" } else { "no" }.to_string(),
                safety_skips.to_string(),
                format!("{:.3}", o.max_deviation),
            ]
        })
        .collect();
    let table = ascii_table(
        &[
            "protection",
            "crashed",
            "safety-controller skips",
            "max deviation (m)",
        ],
        &rows,
    );
    emit_table("ablation_cpu", &table);
}
