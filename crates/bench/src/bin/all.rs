//! Runs every table, figure and ablation harness in sequence, writing all
//! artifacts to `results/`. This is the one-shot reproduction entry point:
//!
//! ```text
//! cargo run --release -p cd-bench --bin all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "fig4", "fig5", "fig6", "fig7",
        "ablation_cpu", "ablation_comm", "ablation_monitor", "ablation_memguard",
        "extension_spoof", "analysis", "replication",
    ];
    for bin in bins {
        println!("═══ running {bin} ═══");
        let status = Command::new(std::env::current_exe().unwrap().with_file_name(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
    println!("all artifacts regenerated under results/");
}
