//! One-shot reproduction entry point: regenerates every artifact under
//! `results/`.
//!
//! The figure scenarios run as a single parallel [`CampaignSpec`] (each
//! outcome is narrated and written to its CSV, with the paper's
//! qualitative expectation asserted); the remaining harnesses — tables,
//! ablations, the spoof extension, replication, analysis, the campaign
//! speedup bench — run as sibling binaries.
//!
//! ```text
//! cargo run --release -p cd-bench --bin all
//! ```

use std::process::Command;

use cd_bench::{narrate_figure, save_figure_csv, CampaignSpec};
use containerdrone_core::prelude::*;

/// Figure scenarios: label, config, CSV name, paper expectation, and the
/// assertion that the qualitative outcome matches the paper.
type Expectation = fn(&ScenarioResult) -> bool;

fn figure_campaign() -> Vec<(
    &'static str,
    ScenarioConfig,
    &'static str,
    &'static str,
    Expectation,
)> {
    vec![
        (
            "Figure 4 — memory DoS, MemGuard OFF",
            ScenarioConfig::fig4(),
            "fig4.csv",
            "drift after attack onset, crash shortly after",
            |r| r.crashed(),
        ),
        (
            "Figure 5 — memory DoS, MemGuard ON",
            ScenarioConfig::fig5(),
            "fig5.csv",
            "brief oscillation, remains stable",
            |r| !r.crashed(),
        ),
        (
            "Figure 6 — complex controller killed at 12 s",
            ScenarioConfig::fig6(),
            "fig6.csv",
            "receive-interval rule trips; safety controller stabilizes the drone",
            |r| !r.crashed() && r.switch_time.is_some(),
        ),
        (
            "Figure 7 — UDP flood against port 14600 at 8 s",
            ScenarioConfig::fig7(),
            "fig7.csv",
            "upset after attack onset; monitor switches; drone recovers",
            |r| !r.crashed() && r.switch_time.is_some(),
        ),
    ]
}

fn main() {
    let figures = figure_campaign();
    let mut spec = CampaignSpec::new("figures");
    for (label, cfg, _, _, _) in &figures {
        spec = spec.variant(*label, cfg.clone());
    }
    let report = spec.run();
    println!(
        "═══ figure campaign: {} scenarios in {:.1}s wall on {} threads ═══\n",
        report.outcomes.len(),
        report.wall_clock.as_secs_f64(),
        report.threads,
    );
    for (outcome, (label, _, csv, expectation, check)) in report.outcomes.iter().zip(&figures) {
        narrate_figure(label, expectation, &outcome.result);
        save_figure_csv(csv, &outcome.result);
        assert!(
            check(&outcome.result),
            "{label}: outcome diverged from the paper"
        );
    }

    let bins = [
        "table1",
        "table2",
        "ablation_cpu",
        "ablation_comm",
        "ablation_monitor",
        "ablation_memguard",
        "extension_spoof",
        "analysis",
        "replication",
        "campaign",
    ];
    for bin in bins {
        println!("═══ running {bin} ═══");
        let status = Command::new(std::env::current_exe().unwrap().with_file_name(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
    println!("all artifacts regenerated under results/");
}
