//! Regenerates **Table II**: "System overhead comparison" — per-core CPU
//! idle rates for (a) no container nor VM, (b) one QEMU VM, (c) one Docker
//! container, measured from the simulated scheduler's accounting.

use cd_bench::{ascii_table, emit_table, write_result};
use container_rt::prelude::*;
use rt_sched::prelude::*;
use sim_core::time::SimTime;
use virt_net::prelude::*;

fn measure_idle(setup: impl FnOnce(&mut Machine, &mut Network)) -> Vec<f64> {
    let mut machine = Machine::new(MachineConfig::default());
    let mut net = Network::new();
    spawn_system_background(&mut machine);
    setup(&mut machine, &mut net);
    let mut ev = Vec::new();
    machine.step_until(SimTime::from_secs(1), &mut ev); // warm-up
    machine.reset_accounting();
    machine.step_until(SimTime::from_secs(31), &mut ev); // 30 s window
    machine.idle_rates()
}

fn main() {
    let native = measure_idle(|_, _| {});
    let vm = measure_idle(|m, _| {
        Vm::start(m, VmConfig::default());
    });
    let container = measure_idle(|m, n| {
        let host = n.add_namespace("host");
        let _c = Container::create(m, n, host, ContainerConfig::cce(3));
    });

    let paper = [
        ("No container nor VM", [0.95, 0.99, 0.99, 0.99]),
        ("One VM", [0.86, 0.83, 0.81, 0.77]),
        ("One container", [0.95, 0.99, 0.99, 0.98]),
    ];
    let measured = [&native, &vm, &container];

    let rows: Vec<Vec<String>> = paper
        .iter()
        .zip(measured)
        .map(|((name, p), m)| {
            let mut row = vec![name.to_string()];
            for c in 0..4 {
                row.push(format!("{:.2} ({:.2})", m[c], p[c]));
            }
            row
        })
        .collect();

    let table = ascii_table(
        &[
            "Case",
            "CPU0 (paper)",
            "CPU1 (paper)",
            "CPU2 (paper)",
            "CPU3 (paper)",
        ],
        &rows,
    );
    println!("Table II — CPU idle rates, measured over 30 s (paper values in parentheses)\n");
    emit_table("table2", &table);

    let mut csv = String::from("case,cpu0,cpu1,cpu2,cpu3\n");
    for ((name, _), m) in paper.iter().zip(measured) {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            name, m[0], m[1], m[2], m[3]
        ));
    }
    write_result("table2.csv", &csv);
}
