//! Regenerates **Figure 7**: a UDP flood against the HCE's motor port
//! starting at 8 s. Paper: the drone degrades (circling with growing
//! radius) until a monitor rule kicks in, "killing the receiving thread on
//! HCE and switching the control to safety controller".
//!
//! Reproduction note: with iptables enabled, the rate limiter starves the
//! legitimate motor stream as collateral, so in our build the
//! receive-interval rule fires first (the paper observed the
//! attitude-error rule). The end-to-end shape — attack, upset, switch,
//! recovery — is the same; see EXPERIMENTS.md.

use cd_bench::{narrate_figure, save_figure_csv};
use containerdrone_core::prelude::*;

fn main() {
    let result = Scenario::new(ScenarioConfig::fig7()).run();
    narrate_figure(
        "Figure 7 — UDP flood against port 14600 at 8 s",
        "upset after attack onset; monitor switches; drone recovers",
        &result,
    );
    println!(
        "flood offered {} packets; rate-limited {}; queue-dropped {}",
        result.flood_sent,
        result.rx_socket_stats.dropped_ratelimit,
        result.rx_socket_stats.dropped_overflow
    );
    save_figure_csv("fig7.csv", &result);
    assert!(!result.crashed());
    assert!(result.switch_time.is_some(), "expected a simplex switch");
}
