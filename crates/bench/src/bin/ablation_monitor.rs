//! Ablation A3 — the security monitor itself: the Figure 6 controller-kill
//! attack with monitoring disabled ends in a crash; with it, recovery.

use cd_bench::{ascii_table, write_result};
use containerdrone_core::prelude::*;
use sim_core::time::SimTime;

fn run(monitor: bool) -> Vec<String> {
    let mut cfg = ScenarioConfig::fig6();
    cfg.framework.protections.monitor = monitor;
    let r = Scenario::new(cfg).run();
    vec![
        if monitor { "on (paper)" } else { "off (ablation)" }.to_string(),
        if r.crashed() { "yes" } else { "no" }.to_string(),
        r.switch_time.map(|t| t.to_string()).unwrap_or("never".into()),
        format!("{:.3}", r.max_deviation(SimTime::from_secs(12), SimTime::from_secs(30))),
    ]
}

fn main() {
    println!("Ablation — security monitoring under the Figure-6 controller kill\n");
    let table = ascii_table(
        &["monitor", "crashed", "switch", "max dev after kill (m)"],
        &[run(true), run(false)],
    );
    print!("{table}");
    write_result("ablation_monitor.txt", &table);
}
