//! Ablation A3 — the security monitor itself: the Figure 6 controller-kill
//! attack with monitoring disabled ends in a crash; with it, recovery.
//! Both variants run as one parallel campaign.

use cd_bench::{ascii_table, emit_table, CampaignSpec};
use containerdrone_core::prelude::*;
use sim_core::time::SimTime;

fn variant(monitor: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::fig6();
    cfg.framework.protections.monitor = monitor;
    cfg
}

fn main() {
    println!("Ablation — security monitoring under the Figure-6 controller kill\n");
    let report = CampaignSpec::new("ablation_monitor")
        .variant("on (paper)", variant(true))
        .variant("off (ablation)", variant(false))
        .run();

    let rows: Vec<Vec<String>> = report
        .outcomes
        .iter()
        .map(|o| {
            let r = &o.result;
            vec![
                o.label.clone(),
                if r.crashed() { "yes" } else { "no" }.to_string(),
                r.switch_time
                    .map(|t| t.to_string())
                    .unwrap_or("never".into()),
                format!(
                    "{:.3}",
                    r.max_deviation(SimTime::from_secs(12), SimTime::from_secs(30))
                ),
            ]
        })
        .collect();
    let table = ascii_table(
        &["monitor", "crashed", "switch", "max dev after kill (m)"],
        &rows,
    );
    emit_table("ablation_monitor", &table);
}
