//! Campaign throughput bench: a grid of attack-timeline scenarios (attacks
//! × protections × seeds, 16 variants) executed twice — serially, then on
//! the parallel worker pool — reporting the measured wall-clock speedup.
//!
//! The grid exercises the composable timeline API: half the variants
//! schedule **two** attacks with different onsets (memory hog at 3 s, then
//! controller kill at 6 s) in a single run.
//!
//! ```text
//! cargo run --release -p cd-bench --bin campaign
//! cargo run --release -p cd-bench --bin campaign -- --trace events.jsonl --metrics-addr 127.0.0.1:9464
//! ```
//!
//! `--trace <path>` writes the per-variant structured JSONL trace
//! (fragments concatenated in grid order — byte-identical at any worker
//! count); `--metrics-addr <host:port>` serves live campaign-progress
//! counters in Prometheus text format while the grid drains.

use cd_bench::cli::Args;
use cd_bench::{write_result, CampaignSpec};
use cd_obs::Registry;
use sim_core::time::SimDuration;

fn spec() -> CampaignSpec {
    cd_bench::standard_grid(
        "campaign",
        SimDuration::from_secs(10),
        &[2019, 7, 99, 12345],
    )
}

fn main() {
    let args = Args::parse();
    let n = spec().len();
    println!("Campaign speedup bench — {n} scenario variants, serial vs parallel\n");

    let trace = args.value("--trace");
    let registry = std::sync::Arc::new(Registry::new());
    let _server = args.value("--metrics-addr").map(|addr| {
        cd_obs::server::serve(std::sync::Arc::clone(&registry), addr)
            .unwrap_or_else(|e| panic!("--metrics-addr {addr}: {e}"))
    });
    let observed = |mut s: CampaignSpec| {
        if trace.is_some() {
            s = s.with_trace();
        }
        if args.has("--metrics-addr") {
            s = s.with_metrics(&registry);
        }
        s
    };

    let serial = spec().run_serial();
    let parallel = observed(spec()).run();

    let speedup = serial.wall_clock.as_secs_f64() / parallel.wall_clock.as_secs_f64();
    println!("{}", parallel.ascii_table());
    println!(
        "serial:   {:.2}s wall (1 thread)\nparallel: {:.2}s wall ({} threads)\nspeedup:  {speedup:.2}x",
        serial.wall_clock.as_secs_f64(),
        parallel.wall_clock.as_secs_f64(),
        parallel.threads,
    );
    if parallel.threads == 1 {
        println!("(single-core host: parallel execution degenerates to serial)");
    }

    // Identical grids must produce identical outcomes regardless of the
    // execution strategy.
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.label, p.label);
        assert_eq!(
            s.result.telemetry.to_csv(),
            p.result.telemetry.to_csv(),
            "{}: serial and parallel runs diverged",
            s.label
        );
    }

    let mut csv = parallel.to_csv();
    csv.push_str(&format!(
        "# serial_wall_s,{:.3}\n# parallel_wall_s,{:.3}\n# threads,{}\n# speedup,{speedup:.3}\n",
        serial.wall_clock.as_secs_f64(),
        parallel.wall_clock.as_secs_f64(),
        parallel.threads,
    ));
    write_result("campaign.csv", &csv);
    write_result("campaign.txt", &parallel.ascii_table());
    if let Some(path) = trace {
        std::fs::write(path, parallel.trace_bytes())
            .unwrap_or_else(|e| panic!("--trace {path}: {e}"));
        println!("trace written to {path}");
    }
}
