//! Regenerates **Table I**: "The rate and amount of data transfer between
//! the reliable and normal control environments."
//!
//! Runs a healthy 10 s hover and measures each stream's achieved rate and
//! on-wire frame size at the virtual network layer.

use cd_bench::{ascii_table, write_result};
use containerdrone_core::prelude::*;
use sim_core::time::SimDuration;

fn main() {
    let cfg = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(10));
    let result = Scenario::new(cfg).run();

    let paper: &[(&str, &str, &str, &str)] = &[
        ("IMU", "250Hz", "52 bytes", "14660"),
        ("Barometer", "50Hz", "32 bytes", "14660"),
        ("GPS", "10Hz", "44 bytes", "14660"),
        ("RC", "50Hz", "50 bytes", "14660"),
        ("Motor Output", "400Hz", "29 bytes", "14600"),
    ];

    let rows: Vec<Vec<String>> = result
        .streams
        .iter()
        .zip(paper)
        .map(|(s, p)| {
            vec![
                s.name.to_string(),
                s.direction.to_string(),
                format!("{} (paper {})", fmt_hz(s.measured_hz), p.1),
                format!("{:.0} bytes (paper {})", s.frame_bytes, p.2),
                format!("{} (paper {})", s.port, p.3),
            ]
        })
        .collect();

    let table = ascii_table(
        &["Component", "Direction", "Measured rate", "Size", "Port"],
        &rows,
    );
    println!("Table I — data transfer between HCE and CCE (measured over 10 s)\n");
    print!("{table}");
    write_result("table1.txt", &table);

    let mut csv = String::from("component,direction,nominal_hz,measured_hz,frame_bytes,port\n");
    for s in &result.streams {
        csv.push_str(&format!(
            "{},{},{},{:.3},{:.0},{}\n",
            s.name, s.direction, s.nominal_hz, s.measured_hz, s.frame_bytes, s.port
        ));
    }
    write_result("table1.csv", &csv);
}

fn fmt_hz(hz: f64) -> String {
    format!("{hz:.1}Hz")
}
