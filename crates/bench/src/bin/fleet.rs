//! Fleet campaign: shared-airspace scaling and resilience in one sweep.
//!
//! Sweeps fleet size N ∈ {1, 5, 25, 100} against four fleet timelines:
//! healthy, a rolling-victim UDP flood, a mixed campaign (rolling flood
//! plus targeted memory hog plus targeted controller kill), and the
//! adversarial-airspace swarm-jam campaign (V2V coordination streams
//! with external attacker nodes flooding a GCS uplink and jamming swarm
//! ports). Reports per-cell crash/switch/deadline-miss outcomes plus
//! the steps/sec scaling of the co-simulation itself. Per-vehicle rows
//! for every cell land in `results/fleet_campaign.csv`.
//!
//! ```text
//! cargo run --release -p cd-bench --bin fleet                        # full sweep
//! cargo run --release -p cd-bench --bin fleet -- --smoke             # CI smoke
//! cargo run --release -p cd-bench --bin fleet -- --threads 4 --big   # sharded, N up to 1000
//! ```
//!
//! `--threads T` runs every cell on the sharded parallel executor (the
//! reports are byte-identical at any thread count); `--big` appends the
//! swarm-scale N = 1000 cell to the sweep; `--no-leap` runs every cell
//! on the quantum-stepped reference executor instead of the time-leap
//! default — the emitted CSV must be byte-identical either way (CI
//! diffs the two, after stripping the executor-stat columns);
//! `--no-bulk` settles every network flood span packet-by-packet
//! instead of in closed form — the CSV must be byte-identical with no
//! columns stripped (bulk changes no counter, not even the executor
//! stats; CI diffs the full files).
//!
//! Observability: `--trace events.jsonl` streams the deterministic
//! structured trace of every cell (concatenated in sweep order —
//! byte-identical at any `--threads`, CI diffs 1 vs 2);
//! `--metrics-addr 127.0.0.1:9464` serves live Prometheus text
//! exposition for the whole sweep.

use std::fmt::Write as _;

use attacks::fleet::FleetScript;
use cd_bench::cli::Args;
use cd_bench::{ascii_table, emit_table, write_result};
use cd_fleet::{Fleet, FleetConfig, SwarmConfig};
use cd_obs::{Registry, TraceSink};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::SimDuration;

/// The four fleet timelines of the sweep (shared with the perf
/// harness's fleet rows via [`cd_bench::fleet_timelines`]), plus
/// whether the cell flies V2V coordination streams — the swarm-jam
/// campaign needs a swarm to jam (the same cell
/// [`cd_bench::swarm_fleet_config`] assembles for the perf rows).
fn timelines() -> Vec<(&'static str, FleetScript, bool)> {
    vec![
        ("healthy", FleetScript::none(), false),
        ("flood", cd_bench::fleet_timelines::rolling_flood(), false),
        ("mixed", cd_bench::fleet_timelines::mixed(), false),
        ("swarm-jam", cd_bench::fleet_timelines::swarm_jam(), true),
    ]
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let threads: usize = args.parsed("--threads").unwrap_or(1);
    let leap = !args.has("--no-leap");
    let bulk = !args.has("--no-bulk");
    // One trace file for the whole sweep: each cell appends through its
    // own sink over a cloned handle (cells run sequentially, and every
    // sink is flushed at its fleet's teardown).
    let trace_file = args
        .value("--trace")
        .map(|path| std::fs::File::create(path).unwrap_or_else(|e| panic!("--trace {path}: {e}")));
    let registry = std::sync::Arc::new(Registry::new());
    let _server = args.value("--metrics-addr").map(|addr| {
        cd_obs::server::serve(std::sync::Arc::clone(&registry), addr)
            .unwrap_or_else(|e| panic!("--metrics-addr {addr}: {e}"))
    });
    // Smoke keeps the flights just long enough (3 s) that the rolling
    // flood's 2 s onset actually fires.
    let (mut sizes, duration): (Vec<usize>, SimDuration) = if smoke {
        (vec![1, 5], SimDuration::from_secs(3))
    } else {
        (vec![1, 5, 25, 100], SimDuration::from_secs(8))
    };
    if args.has("--big") {
        sizes.push(1000);
    }
    println!(
        "Fleet campaign — N ∈ {sizes:?} × {{healthy, flood, mixed, swarm-jam}}, {}s flights, {threads} thread(s){}{}\n",
        duration.as_secs_f64(),
        if smoke { " (smoke)" } else { "" },
        if leap { "" } else { ", stepped reference executor" },
    );
    if !bulk {
        println!("(--no-bulk: per-packet flood-span settlement)\n");
    }

    let base = ScenarioConfig::healthy().with_duration(duration);
    let mut rows = Vec::new();
    // Per-row executor stats (quanta_leaped/quanta_stepped) are appended
    // here, outside FleetReport::CSV_HEADER — the report's own CSV stays
    // byte-identical across executors, which the equivalence pins rely on.
    let mut csv = format!(
        "timeline,n,{},quanta_leaped,quanta_stepped\n",
        cd_fleet::FleetReport::CSV_HEADER
    );
    for (label, script, swarm) in timelines() {
        for &n in &sizes {
            let mut cfg = FleetConfig::new(base.clone(), n)
                .with_script(script.clone())
                .with_threads(threads)
                .with_leap(leap)
                .with_bulk(bulk);
            if swarm {
                cfg = cfg.with_swarm(SwarmConfig::default());
            }
            let mut fleet = Fleet::new(cfg);
            if let Some(file) = &trace_file {
                let clone = file.try_clone().expect("clone trace file handle");
                fleet.attach_trace(TraceSink::new(Box::new(std::io::BufWriter::new(clone))));
            }
            if args.has("--metrics-addr") {
                fleet.attach_metrics(&registry);
            }
            let report = fleet.run();
            let wall = report.wall_clock.as_secs_f64();
            let steps_per_sec = report.sim_steps as f64 / wall.max(1e-9);
            rows.push(vec![
                label.to_string(),
                n.to_string(),
                report.crashes().to_string(),
                report.switches().to_string(),
                report.total_deadline_skips().to_string(),
                report
                    .outcomes
                    .iter()
                    .filter(|o| o.verdict() == "stable")
                    .count()
                    .to_string(),
                format!("{:.2}", wall),
                format!("{:.2e}", steps_per_sec),
                report.net_packets.to_string(),
                report.attacker_packets.to_string(),
            ]);
            // Per-vehicle rows, prefixed with the cell coordinates and
            // suffixed with that vehicle's executor stats.
            for (line, o) in report.to_csv().lines().skip(1).zip(&report.outcomes) {
                let _ = writeln!(
                    csv,
                    "{label},{n},{line},{},{}",
                    o.result.quanta_leaped,
                    o.result.sim_steps - o.result.quanta_leaped
                );
            }
        }
    }

    let table = ascii_table(
        &[
            "timeline",
            "N",
            "crashes",
            "switches",
            "deadline skips",
            "stable",
            "wall (s)",
            "steps/s",
            "packets",
            "attacker pkts",
        ],
        &rows,
    );
    emit_table("fleet_campaign", &table);
    write_result("fleet_campaign.csv", &csv);
}
