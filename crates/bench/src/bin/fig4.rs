//! Regenerates **Figure 4**: local position X/Y/Z without MemGuard under
//! the IsolBench `Bandwidth` memory-DoS attack (starts at 10 s). Paper:
//! "the drone starts to drift right after the Bandwidth task is launched
//! … and results in a crash shortly after."

use cd_bench::{narrate_figure, save_figure_csv};
use containerdrone_core::prelude::*;

fn main() {
    let result = Scenario::new(ScenarioConfig::fig4()).run();
    narrate_figure(
        "Figure 4 — memory DoS, MemGuard OFF",
        "drift after attack onset, crash shortly after",
        &result,
    );
    save_figure_csv("fig4.csv", &result);
    assert!(result.crashed(), "expected the unprotected run to crash");
}
