//! Response-time analysis of the ContainerDrone HCE task set — the
//! paper's stated future work ("hard real-time proof and schedulability
//! analysis"), applied to the exact task set this reproduction simulates.

use cd_bench::{ascii_table, emit_table};
use containerdrone_core::config::{FrameworkConfig, TaskCosts};
use rt_sched::analysis::{response_time_analysis, AnalyzedTask};
use sim_core::time::SimDuration;

/// The HCE task set of the memory-DoS experiments, pinned as the
/// partitioned analysis requires (driver on core 0, stack on core 1,
/// monitor on core 2; the CCE owns core 3).
fn hce_taskset(costs: &TaskCosts) -> Vec<AnalyzedTask> {
    vec![
        AnalyzedTask {
            name: "sensor-driver".into(),
            core: 0,
            priority: 90,
            period: SimDuration::from_hz(250.0),
            cost: costs.sensor_driver,
        },
        AnalyzedTask {
            name: "motor-driver".into(),
            core: 0,
            priority: 90,
            period: SimDuration::from_hz(400.0),
            cost: costs.motor_driver,
        },
        AnalyzedTask {
            name: "hce-flight-stack".into(),
            core: 1,
            priority: 50,
            period: SimDuration::from_hz(250.0),
            cost: costs.hce_flight_stack,
        },
        AnalyzedTask {
            name: "security-monitor".into(),
            core: 2,
            priority: 35,
            period: SimDuration::from_hz(100.0),
            cost: costs.monitor,
        },
        AnalyzedTask {
            name: "safety-controller".into(),
            core: 2,
            priority: 20,
            period: SimDuration::from_hz(400.0),
            cost: costs.safety_controller,
        },
    ]
}

fn main() {
    let fw = FrameworkConfig::default();
    let tasks = hce_taskset(&fw.costs);
    let gamma = containerdrone_core::scenario::MEM_ATTACK_GAMMA;

    let cases = [
        ("healthy (no contention)", None),
        (
            "under Bandwidth hog, no MemGuard (U_other=0.93)",
            Some((gamma, 0.93)),
        ),
        (
            "under hog, MemGuard 2% budget (worst-case sustained)",
            Some((gamma, 0.02)),
        ),
        (
            "under hog, MemGuard 5% budget (worst-case sustained)",
            Some((gamma, 0.05)),
        ),
    ];

    println!("Response-time analysis of the HCE task set (γ = {gamma})\n");
    let mut all_rows = Vec::new();
    for (label, contention) in cases {
        let report = response_time_analysis(&tasks, 3, contention);
        for v in &report.tasks {
            all_rows.push(vec![
                label.to_string(),
                v.name.clone(),
                format!("{}", v.wcet),
                v.response
                    .map(|r| r.to_string())
                    .unwrap_or("> deadline".into()),
                if v.schedulable { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    let table = ascii_table(
        &[
            "case",
            "task",
            "WCET (inflated)",
            "worst response",
            "schedulable",
        ],
        &all_rows,
    );
    emit_table("analysis_rta", &table);
    println!("\nNote: the analysis bounds *sustained* worst-case contention. MemGuard");
    println!("confines the hog to one burst per 1 ms period, so simulation shows the");
    println!("5% case running without a single miss — the gap between certified and");
    println!("observed behaviour is exactly what the paper's future-work hard-real-time");
    println!("analysis would have to close.");
}
