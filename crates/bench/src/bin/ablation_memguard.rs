//! Ablation A4 — MemGuard budget sweep: how much bandwidth can the CCE be
//! given before the Figure-4 attack destabilizes the HCE again? Sweeps the
//! budget (fraction of the DRAM bus) under the fig5 scenario as one
//! parallel campaign.

use cd_bench::{ascii_table, emit_table, CampaignSpec};
use containerdrone_core::prelude::*;

fn main() {
    println!("Ablation — MemGuard budget sweep under the memory-DoS attack\n");
    let mut spec = CampaignSpec::new("ablation_memguard");
    for budget in [0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.70, 0.90] {
        let mut cfg = ScenarioConfig::fig5();
        cfg.framework.protections.memguard_budget = budget;
        spec = spec.variant(format!("{:.0}%", budget * 100.0), cfg);
    }
    let report = spec.run();

    let rows: Vec<Vec<String>> = report
        .outcomes
        .iter()
        .map(|o| {
            let stack = o
                .result
                .task_report
                .iter()
                .find(|(n, _)| n == "hce-flight-stack")
                .map(|(_, s)| s.skips)
                .unwrap_or(0);
            vec![
                o.label.clone(),
                if o.result.crashed() { "yes" } else { "no" }.to_string(),
                stack.to_string(),
                format!("{:.3}", o.max_deviation),
            ]
        })
        .collect();
    let table = ascii_table(
        &[
            "CCE budget",
            "crashed",
            "flight-stack skips",
            "max dev after attack (m)",
        ],
        &rows,
    );
    emit_table("ablation_memguard", &table);
}
