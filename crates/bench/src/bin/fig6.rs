//! Regenerates **Figure 6**: the attacker kills the complex controller at
//! 12 s. Paper: "The security monitor detects that the output from CCE has
//! not been received for some time, then kills the receiving thread and
//! switches to the output from the safety controller."

use cd_bench::{narrate_figure, save_figure_csv};
use containerdrone_core::prelude::*;

fn main() {
    let result = Scenario::new(ScenarioConfig::fig6()).run();
    narrate_figure(
        "Figure 6 — complex controller killed at 12 s",
        "receive-interval rule trips; safety controller stabilizes the drone",
        &result,
    );
    save_figure_csv("fig6.csv", &result);
    assert!(!result.crashed());
    assert!(result.switch_time.is_some(), "expected a simplex switch");
}
