//! Regenerates **Figure 5**: the same memory-DoS attack as Figure 4 but
//! with MemGuard regulating the CCE core. Paper: "the drone oscillates for
//! a short time but then managed to stabilize itself."

use cd_bench::{narrate_figure, save_figure_csv};
use containerdrone_core::prelude::*;

fn main() {
    let result = Scenario::new(ScenarioConfig::fig5()).run();
    narrate_figure(
        "Figure 5 — memory DoS, MemGuard ON",
        "brief oscillation, remains stable",
        &result,
    );
    save_figure_csv("fig5.csv", &result);
    assert!(!result.crashed(), "expected the protected run to survive");
}
