//! Extension experiment: command spoofing (beyond the paper's DoS model).
//!
//! Two variants: a moderate spoof against an integrity-tuned attitude rule
//! (monitor wins: switch + recovery), and a full-authority spoof from a
//! 1 m hover (physics wins: the Simplex detection latency is outrun).

use cd_bench::{ascii_table, emit_table, save_figure_csv};
use containerdrone_core::prelude::*;
use sim_core::time::SimTime;

fn row(label: &str, r: &ScenarioResult) -> Vec<String> {
    vec![
        label.to_string(),
        r.monitor_events
            .first()
            .map(|e| e.rule.clone())
            .unwrap_or_else(|| "-".into()),
        r.switch_time
            .map(|t| t.to_string())
            .unwrap_or("never".into()),
        match &r.crash {
            Some(c) => format!("{} ({})", c.time, c.kind),
            None => "survived".into(),
        },
        format!(
            "{:.3}",
            r.max_deviation(SimTime::from_secs(25), SimTime::from_secs(30))
        ),
    ]
}

fn main() {
    println!("Extension — protocol-valid motor-command spoofing\n");
    let moderate = Scenario::new(ScenarioConfig::spoof()).run();
    let violent = Scenario::new(ScenarioConfig::spoof_violent()).run();

    let table = ascii_table(
        &[
            "variant",
            "detecting rule",
            "switch",
            "outcome",
            "final dev (m)",
        ],
        &[
            row("moderate spoof, 12°/50 ms rule, 2.5 m hover", &moderate),
            row("violent spoof, stock 20°/250 ms rule, 1 m hover", &violent),
        ],
    );
    emit_table("extension_spoof", &table);
    println!("\nThe moderate case shows the attitude-error rule catching an attack");
    println!("that is invisible to CRC checks, iptables and the interval rule.");
    println!("The violent case shows the Simplex limitation: detection latency");
    println!("must race physics, and a full-authority attacker at low altitude wins.");
    save_figure_csv("extension_spoof.csv", &moderate);
}
