//! Ablation A2 — communication protection: the Figure 7 flood with the
//! iptables rate limit on vs off, run as one parallel campaign. The limit
//! bounds the rx thread's CPU cost; the monitor provides defence in depth
//! either way.

use cd_bench::{ascii_table, emit_table, CampaignSpec};
use containerdrone_core::prelude::*;
use sim_core::time::{SimDuration, SimTime};

fn variant(iptables: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::fig7();
    cfg.framework.protections.iptables = iptables;
    cfg
}

fn main() {
    println!("Ablation — iptables rate limiting under the Figure-7 UDP flood\n");
    let report = CampaignSpec::new("ablation_comm")
        .variant("on (paper)", variant(true))
        .variant("off (ablation)", variant(false))
        .run();

    let rows: Vec<Vec<String>> = report
        .outcomes
        .iter()
        .map(|o| {
            let r = &o.result;
            let rx_busy = r
                .task_report
                .iter()
                .find(|(n, _)| n == "rx-thread")
                .map(|(_, s)| s.busy_time)
                .unwrap_or(SimDuration::ZERO);
            vec![
                o.label.clone(),
                if r.crashed() { "yes" } else { "no" }.to_string(),
                r.switch_time
                    .map(|t| t.to_string())
                    .unwrap_or("never".into()),
                format!("{rx_busy}"),
                r.rx_socket_stats.dropped_ratelimit.to_string(),
                r.rx_socket_stats.dropped_overflow.to_string(),
                format!(
                    "{:.3}",
                    r.max_deviation(SimTime::from_secs(8), SimTime::from_secs(30))
                ),
            ]
        })
        .collect();
    let table = ascii_table(
        &[
            "iptables",
            "crashed",
            "switch",
            "rx CPU time",
            "dropped (limit)",
            "dropped (queue)",
            "max dev (m)",
        ],
        &rows,
    );
    emit_table("ablation_comm", &table);
}
