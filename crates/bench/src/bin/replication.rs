//! Replication study: every figure scenario across a seed panel, so the
//! qualitative outcomes can be checked for seed-robustness at a glance.

use cd_bench::{ascii_table, write_result};
use containerdrone_core::prelude::*;
use sim_core::time::SimTime;

fn outcome(cfg: ScenarioConfig) -> (String, String) {
    let r = Scenario::new(cfg).run();
    let out = match &r.crash {
        Some(c) => format!("crash {:.1}s", c.time.as_secs_f64()),
        None => {
            let dev = r.max_deviation(
                r.attack_onset.unwrap_or(SimTime::from_secs(2)),
                SimTime::from_secs(30),
            );
            if dev > 2.0 {
                format!("lost ctl ({dev:.1} m)")
            } else {
                format!("stable ({dev:.2} m)")
            }
        }
    };
    let switch = r
        .switch_time
        .map(|t| format!("{:.1}s", t.as_secs_f64()))
        .unwrap_or("-".into());
    (out, switch)
}

fn main() {
    let seeds = [2019u64, 7, 99, 12345, 777];
    println!("Replication across seeds {seeds:?} (outcome / simplex switch)\n");
    let mut rows = Vec::new();
    for (name, mk) in [
        ("fig4 (expected: crash or lost ctl)", ScenarioConfig::fig4 as fn() -> ScenarioConfig),
        ("fig5 (expected: stable)", ScenarioConfig::fig5),
        ("fig6 (expected: stable + switch)", ScenarioConfig::fig6),
        ("fig7 (expected: stable + switch)", ScenarioConfig::fig7),
    ] {
        let mut row = vec![name.to_string()];
        for &seed in &seeds {
            let (out, switch) = outcome(mk().with_seed(seed));
            row.push(format!("{out} / {switch}"));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("scenario".to_string())
        .chain(seeds.iter().map(|s| format!("seed {s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table = ascii_table(&header_refs, &rows);
    print!("{table}");
    write_result("replication.txt", &table);
}
