//! Replication study: every figure scenario across a seed panel, so the
//! qualitative outcomes can be checked for seed-robustness at a glance.
//! The 20-run panel executes as one parallel campaign.

use cd_bench::{ascii_table, emit_table, CampaignOutcome, CampaignSpec};
use containerdrone_core::prelude::*;

fn cell(o: &CampaignOutcome) -> String {
    let out = match &o.result.crash {
        Some(c) => format!("crash {:.1}s", c.time.as_secs_f64()),
        None => {
            if o.max_deviation > 2.0 {
                format!("lost ctl ({:.1} m)", o.max_deviation)
            } else {
                format!("stable ({:.2} m)", o.max_deviation)
            }
        }
    };
    let switch = o
        .result
        .switch_time
        .map(|t| format!("{:.1}s", t.as_secs_f64()))
        .unwrap_or("-".into());
    format!("{out} / {switch}")
}

fn main() {
    let seeds = [2019u64, 7, 99, 12345, 777];
    let scenarios = [
        (
            "fig4 (expected: crash or lost ctl)",
            ScenarioConfig::fig4 as fn() -> ScenarioConfig,
        ),
        ("fig5 (expected: stable)", ScenarioConfig::fig5),
        ("fig6 (expected: stable + switch)", ScenarioConfig::fig6),
        ("fig7 (expected: stable + switch)", ScenarioConfig::fig7),
    ];
    println!("Replication across seeds {seeds:?} (outcome / simplex switch)\n");

    let mut spec = CampaignSpec::new("replication");
    for (name, mk) in scenarios {
        for &seed in &seeds {
            spec = spec.variant(format!("{name}@{seed}"), mk().with_seed(seed));
        }
    }
    let report = spec.run();

    // One table row per scenario, one column per seed (campaign outcomes
    // keep spec order: scenario-major, seed-minor).
    let rows: Vec<Vec<String>> = report
        .outcomes
        .chunks(seeds.len())
        .map(|chunk| {
            let name = chunk[0].label.split('@').next().unwrap_or("").to_string();
            std::iter::once(name)
                .chain(chunk.iter().map(cell))
                .collect()
        })
        .collect();
    let headers: Vec<String> = std::iter::once("scenario".to_string())
        .chain(seeds.iter().map(|s| format!("seed {s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table = ascii_table(&header_refs, &rows);
    println!(
        "\n{} runs in {:.1}s wall ({} threads, {:.1}s cpu)",
        report.outcomes.len(),
        report.wall_clock.as_secs_f64(),
        report.threads,
        report.cpu_time().as_secs_f64(),
    );
    emit_table("replication", &table);
}
