//! The perf harness: the BENCH trajectory artifact.
//!
//! Runs a fixed scenario matrix — healthy, the four paper figures, and the
//! 16-variant campaign grid (serial and parallel) — and records wall time,
//! simulated steps/sec, offered packets/sec, and peak RSS as
//! `BENCH_<n>.json` at the workspace root. Every future PR appends a new
//! `BENCH_<n>.json` measured by this same harness, so speedups (and
//! regressions) stay comparable across the project's history.
//!
//! ```text
//! cargo run --release -p cd-bench --bin perf                  # full matrix
//! cargo run --release -p cd-bench --bin perf -- --smoke       # CI smoke
//! cargo run --release -p cd-bench --bin perf -- \
//!     --baseline BENCH_base.json --out BENCH_2.json           # with speedups
//! ```
//!
//! `--smoke` shrinks every scenario to 2 s and prints the JSON to stdout
//! without touching the repository — it exists so CI can prove the harness
//! still builds and runs.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

use cd_bench::cli::Args;
use containerdrone_core::phase;
use containerdrone_core::prelude::*;
use containerdrone_core::runner::Scenario;
use sim_core::time::SimDuration;

/// Epoch for the executor's opt-in phase clock. Monotonic nanoseconds
/// since first use; installed into [`containerdrone_core::phase`] so the
/// runner's phase brackets attribute real wall time. cd-bench is a
/// measurement harness, not a simulation crate — the clock never feeds
/// simulation state (`phase_ns` is scratch drained at report time).
static PHASE_EPOCH: OnceLock<Instant> = OnceLock::new();

#[allow(clippy::disallowed_methods)] // wall time is the measurement here
fn phase_clock() -> u64 {
    PHASE_EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One measured scenario.
struct Measurement {
    name: String,
    wall_s: f64,
    sim_s: f64,
    steps: u64,
    packets: u64,
    /// Quanta the time-leap executor advanced in closed form or replay
    /// instead of stepping (`steps - quanta_leaped` were stepped).
    leaped: u64,
    /// Process peak RSS (kB) sampled right after this row ran. The
    /// high-water mark is process-monotone, so each row's figure is an
    /// upper bound on its own footprint; rows run in ascending fleet
    /// size, which keeps the bound tight for the rows that matter.
    rss_kb: u64,
    /// Executor phase breakdown ([`phase::NAMES`] order), wall-ns spent
    /// in network stepping / scheduler quanta / physics / parsing.
    /// Measured by one *extra* clock-on iteration of the same
    /// deterministic work — the timed repeats themselves run with no
    /// clock installed, because two clock reads per bracket inflate a
    /// leap-dense 30 s row's wall time by double-digit percent and the
    /// wall numbers must stay comparable across BENCH history. Zero for
    /// rows whose work runs in other processes (orch) — their executors
    /// never install the clock.
    phases: [u64; phase::COUNT],
}

impl Measurement {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall_s.max(1e-9)
    }

    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_s.max(1e-9)
    }

    fn json(&self) -> String {
        // Phase fields stay flat (`"phase_net_ns":…`) rather than nested:
        // the merge/baseline readers scan entries up to the first `}`.
        let mut s = format!(
            "{{\"name\":\"{}\",\"wall_s\":{:.4},\"sim_s\":{:.2},\"steps\":{},\"steps_per_sec\":{:.0},\"packets\":{},\"packets_per_sec\":{:.0},\"quanta_leaped\":{},\"quanta_stepped\":{}",
            self.name,
            self.wall_s,
            self.sim_s,
            self.steps,
            self.steps_per_sec(),
            self.packets,
            self.packets_per_sec(),
            self.leaped,
            self.steps.saturating_sub(self.leaped),
        );
        for (name, ns) in phase::NAMES.iter().zip(self.phases) {
            let _ = write!(s, ",\"phase_{name}_ns\":{ns}");
        }
        let _ = write!(s, ",\"peak_rss_kb\":{}}}", self.rss_kb);
        s
    }
}

/// Times `work` (which reports `(steps, packets, quanta_leaped,
/// phase_ns)`) `repeat` times clock-off and keeps the fastest run —
/// every iteration repeats identical deterministic work, so best-of
/// discards only host noise. When `phased`, one *extra* clock-on
/// iteration then attributes the row's phase breakdown (see
/// [`Measurement::phases`]); the timed repeats never see the clock.
#[allow(clippy::disallowed_methods)] // wall time is the measurement here
fn measure(
    name: &str,
    repeat: usize,
    phased: bool,
    mut work: impl FnMut() -> (u64, u64, u64, [u64; phase::COUNT]),
) -> Measurement {
    let quantum_s = containerdrone_core::config::SCHED_QUANTUM.as_secs_f64();
    phase::uninstall_clock();
    let mut best: Option<Measurement> = None;
    for _ in 0..repeat.max(1) {
        let started = Instant::now();
        let (steps, packets, leaped, _) = work();
        let wall_s = started.elapsed().as_secs_f64();
        let m = Measurement {
            name: name.to_string(),
            wall_s,
            sim_s: steps as f64 * quantum_s,
            steps,
            packets,
            leaped,
            rss_kb: 0,
            phases: [0; phase::COUNT],
        };
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    let mut best = best.expect("at least one run");
    if phased {
        phase::install_clock(phase_clock);
        let (_, _, _, phases) = work();
        phase::uninstall_clock();
        best.phases = phases;
    }
    best.rss_kb = peak_rss_kb();
    best
}

fn run_scenario(name: &str, cfg: ScenarioConfig, repeat: usize) -> Measurement {
    measure(name, repeat, true, || {
        let result = Scenario::new(cfg.clone()).run();
        (
            result.sim_steps,
            result.net_packets_sent,
            result.quanta_leaped,
            result.phase_ns,
        )
    })
}

/// One fleet matrix cell: `n` vehicles under the shared "mixed"
/// timeline ([`cd_bench::fleet_timelines::mixed`] — the same cell the
/// `fleet` campaign bin reports), on a `threads`-wide executor.
fn fleet_config(n: usize, duration: SimDuration, threads: usize) -> cd_fleet::FleetConfig {
    cd_fleet::FleetConfig::new(ScenarioConfig::healthy().with_duration(duration), n)
        .with_script(cd_bench::fleet_timelines::mixed())
        .with_threads(threads)
}

fn measure_fleet(
    name: &str,
    n: usize,
    duration: SimDuration,
    threads: usize,
    repeat: usize,
) -> Measurement {
    let mut m = measure(name, repeat, true, || {
        let report = cd_fleet::Fleet::new(fleet_config(n, duration, threads)).run();
        (
            report.sim_steps,
            report.net_packets,
            report.quanta_leaped,
            report.phase_ns,
        )
    });
    // `steps` sums quanta over every vehicle machine (the throughput
    // numerator), but simulated time is the *airspace* clock — one
    // flight's duration, not N of them.
    m.sim_s = duration.as_secs_f64();
    m
}

fn measure_campaign(
    name: &str,
    duration: SimDuration,
    seeds: &[u64],
    parallel: bool,
    repeat: usize,
) -> Measurement {
    measure(name, repeat, true, || {
        let spec = cd_bench::standard_grid("perf-campaign", duration, seeds);
        let report = if parallel {
            spec.run()
        } else {
            spec.run_serial()
        };
        let steps = report.outcomes.iter().map(|o| o.result.sim_steps).sum();
        let packets = report
            .outcomes
            .iter()
            .map(|o| o.result.net_packets_sent)
            .sum();
        let leaped = report.outcomes.iter().map(|o| o.result.quanta_leaped).sum();
        let mut phases = [0u64; phase::COUNT];
        for o in &report.outcomes {
            for (acc, v) in phases.iter_mut().zip(o.result.phase_ns) {
                *acc += v;
            }
        }
        (steps, packets, leaped, phases)
    })
}

/// Sums every occurrence of an integer field like `"sim_steps":` in a
/// merged JSONL stream.
fn sum_jsonl_field(jsonl: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let mut total = 0u64;
    let mut rest = jsonl;
    while let Some(at) = rest.find(&key) {
        rest = &rest[at + key.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        total += rest[..end].trim().parse::<u64>().unwrap_or(0);
    }
    total
}

/// Orchestrator throughput rows: the same 16-variant grid as the
/// campaign rows, but driven end-to-end through the multi-process
/// pipeline — worker spawn, frame protocol, ledger appends, ordered
/// merge. Spawns the sibling `cd-orch` binary next to this harness;
/// returns `None` (caller prints a skip notice) when it is not built.
fn measure_orch(
    name: &str,
    workers: usize,
    duration: SimDuration,
    repeat: usize,
) -> Option<Measurement> {
    let orch = std::env::current_exe().ok()?.with_file_name("cd-orch");
    if !orch.exists() {
        return None;
    }
    let dir = std::env::temp_dir().join(format!("cd-orch-perf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok()?;
    let spec_path = dir.join(format!("{name}.spec"));
    let out = dir.join(format!("{name}.jsonl"));
    let ledger = dir.join(format!("{name}.ledger"));
    let spec = format!(
        "name: {name}\nduration_ms: {}\nseeds: 1 2\nattacks: none kill\n\
         protections: stock no-monitor no-iptables bare\n",
        duration.as_millis()
    );
    std::fs::write(&spec_path, spec).ok()?;
    // No phases: the simulation work runs in the spawned workers, whose
    // processes never install a clock — an extra pass would buy nothing.
    Some(measure(name, repeat, false, || {
        std::fs::remove_file(&ledger).ok();
        let status = std::process::Command::new(&orch)
            .arg("--spec")
            .arg(&spec_path)
            .arg("--workers")
            .arg(workers.to_string())
            .arg("--out")
            .arg(&out)
            .arg("--ledger")
            .arg(&ledger)
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn cd-orch");
        assert!(status.success(), "cd-orch exited with {status}");
        let merged = std::fs::read_to_string(&out).expect("merged stream");
        (
            sum_jsonl_field(&merged, "sim_steps"),
            sum_jsonl_field(&merged, "net_packets"),
            sum_jsonl_field(&merged, "quanta_leaped"),
            [0u64; phase::COUNT],
        )
    }))
}

/// Peak resident set size in kB from `/proc/self/status` (0 when
/// unavailable — non-Linux hosts).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Pulls `steps_per_sec` for `name` out of a previously written BENCH json
/// (good enough for the files this harness writes; not a general parser).
fn baseline_steps_per_sec(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"name\":\"{name}\"");
    let obj_start = json.find(&key)?;
    let tail = &json[obj_start..];
    let field = "\"steps_per_sec\":";
    let at = tail.find(field)? + field.len();
    let rest = &tail[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// The scenario object for `name` from a previously written BENCH json.
fn existing_entry(json: &str, name: &str) -> Option<String> {
    let key = format!("{{\"name\":\"{name}\"");
    let start = json.find(&key)?;
    let end = start + json[start..].find('}')?;
    Some(json[start..=end].to_string())
}

/// The `peak_rss_kb` recorded inside one rendered scenario entry.
fn entry_rss_kb(entry: &str) -> Option<u64> {
    let field = "\"peak_rss_kb\":";
    let at = entry.find(field)? + field.len();
    let rest = &entry[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    // Warm the phase-clock epoch once; [`measure`] installs/uninstalls
    // the clock around its single phase-attribution pass per row — the
    // timed repeats always run clock-off (`phase_ns` never feeds
    // results, but the bracket reads would inflate wall time).
    phase_clock();
    let args = Args::parse();
    let smoke = args.has("--smoke");
    let out_path = args.value("--out").map(str::to_string);
    let baseline_path = args.value("--baseline").map(str::to_string);
    let repeat: usize = args.parsed("--repeat").unwrap_or(if smoke { 1 } else { 3 });
    // Executor width for the `-par` fleet rows. Parallelism is a
    // determinism-preserving optimisation, so any value is valid; it only
    // buys wall-clock time when the host actually has the cores.
    let threads: usize = args.parsed("--threads").unwrap_or(4);

    let fig_duration = if smoke {
        SimDuration::from_secs(2)
    } else {
        SimDuration::from_secs(30)
    };
    let campaign_duration = if smoke {
        SimDuration::from_secs(2)
    } else {
        SimDuration::from_secs(10)
    };
    let seeds: &[u64] = if smoke {
        &[2019]
    } else {
        &[2019, 7, 99, 12345]
    };

    println!(
        "perf harness — fixed matrix{}",
        if smoke { " (smoke)" } else { "" }
    );

    let scenarios: [(&str, ScenarioConfig); 5] = [
        ("healthy", ScenarioConfig::healthy()),
        ("fig4-membw-crash", ScenarioConfig::fig4()),
        ("fig5-membw-memguard", ScenarioConfig::fig5()),
        ("fig6-controller-kill", ScenarioConfig::fig6()),
        ("fig7-udp-flood", ScenarioConfig::fig7()),
    ];

    let mut measurements = Vec::new();
    for (name, cfg) in scenarios {
        let m = run_scenario(name, cfg.with_duration(fig_duration), repeat);
        println!(
            "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s",
            m.name,
            m.wall_s,
            m.steps_per_sec(),
            m.packets_per_sec()
        );
        measurements.push(m);
    }
    for (name, parallel) in [("campaign16-serial", false), ("campaign16-parallel", true)] {
        let m = measure_campaign(name, campaign_duration, seeds, parallel, repeat);
        println!(
            "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s",
            m.name,
            m.wall_s,
            m.steps_per_sec(),
            m.packets_per_sec()
        );
        measurements.push(m);
    }
    // Orchestrator rows: the campaign16 grid again, but through the
    // whole cd-orch pipeline (process spawn, frame protocol, ledger
    // sync, ordered merge). Compared against campaign16-serial /
    // -parallel, the gap is the orchestration overhead itself.
    for workers in [1usize, 4] {
        match measure_orch(
            &format!("orch-16-w{workers}"),
            workers,
            campaign_duration,
            repeat,
        ) {
            Some(m) => {
                println!(
                    "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s  (workers={workers})",
                    m.name,
                    m.wall_s,
                    m.steps_per_sec(),
                    m.packets_per_sec()
                );
                measurements.push(m);
            }
            None => println!(
                "  orch-16-w{workers}            skipped — cd-orch binary not built \
                 next to this harness (cargo build --release -p cd-orch)"
            ),
        }
    }
    // Fleet scaling rows: shared-airspace co-simulation under the mixed
    // attack timeline. Steps/sec here counts quanta summed over every
    // vehicle machine, so flat numbers across N mean linear scaling.
    // Smoke keeps fleet flights at 3 s so the mixed timeline's 2 s
    // rolling-flood onset actually fires (a 2 s flight ends exactly at
    // the onset and would measure a healthy fleet under the "mixed"
    // label).
    let fleet_duration = if smoke {
        SimDuration::from_secs(3)
    } else {
        SimDuration::from_secs(5)
    };
    for n in [1usize, 5, 25, 100] {
        let m = measure_fleet(&format!("fleet-n{n}-mixed"), n, fleet_duration, 1, repeat);
        println!(
            "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s",
            m.name,
            m.wall_s,
            m.steps_per_sec(),
            m.packets_per_sec()
        );
        measurements.push(m);
    }
    // Sharded-executor rows: the same mixed timeline on a worker pool.
    // N = 1000 is the swarm-scale cell that pooled per-vehicle memory
    // opened up; its per-row peak RSS is the footprint witness. Smoke
    // exercises the parallel merge path on a small fleet only.
    let par_sizes: &[usize] = if smoke { &[5] } else { &[100, 1000] };
    for &n in par_sizes {
        let m = measure_fleet(
            &format!("fleet-n{n}-mixed-par"),
            n,
            fleet_duration,
            threads,
            repeat,
        );
        println!(
            "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s  (threads={threads}, rss {} MB)",
            m.name,
            m.wall_s,
            m.steps_per_sec(),
            m.packets_per_sec(),
            m.rss_kb / 1024,
        );
        measurements.push(m);
    }
    // Idle-heavy rows: a healthy fleet (no attack timeline) is the
    // regime the event-driven time-leap executor targets — machines
    // mostly waiting between task events. The same cell runs on both
    // executors (leap default vs the quantum-stepped `--no-leap`
    // reference, byte-identical reports), so the pair reads out the
    // executor's own speedup directly; the `quanta_leaped` counter on
    // the leap row is the coverage witness.
    let healthy_sizes: &[usize] = if smoke { &[5] } else { &[1000] };
    for &n in healthy_sizes {
        for (suffix, leap) in [("", true), ("-noleap", false)] {
            let m = measure(&format!("fleet-n{n}-healthy{suffix}"), repeat, true, || {
                let base = ScenarioConfig::healthy().with_duration(fleet_duration);
                let cfg = cd_fleet::FleetConfig::new(base, n)
                    .with_threads(threads)
                    .with_leap(leap);
                let report = cd_fleet::Fleet::new(cfg).run();
                (
                    report.sim_steps,
                    report.net_packets,
                    report.quanta_leaped,
                    report.phase_ns,
                )
            });
            let m = Measurement {
                sim_s: fleet_duration.as_secs_f64(),
                ..m
            };
            println!(
                "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s  ({:.1}% leaped)",
                m.name,
                m.wall_s,
                m.steps_per_sec(),
                m.packets_per_sec(),
                100.0 * m.leaped as f64 / m.steps.max(1) as f64,
            );
            measurements.push(m);
        }
    }
    // Adversarial-airspace rows: V2V swarm streams plus external
    // attacker nodes ([`cd_bench::swarm_fleet_config`] — the same cell
    // the fleet bin's swarm-jam timeline runs). Measures the airspace
    // merge under hostile load: swarm broadcast fan-out, attacker flood
    // bursts, and the token buckets absorbing them.
    let swarm_sizes: &[usize] = if smoke { &[5] } else { &[25, 100] };
    for &n in swarm_sizes {
        let m = measure(&format!("fleet-n{n}-swarm-jam"), repeat, true, || {
            let base = ScenarioConfig::healthy().with_duration(fleet_duration);
            let report = cd_fleet::Fleet::new(cd_bench::swarm_fleet_config(base, n)).run();
            (
                report.sim_steps,
                report.net_packets,
                report.quanta_leaped,
                report.phase_ns,
            )
        });
        let m = Measurement {
            sim_s: fleet_duration.as_secs_f64(),
            ..m
        };
        println!(
            "  {:<22} {:>7.3}s wall  {:>9.0} steps/s  {:>9.0} pkts/s",
            m.name,
            m.wall_s,
            m.steps_per_sec(),
            m.packets_per_sec(),
        );
        measurements.push(m);
    }

    let baseline = baseline_path
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read baseline {p}: {e}")));

    // Default to the *current* PR's artifact so a bare invocation can
    // never clobber a committed prior-PR BENCH file.
    let out_file = out_path
        .clone()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json").to_string());

    // --merge: keep the better of (this run, what the out file already
    // holds) per scenario. Each run repeats identical deterministic work,
    // so best-of across interleaved invocations cancels host CPU phase
    // noise — the methodology for the committed BENCH numbers. Reads the
    // resolved path, so merging works with the default output file too.
    let merge = args.has("--merge");
    let previous = if merge {
        std::fs::read_to_string(&out_file).ok()
    } else {
        None
    };
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            if let Some(prev) = &previous {
                if let (Some(old), Some(old_entry)) = (
                    baseline_steps_per_sec(prev, &m.name),
                    existing_entry(prev, &m.name),
                ) {
                    if old > m.steps_per_sec() {
                        return old_entry;
                    }
                }
            }
            m.json()
        })
        .collect();

    let mut json = String::from("{\n  \"harness\": \"cd-bench perf\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    // The top-level peak must cover the merged rows too: --merge can keep
    // a row measured by an earlier, heavier invocation, whose recorded
    // footprint then exceeds this process's own high-water mark.
    let peak = entries
        .iter()
        .filter_map(|e| entry_rss_kb(e))
        .fold(peak_rss_kb(), u64::max);
    let _ = writeln!(json, "  \"peak_rss_kb\": {peak},");
    json.push_str("  \"scenarios\": [\n");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(json, "    {entry}{comma}");
    }
    json.push_str("  ]");
    if let Some(base) = &baseline {
        json.push_str(",\n  \"speedup_vs_baseline\": {\n");
        let mut rows = Vec::new();
        for (m, entry) in measurements.iter().zip(&entries) {
            let now = baseline_steps_per_sec(entry, &m.name).unwrap_or_else(|| m.steps_per_sec());
            if let Some(before) = baseline_steps_per_sec(base, &m.name) {
                rows.push(format!("    \"{}\": {:.2}", m.name, now / before.max(1e-9)));
            }
        }
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  }");
    }
    json.push_str("\n}\n");

    if smoke && out_path.is_none() {
        println!("{json}");
        println!("smoke run OK (no file written)");
        return;
    }

    std::fs::write(&out_file, &json).expect("write BENCH json");
    println!("wrote {out_file}");
}
