//! Campaign execution: run whole grids of scenarios across threads.
//!
//! A [`CampaignSpec`] is a list of labelled scenario variants — typically
//! a cartesian product of attack timelines × protection settings × seeds
//! built with [`CampaignSpec::product`]. [`CampaignSpec::run`] executes
//! the variants on a worker pool of scoped threads (scenarios are
//! independent, deterministic, share-nothing simulations, so they
//! parallelise perfectly on multicore hosts) and aggregates every
//! [`ScenarioResult`] into one [`CampaignReport`] with ASCII and CSV
//! renderings.
//!
//! # Examples
//!
//! ```
//! use cd_bench::campaign::CampaignSpec;
//! use containerdrone_core::prelude::*;
//! use sim_core::time::SimDuration;
//!
//! let short = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(1));
//! let report = CampaignSpec::new("smoke")
//!     .variant("healthy-a", short.clone())
//!     .variant("healthy-b", short.with_seed(7))
//!     .run();
//! assert_eq!(report.outcomes.len(), 2);
//! assert!(!report.outcomes[0].result.crashed());
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use attacks::script::AttackScript;
use cd_obs::metrics::{Counter, Registry};
use cd_obs::trace::TraceSink;
use containerdrone_core::runner::{Scenario, ScenarioResult};
use containerdrone_core::scenario::ScenarioConfig;
use containerdrone_core::Protections;
use sim_core::time::{SimDuration, SimTime};

use crate::ascii_table;

/// One labelled scenario in a campaign.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Human-readable variant label (shows up in report rows).
    pub label: String,
    /// The scenario to run.
    pub config: ScenarioConfig,
}

/// Pre-registered campaign-progress counters, shared (lock-free) by
/// every worker thread so a live scrape sees the grid drain mid-run.
#[derive(Debug, Clone)]
struct CampaignMetrics {
    started: Counter,
    crash: Counter,
    lost_ctl: Counter,
    stable: Counter,
    switches: Counter,
}

impl CampaignMetrics {
    fn register(reg: &Registry) -> Self {
        let done = "Campaign variants completed, by verdict.";
        CampaignMetrics {
            started: reg.counter(
                "cd_campaign_variants_started_total",
                "Campaign variants handed to a worker.",
                &[],
            ),
            crash: reg.counter("cd_campaign_variants_total", done, &[("verdict", "crash")]),
            lost_ctl: reg.counter(
                "cd_campaign_variants_total",
                done,
                &[("verdict", "lost-ctl")],
            ),
            stable: reg.counter("cd_campaign_variants_total", done, &[("verdict", "stable")]),
            switches: reg.counter(
                "cd_campaign_switches_total",
                "Variants whose monitor performed the Simplex switch.",
                &[],
            ),
        }
    }
}

/// A batch of scenario variants to execute.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (report heading, CSV file stem).
    pub name: String,
    variants: Vec<Variant>,
    trace: bool,
    metrics: Option<CampaignMetrics>,
}

impl CampaignSpec {
    /// An empty campaign.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            variants: Vec::new(),
            trace: false,
            metrics: None,
        }
    }

    /// Enables per-variant structured tracing: each variant's vehicle
    /// records into a pre-allocated ring (ordinal = variant index),
    /// drained every 250 simulated ms, and the per-variant JSONL
    /// fragments land in [`CampaignOutcome::trace`]. Because fragments
    /// are keyed to variants (not threads), the concatenated stream from
    /// [`CampaignReport::trace_bytes`] is byte-identical at any worker
    /// count.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Registers campaign-progress counters (variants started, verdicts,
    /// switches) in `registry`; workers update them live as the grid
    /// drains. Share the registry with [`cd_obs::server::serve`] to
    /// scrape a campaign in flight.
    #[must_use]
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = Some(CampaignMetrics::register(registry));
        self
    }

    /// Adds one variant (chainable).
    #[must_use]
    pub fn variant(mut self, label: impl Into<String>, config: ScenarioConfig) -> Self {
        self.variants.push(Variant {
            label: label.into(),
            config,
        });
        self
    }

    /// Builds the cartesian product `attacks × protections × seeds` over a
    /// base configuration — the standard campaign shape. Labels compose as
    /// `attack/protection/seed`.
    pub fn product(
        name: impl Into<String>,
        base: &ScenarioConfig,
        attacks: &[(&str, AttackScript)],
        protections: &[(&str, Protections)],
        seeds: &[u64],
    ) -> Self {
        let mut spec = CampaignSpec::new(name);
        for (attack_label, script) in attacks {
            for (prot_label, prot) in protections {
                for &seed in seeds {
                    let mut cfg = base.clone();
                    cfg.attacks = script.clone();
                    cfg.framework.protections = *prot;
                    cfg.seed = seed;
                    spec = spec.variant(format!("{attack_label}/{prot_label}/seed{seed}"), cfg);
                }
            }
        }
        spec
    }

    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// `true` when no variants are scheduled.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The scheduled variants.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// Runs every variant on one worker per available core (capped at the
    /// variant count).
    pub fn run(self) -> CampaignReport {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        self.run_with_threads(threads)
    }

    /// Runs every variant serially on the calling thread (the baseline
    /// the speedup bench compares against).
    pub fn run_serial(self) -> CampaignReport {
        self.run_with_threads(1)
    }

    /// Runs every variant on a pool of exactly `threads` workers.
    ///
    /// Variants are handed out through an atomic cursor, so the pool
    /// stays busy even when run times are skewed (a crashing scenario
    /// ends early; a 30 s stable flight does not). Outcomes keep variant
    /// order regardless of completion order.
    // Measuring wall time is this harness's job (clippy.toml bans it
    // elsewhere to keep sim code on the virtual clock).
    #[allow(clippy::disallowed_methods)]
    pub fn run_with_threads(self, threads: usize) -> CampaignReport {
        let CampaignSpec {
            name,
            variants,
            trace,
            metrics,
        } = self;
        let n = variants.len();
        let threads = threads.clamp(1, n.max(1));
        let started = Instant::now();

        let mut slots: Vec<Mutex<Option<CampaignOutcome>>> = Vec::with_capacity(n);
        slots.resize_with(n, || Mutex::new(None));
        let cursor = AtomicUsize::new(0);
        let metrics = metrics.as_ref();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(variant) = variants.get(i) else {
                        break;
                    };
                    if let Some(m) = metrics {
                        m.started.inc();
                    }
                    let outcome = run_variant(variant, i, trace);
                    if let Some(m) = metrics {
                        match outcome.verdict() {
                            "crash" => m.crash.inc(),
                            "lost-ctl" => m.lost_ctl.inc(),
                            _ => m.stable.inc(),
                        }
                        if outcome.result.switch_time.is_some() {
                            m.switches.inc();
                        }
                    }
                    *slots[i].lock().expect("outcome slot") = Some(outcome);
                });
            }
        });

        let outcomes = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("outcome slot")
                    .expect("every variant ran")
            })
            .collect();

        CampaignReport {
            name,
            outcomes,
            wall_clock: started.elapsed(),
            threads,
        }
    }
}

#[allow(clippy::disallowed_methods)] // wall time is the measurement here
fn run_variant(variant: &Variant, ord: usize, trace: bool) -> CampaignOutcome {
    let started = Instant::now();
    let config = variant.config.clone();
    let end = SimTime::ZERO + config.duration;
    let (result, trace) = if trace {
        run_variant_traced(config, ord)
    } else {
        (Scenario::new(config).run(), Vec::new())
    };
    let from = result.attack_onset.unwrap_or(SimTime::from_secs(2));
    CampaignOutcome {
        label: variant.label.clone(),
        seed: result.config.seed,
        max_deviation: result.max_deviation(from, end),
        run_time: started.elapsed(),
        trace,
        result,
    }
}

/// Runs exactly one variant to completion — the unit of work the
/// multi-process orchestrator (`cd-orch`) hands to a worker. Identical
/// to what [`CampaignSpec::run`] executes per variant (minus tracing),
/// so a worker-produced [`CampaignOutcome::jsonl_record`] is
/// byte-for-byte what the in-process campaign produces for the same
/// variant.
pub fn run_one(variant: &Variant) -> CampaignOutcome {
    run_variant(variant, 0, false)
}

/// [`run_one`] advanced in fixed sim-time windows, invoking `progress`
/// after every window (and once at the end) with the current sim time.
///
/// The window loop runs on the same leap executor as
/// [`containerdrone_core::runner::Scenario::run`] and the result is
/// byte-identical to [`run_one`]'s — the equivalence is pinned by a
/// test below. Workers use the callback to emit liveness heartbeats
/// (and, under fault injection, to die or stall mid-run) without
/// perturbing the deterministic outcome.
#[allow(clippy::disallowed_methods)] // wall time is the measurement here
pub fn run_one_windowed(
    variant: &Variant,
    window: SimDuration,
    progress: &mut dyn FnMut(SimTime),
) -> CampaignOutcome {
    let started = Instant::now();
    let config = variant.config.clone();
    let end = SimTime::ZERO + config.duration;
    let mut run = Scenario::new(config).start();
    loop {
        let before = run.now();
        run.advance_to_leap(before + window);
        if run.now() == before {
            break;
        }
        progress(run.now());
    }
    let result = run.finish();
    let from = result.attack_onset.unwrap_or(SimTime::from_secs(2));
    CampaignOutcome {
        label: variant.label.clone(),
        seed: result.config.seed,
        max_deviation: result.max_deviation(from, end),
        run_time: started.elapsed(),
        trace: Vec::new(),
        result,
    }
}

/// [`Scenario::run`] with a trace ring attached (ordinal = variant
/// index), advanced in 250 ms windows on the same leap executor and
/// drained after each window — sim-time drain points, so the JSONL
/// fragment is a pure function of the variant.
fn run_variant_traced(config: ScenarioConfig, ord: usize) -> (ScenarioResult, Vec<u8>) {
    let mut run = Scenario::new(config).start();
    run.vehicle_mut().obs_port().attach(8192, ord as u32);
    let (mut sink, buf) = TraceSink::in_memory();
    let window = SimDuration::from_millis(250);
    loop {
        let before = run.now();
        run.advance_to_leap(before + window);
        run.vehicle_mut()
            .obs_port()
            .drain(|ev| sink.write_event(ev));
        if run.now() == before {
            break;
        }
    }
    sink.flush();
    (run.finish(), buf.take())
}

/// One variant's outcome: the headline numbers plus the full result for
/// downstream artifact writing.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The variant's label.
    pub label: String,
    /// The seed it ran with.
    pub seed: u64,
    /// Max deviation from the setpoint between the first attack onset
    /// (or 2 s, for healthy runs) and the end of the flight, metres.
    pub max_deviation: f64,
    /// Host wall-clock time this variant took.
    pub run_time: Duration,
    /// This variant's JSONL trace fragment (empty unless the spec ran
    /// with [`CampaignSpec::with_trace`]).
    pub trace: Vec<u8>,
    /// The full scenario result.
    pub result: ScenarioResult,
}

impl CampaignOutcome {
    /// Compact outcome classification: `crash`, `lost-ctl` or `stable`.
    pub fn verdict(&self) -> &'static str {
        if self.result.crashed() {
            "crash"
        } else if self.max_deviation > 2.0 {
            "lost-ctl"
        } else {
            "stable"
        }
    }

    /// One newline-terminated JSON record for this outcome, built from
    /// **deterministic fields only** — no wall-clock time, no host
    /// state. Every field is a pure function of the variant, so the
    /// record is byte-identical whether the variant ran in-process, in
    /// a worker process, on the first attempt or the fifth retry. This
    /// is the merged-result wire format of the `cd-orch` orchestrator
    /// and the reference stream it is byte-diffed against.
    pub fn jsonl_record(&self) -> String {
        let switch = self
            .result
            .switch_time
            .map(|t| format!("{:.3}", t.as_secs_f64()))
            .unwrap_or_else(|| "null".into());
        format!(
            "{{\"variant\":\"{}\",\"seed\":{},\"outcome\":\"{}\",\"crashed\":{},\"switch_s\":{},\"max_deviation_m\":{:.4},\"sim_steps\":{},\"quanta_leaped\":{},\"net_packets\":{}}}\n",
            self.label,
            self.seed,
            self.verdict(),
            self.result.crashed(),
            switch,
            self.max_deviation,
            self.result.sim_steps,
            self.result.quanta_leaped,
            self.result.net_packets_sent,
        )
    }
}

/// Aggregated results of one campaign run.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-variant outcomes, in spec order.
    pub outcomes: Vec<CampaignOutcome>,
    /// Wall-clock time for the whole batch.
    pub wall_clock: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl CampaignReport {
    /// Renders the standard outcome table.
    pub fn ascii_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    o.verdict().to_string(),
                    o.result
                        .switch_time
                        .map(|t| format!("{:.1}s", t.as_secs_f64()))
                        .unwrap_or_else(|| "-".into()),
                    format!("{:.3}", o.max_deviation),
                    format!("{:.2}s", o.run_time.as_secs_f64()),
                ]
            })
            .collect();
        ascii_table(
            &["variant", "outcome", "switch", "max dev (m)", "run time"],
            &rows,
        )
    }

    /// Renders one CSV row per variant.
    pub fn to_csv(&self) -> String {
        let mut csv =
            String::from("variant,seed,outcome,crashed,switch_s,max_deviation_m,run_time_s\n");
        for o in &self.outcomes {
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{:.3}\n",
                o.label,
                o.seed,
                o.verdict(),
                o.result.crashed(),
                o.result
                    .switch_time
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
                o.max_deviation,
                o.run_time.as_secs_f64(),
            ));
        }
        csv
    }

    /// Sum of per-variant run times — what a serial execution would have
    /// cost (up to scheduling noise).
    pub fn cpu_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.run_time).sum()
    }

    /// Looks an outcome up by label.
    pub fn outcome(&self, label: &str) -> Option<&CampaignOutcome> {
        self.outcomes.iter().find(|o| o.label == label)
    }

    /// The campaign's full JSONL trace: per-variant fragments
    /// concatenated in spec order — worker count and completion order
    /// cancel out, so the stream is byte-identical at any thread count.
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.outcomes.iter().map(|o| o.trace.len()).sum());
        for o in &self.outcomes {
            out.extend_from_slice(&o.trace);
        }
        out
    }

    /// The campaign's deterministic result stream: one
    /// [`CampaignOutcome::jsonl_record`] per variant, concatenated in
    /// spec order. This is the in-process reference the `cd-orch`
    /// orchestrator's merged output is byte-diffed against.
    pub fn jsonl_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for o in &self.outcomes {
            out.extend_from_slice(o.jsonl_record().as_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn short() -> ScenarioConfig {
        ScenarioConfig::healthy().with_duration(SimDuration::from_secs(1))
    }

    #[test]
    fn outcomes_keep_spec_order_under_parallelism() {
        let mut spec = CampaignSpec::new("order");
        for i in 0..6 {
            spec = spec.variant(format!("v{i}"), short().with_seed(i));
        }
        let report = spec.run_with_threads(3);
        let labels: Vec<&str> = report.outcomes.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["v0", "v1", "v2", "v3", "v4", "v5"]);
        assert_eq!(report.threads, 3);
    }

    #[test]
    fn product_builds_the_full_grid() {
        let base = short();
        let spec = CampaignSpec::product(
            "grid",
            &base,
            &[
                ("none", AttackScript::none()),
                ("also-none", AttackScript::none()),
            ],
            &[("stock", Protections::default())],
            &[1, 2, 3],
        );
        assert_eq!(spec.len(), 6);
        assert_eq!(spec.variants()[0].label, "none/stock/seed1");
        assert_eq!(spec.variants()[5].config.seed, 3);
    }

    #[test]
    fn thread_count_is_clamped_to_variant_count() {
        let report = CampaignSpec::new("tiny")
            .variant("only", short())
            .run_with_threads(64);
        assert_eq!(report.threads, 1);
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn windowed_run_matches_one_shot_run_byte_for_byte() {
        // `run_one_windowed` is the worker-process execution shape
        // (heartbeat hooks between sim windows); its record must be
        // byte-identical to the in-process campaign's.
        let variant = Variant {
            label: "windowed".into(),
            config: short().with_seed(11),
        };
        let one_shot = run_one(&variant);
        let mut windows = 0;
        let windowed = run_one_windowed(&variant, SimDuration::from_millis(250), &mut |_| {
            windows += 1;
        });
        assert!(windows >= 3, "progress fired per window (got {windows})");
        assert_eq!(one_shot.jsonl_record(), windowed.jsonl_record());
    }

    #[test]
    fn jsonl_bytes_concatenates_records_in_spec_order() {
        let report = CampaignSpec::new("jsonl")
            .variant("a", short())
            .variant("b", short().with_seed(5))
            .run_with_threads(2);
        let bytes = report.jsonl_bytes();
        let text = String::from_utf8(bytes.clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"variant\":\"a\",\"seed\":2019,"));
        assert!(lines[1].starts_with("{\"variant\":\"b\",\"seed\":5,"));
        assert!(lines[0].contains("\"switch_s\":null"));
        // Per-variant records are what the stream concatenates.
        let rejoined: Vec<u8> = report
            .outcomes
            .iter()
            .flat_map(|o| o.jsonl_record().into_bytes())
            .collect();
        assert_eq!(bytes, rejoined);
    }

    #[test]
    fn csv_and_table_cover_every_variant() {
        let report = CampaignSpec::new("render")
            .variant("a", short())
            .variant("b", short().with_seed(5))
            .run_serial();
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 rows");
        assert!(csv.contains("a,2019,stable"));
        assert!(report.ascii_table().contains("| b"));
    }
}
