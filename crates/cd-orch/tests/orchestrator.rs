//! End-to-end orchestrator resilience tests, against real worker
//! processes (the compiled `cd-orch` binary).
//!
//! The load-bearing invariant in every test: the merged JSONL stream
//! is **byte-identical** to the in-process `Campaign` reference — no
//! matter the worker count, the injected crash/stall/garbage schedule,
//! or a SIGKILL of the orchestrator itself halfway through.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cd_orch::orchestrator::{self, quarantine_record, OrchOptions};
use cd_orch::{InjectConfig, LedgerError, OrchError, OrchSpec, RetryPolicy, RunOutcome};

const SPEC: &str =
    "name: it\nduration_ms: 900\nseeds: 1 2\nattacks: none kill\nprotections: stock no-monitor\n";

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_cd-orch"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cd-orch-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

fn opts(tag: &str, spec: &str) -> OrchOptions {
    let mut o = OrchOptions::new(
        spec,
        tmp(&format!("{tag}.jsonl")),
        tmp(&format!("{tag}.ledger")),
    );
    o.worker_exe = worker_exe();
    o
}

#[test]
fn merged_stream_is_byte_identical_across_worker_counts() {
    let reference = orchestrator::reference_bytes(SPEC).expect("reference");
    assert!(!reference.is_empty());
    // The merged wire format must carry the executor's leap counter, and
    // worker runs must actually leap — a zero here is the PR-9 reporting
    // bug (orchestrated rows always claimed quanta_leaped: 0) coming
    // back.
    let text = String::from_utf8(reference.clone()).expect("utf8");
    assert!(
        text.lines().all(|l| l.contains("\"quanta_leaped\":")),
        "every merged record must report quanta_leaped: {text}"
    );
    assert!(
        text.lines().any(|l| !l.contains("\"quanta_leaped\":0,")),
        "orchestrated runs must leap somewhere in the sweep: {text}"
    );
    for workers in [1usize, 2, 8] {
        let mut o = opts(&format!("wc{workers}"), SPEC);
        o.workers = workers;
        let summary = orchestrator::run(&o).expect("orchestrate");
        assert_eq!(summary.runs, 8);
        assert_eq!(summary.completed, 8);
        assert_eq!(summary.failed, 0);
        let merged = std::fs::read(&o.out).expect("merged");
        assert_eq!(
            merged, reference,
            "workers={workers}: merged stream diverged from the in-process reference"
        );
    }
}

#[test]
fn injected_faults_change_nothing_but_the_retry_count() {
    let reference = orchestrator::reference_bytes(SPEC).expect("reference");
    let mut o = opts("inject", SPEC);
    o.workers = 4;
    o.inject = InjectConfig::parse("kill:0.4,stall:0.1,garbage:0.1").expect("inject");
    o.inject_seed = 2019;
    o.deadline_ms = 3000; // stalls are reaped by this deadline
                          // The deterministic schedule for seed 2019 has a 12-deep fault
                          // streak on one run; 16 attempts lets every run clear.
    o.policy = RetryPolicy {
        max_attempts: 16,
        base_delay_ms: 5,
        cap_delay_ms: 50,
    };
    let summary = orchestrator::run(&o).expect("orchestrate");
    assert_eq!(
        summary.completed, 8,
        "faults must be survived, not reported"
    );
    assert_eq!(summary.failed, 0);
    assert!(
        summary.retries > 0,
        "a 0.6 per-attempt fault rate over 8 runs must trigger retries"
    );
    assert_eq!(summary.worker_restarts, summary.retries);
    let merged = std::fs::read(&o.out).expect("merged");
    assert_eq!(
        merged, reference,
        "injected faults leaked into the output bytes"
    );
}

#[test]
#[allow(clippy::disallowed_methods)] // kill-timing poll loop; wall time never reaches the compared bytes
fn sigkilled_orchestrator_resumes_and_finishes_remaining_work() {
    let reference = orchestrator::reference_bytes(SPEC).expect("reference");
    let spec_path = tmp("resume.spec");
    std::fs::write(&spec_path, SPEC).expect("spec");
    let out = tmp("resume.jsonl");
    let ledger = tmp("resume.ledger");
    std::fs::remove_file(&ledger).ok();

    // Run the real binary so SIGKILL hits the whole orchestrator, and
    // slow it down (1 worker) so the kill lands mid-sweep.
    let mut child = Command::new(worker_exe())
        .arg("--spec")
        .arg(&spec_path)
        .arg("--workers")
        .arg("1")
        .arg("--out")
        .arg(&out)
        .arg("--ledger")
        .arg(&ledger)
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn orchestrator");

    // Wait until the ledger holds at least one settled run, then kill.
    let deadline = Instant::now() + Duration::from_secs(120);
    let progressed = loop {
        if let Ok(bytes) = std::fs::read(&ledger) {
            if let Ok(load) = cd_orch::ledger::parse(&bytes) {
                if !load.records.is_empty() {
                    break true;
                }
            }
        }
        match child.try_wait().expect("try_wait") {
            Some(_) => break false, // finished before we could kill it
            None if Instant::now() > deadline => panic!("no ledger progress in 120s"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    if progressed {
        child.kill().expect("SIGKILL"); // Child::kill is SIGKILL on unix
    }
    child.wait().expect("reap");

    // Resume in-process (for the summary) and byte-check the merge.
    let settled_before = cd_orch::ledger::parse(&std::fs::read(&ledger).expect("ledger"))
        .expect("parse")
        .records
        .len();
    let mut o = opts("resume", SPEC);
    o.out = out;
    o.ledger = ledger;
    o.resume = true;
    let summary = orchestrator::run(&o).expect("resume");
    assert_eq!(summary.runs, 8);
    assert_eq!(summary.completed, 8);
    assert_eq!(summary.resumed, settled_before);
    if progressed {
        assert!(summary.resumed > 0, "resume replayed nothing");
    }
    let merged = std::fs::read(&o.out).expect("merged");
    assert_eq!(
        merged, reference,
        "the SIGKILL + --resume boundary leaked into the output bytes"
    );
}

#[test]
fn permanently_failing_runs_quarantine_without_wedging_the_sweep() {
    // Every attempt draws Kill: no run can ever complete.
    let spec = "name: q\nduration_ms: 600\nseeds: 1 2\nattacks: none\nprotections: stock\n";
    let mut o = opts("quarantine", spec);
    o.workers = 2;
    o.inject = InjectConfig::parse("kill:1").expect("inject");
    o.policy = RetryPolicy {
        max_attempts: 3,
        base_delay_ms: 1,
        cap_delay_ms: 5,
    };
    let summary = orchestrator::run(&o).expect("must settle, not wedge");
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.failed, 2);
    assert_eq!(summary.retries, 2 * 2); // 2 runs × (3 attempts - 1)
    let merged = String::from_utf8(std::fs::read(&o.out).expect("merged")).expect("utf8");
    let spec = OrchSpec::parse(spec).expect("spec");
    let campaign = spec.campaign();
    let expected: String = campaign
        .variants()
        .iter()
        .map(|v| quarantine_record(&v.label, v.config.seed))
        .collect();
    assert_eq!(
        merged, expected,
        "quarantine records must be synthesized in spec order"
    );

    // The ledger agrees: every run settled as Failed.
    let load = cd_orch::ledger::parse(&std::fs::read(&o.ledger).expect("ledger")).expect("parse");
    assert_eq!(load.records.len(), 2);
    assert!(load.records.iter().all(|r| r.outcome == RunOutcome::Failed));
}

#[test]
fn resume_refuses_a_corrupt_ledger_naming_the_offset() {
    let mut o = opts("corrupt", SPEC);
    o.workers = 2;
    orchestrator::run(&o).expect("first pass");

    // Damage a byte inside the second record's body, then resume.
    let mut bytes = std::fs::read(&o.ledger).expect("ledger");
    let second = cd_orch::ledger::parse(&bytes).expect("parse").records[1].offset;
    bytes[second as usize + 10] ^= 0xFF;
    std::fs::write(&o.ledger, &bytes).expect("rewrite");

    o.resume = true;
    match orchestrator::run(&o) {
        Err(OrchError::Ledger(LedgerError::Corrupt { offset, reason })) => {
            assert_eq!(offset, second, "error must name the damaged record");
            assert!(reason.contains("checksum"), "reason: {reason}");
        }
        other => panic!("wanted Corrupt at {second}, got {other:?}"),
    }
}

#[test]
fn resume_refuses_a_ledger_from_a_different_spec() {
    let mut o = opts("digest", SPEC);
    o.workers = 2;
    orchestrator::run(&o).expect("first pass");
    o.spec_text = SPEC.replace("seeds: 1 2", "seeds: 3 4");
    o.resume = true;
    match orchestrator::run(&o) {
        Err(OrchError::Ledger(LedgerError::DigestMismatch { .. })) => {}
        other => panic!("wanted DigestMismatch, got {other:?}"),
    }
}

#[test]
fn metrics_registry_counts_the_sweep() {
    let registry = Arc::new(cd_obs::Registry::new());
    let mut o = opts("metrics", SPEC);
    o.workers = 2;
    o.inject = InjectConfig::parse("kill:0.3").expect("inject");
    o.inject_seed = 7;
    o.policy = RetryPolicy {
        max_attempts: 12,
        base_delay_ms: 5,
        cap_delay_ms: 50,
    };
    o.metrics = Some(Arc::clone(&registry));
    let summary = orchestrator::run(&o).expect("orchestrate");
    let text = registry.render_prometheus();
    assert!(
        text.contains("cd_orch_runs_total{outcome=\"ok\"} 8"),
        "{text}"
    );
    assert!(
        text.contains(&format!("cd_orch_retries_total {}", summary.retries)),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "cd_orch_worker_restarts_total {}",
            summary.worker_restarts
        )),
        "{text}"
    );
    assert!(text.contains("cd_orch_runs_pending 0"), "{text}");
}
