//! `cd-orch` — crash-resilient campaign orchestration from the shell.
//!
//! ```text
//! cd-orch --spec sweep.spec --workers 4 --out merged.jsonl --ledger sweep.ledger
//! cd-orch --spec sweep.spec --resume …            # after a SIGKILL
//! cd-orch --spec sweep.spec --inject kill:0.3,stall:0.1 …
//! cd-orch --reference --spec sweep.spec --out ref.jsonl
//! cd-orch --worker                                # spawned by the parent, not you
//! ```
//!
//! The merged JSONL stream is byte-identical for a given spec no
//! matter the worker count, crash schedule, retry history, or resume
//! point; `--reference` produces the same bytes in-process for
//! comparison.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use cd_bench::cli::Args;
use cd_obs::Registry;
use cd_orch::orchestrator::{self, OrchOptions};
use cd_orch::worker::worker_main;
use cd_orch::{InjectConfig, RetryPolicy};

fn main() -> ExitCode {
    let args = Args::parse();

    if args.has("--worker") {
        let inject = match InjectConfig::parse(args.value("--inject").unwrap_or("")) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("cd-orch --worker: {e}");
                return ExitCode::from(2);
            }
        };
        let seed = args.parsed::<u64>("--inject-seed").unwrap_or(0);
        return ExitCode::from(worker_main(inject, seed) as u8);
    }

    let Some(spec_path) = args.value("--spec") else {
        eprintln!(
            "usage: cd-orch --spec <file> [--workers N] [--out merged.jsonl] \
             [--ledger sweep.ledger] [--resume] [--inject kill:R,stall:R,garbage:R] \
             [--inject-seed N] [--metrics-addr HOST:PORT] [--deadline-ms N] \
             [--max-attempts N] [--backoff-base-ms N] [--backoff-cap-ms N] \
             [--stream] [--reference]"
        );
        return ExitCode::from(2);
    };
    let spec_text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cd-orch: reading {spec_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let out = PathBuf::from(args.value("--out").unwrap_or("merged.jsonl"));

    if args.has("--reference") {
        return match orchestrator::reference_bytes(&spec_text) {
            Ok(bytes) => match std::fs::write(&out, &bytes) {
                Ok(()) => {
                    eprintln!("cd-orch: reference written to {}", out.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cd-orch: writing {}: {e}", out.display());
                    ExitCode::from(2)
                }
            },
            Err(e) => {
                eprintln!("cd-orch: {e}");
                ExitCode::from(2)
            }
        };
    }

    let inject = match InjectConfig::parse(args.value("--inject").unwrap_or("")) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("cd-orch: {e}");
            return ExitCode::from(2);
        }
    };
    let mut policy = RetryPolicy::default();
    if let Some(n) = args.parsed::<u32>("--max-attempts") {
        policy.max_attempts = n.max(1);
    }
    if let Some(n) = args.parsed::<u64>("--backoff-base-ms") {
        policy.base_delay_ms = n;
    }
    if let Some(n) = args.parsed::<u64>("--backoff-cap-ms") {
        policy.cap_delay_ms = n;
    }

    let mut opts = OrchOptions::new(
        spec_text,
        out,
        PathBuf::from(args.value("--ledger").unwrap_or("sweep.ledger")),
    );
    opts.workers = args.parsed::<usize>("--workers").unwrap_or(2).max(1);
    opts.resume = args.has("--resume");
    opts.inject = inject;
    opts.inject_seed = args.parsed::<u64>("--inject-seed").unwrap_or(0);
    opts.policy = policy;
    opts.deadline_ms = args.parsed::<u64>("--deadline-ms").unwrap_or(5000);
    opts.stream = args.has("--stream");

    // Live metrics, if asked for. The server thread holds its own Arc
    // and shuts down when the process exits.
    let _server = match args.value("--metrics-addr") {
        Some(addr) => {
            let registry = Arc::new(Registry::new());
            opts.metrics = Some(Arc::clone(&registry));
            match cd_obs::server::serve(registry, addr) {
                Ok(server) => {
                    eprintln!("cd-orch: metrics on http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("cd-orch: cannot serve metrics on {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    match orchestrator::run(&opts) {
        Ok(summary) => {
            eprintln!(
                "cd-orch: {} runs settled ({} ok, {} failed), {} resumed, \
                 {} retries, {} worker restarts -> {}",
                summary.runs,
                summary.completed,
                summary.failed,
                summary.resumed,
                summary.retries,
                summary.worker_restarts,
                opts.out.display(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cd-orch: {e}");
            ExitCode::FAILURE
        }
    }
}
