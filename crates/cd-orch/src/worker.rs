//! The worker side of the orchestrator: `cd-orch --worker`.
//!
//! A worker is a thin, disposable shell around
//! [`cd_bench::campaign::run_one_windowed`]. Its whole conversation
//! with the parent:
//!
//! ```text
//! stdin  (text):  SPEC <len>\n<len spec bytes>   once, at startup
//! stdout (frame): Ready { digest }               handshake
//! stdin  (text):  RUN <run> <attempt>\n          repeated
//! stdout (frame): Heartbeat { run } …            one per sim window
//! stdout (frame): Result { run, jsonl }          the settled record
//! stdin  (text):  EXIT\n  (or EOF)               shut down
//! ```
//!
//! The worker never prints anything else on stdout — frames only —
//! and never makes a retry/ordering decision; all policy lives in the
//! parent. Under `--inject` the worker consults the deterministic
//! per-`(run, attempt)` draw and misbehaves on cue: aborts mid-run,
//! stalls forever (heartbeats stop, the parent's deadline reaps it),
//! or corrupts its result frame's checksum.

use std::io::{BufRead, Write};

use cd_bench::campaign::run_one_windowed;
use sim_core::time::SimDuration;

use crate::inject::{Fault, InjectConfig};
use crate::spec::OrchSpec;
use crate::wire::{encode, Frame};

/// Sim-time window between heartbeats: small enough that a handful of
/// windows fit even the shortest smoke flight, large enough that the
/// leap executor still skips quiescent stretches inside a window.
pub const HEARTBEAT_WINDOW_MS: u64 = 250;

/// Runs the worker protocol over this process's stdin/stdout until
/// `EXIT` or EOF. Returns the process exit code.
pub fn worker_main(inject: InjectConfig, inject_seed: u64) -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match serve(&mut input, &mut output, inject, inject_seed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("cd-orch worker: {e}");
            1
        }
    }
}

/// The worker protocol loop, factored over generic streams for tests.
pub fn serve<R: BufRead, W: Write>(
    input: &mut R,
    output: &mut W,
    inject: InjectConfig,
    inject_seed: u64,
) -> Result<(), String> {
    // Preamble: the spec bytes, length-prefixed on a text line.
    let mut line = String::new();
    if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
        return Ok(()); // parent vanished before the spec: quiet exit
    }
    let len: usize = line
        .trim()
        .strip_prefix("SPEC ")
        .ok_or_else(|| format!("expected `SPEC <len>`, got `{}`", line.trim()))?
        .parse()
        .map_err(|e| format!("bad SPEC length: {e}"))?;
    let mut spec_bytes = vec![0u8; len];
    input
        .read_exact(&mut spec_bytes)
        .map_err(|e| format!("reading {len} spec bytes: {e}"))?;
    let spec_text = String::from_utf8(spec_bytes).map_err(|e| format!("spec not UTF-8: {e}"))?;
    let spec = OrchSpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let campaign = spec.campaign();
    let variants = campaign.variants();

    send(
        output,
        &Frame::Ready {
            digest: spec.digest(),
        },
    )?;

    loop {
        let mut line = String::new();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Ok(()); // EOF: parent closed our stdin
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "EXIT" {
            return Ok(());
        }
        let mut parts = line.split_whitespace();
        let (cmd, run, attempt) = (parts.next(), parts.next(), parts.next());
        let (Some("RUN"), Some(run), Some(attempt), None) = (cmd, run, attempt, parts.next())
        else {
            return Err(format!("unknown command `{line}`"));
        };
        let run: u32 = run.parse().map_err(|e| format!("RUN index: {e}"))?;
        let attempt: u32 = attempt.parse().map_err(|e| format!("RUN attempt: {e}"))?;
        let variant = variants
            .get(run as usize)
            .ok_or_else(|| format!("RUN {run} outside the {}-variant grid", variants.len()))?;

        let fault = inject.draw(inject_seed, run, attempt);
        let mut window_no = 0u64;
        let outcome = run_one_windowed(
            variant,
            SimDuration::from_millis(HEARTBEAT_WINDOW_MS),
            &mut |_now| {
                window_no += 1;
                if window_no == 1 {
                    match fault {
                        // Die exactly as an OOM-kill would: no
                        // unwinding, no farewell frame.
                        Some(Fault::Kill) => std::process::abort(),
                        // Stop making progress; the parent's deadline
                        // reaps us. Sleep in a loop so a spurious
                        // wakeup can't resurrect the run.
                        Some(Fault::Stall) => loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        },
                        _ => {}
                    }
                }
                // Heartbeats ride stdout between result frames. A
                // failed write means the parent is gone; dying loudly
                // here is fine — the run will be retried elsewhere.
                let _ = send_heartbeat(output, run);
            },
        );

        let mut frame = encode(&Frame::Result {
            run,
            jsonl: outcome.jsonl_record().into_bytes(),
        });
        if fault == Some(Fault::Garbage) {
            // Corrupt the checksum field: the frame still parses as a
            // well-formed header, but the CRC check must catch it.
            frame[6] ^= 0xA5;
        }
        output.write_all(&frame).map_err(|e| e.to_string())?;
        output.flush().map_err(|e| e.to_string())?;
    }
}

fn send<W: Write>(output: &mut W, frame: &Frame) -> Result<(), String> {
    output
        .write_all(&encode(frame))
        .map_err(|e| e.to_string())?;
    output.flush().map_err(|e| e.to_string())
}

fn send_heartbeat<W: Write>(output: &mut W, run: u32) -> std::io::Result<()> {
    output.write_all(&encode(&Frame::Heartbeat { run }))?;
    output.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameReader;
    use std::io::Cursor;

    const SPEC: &str = "name: t\nduration_ms: 1200\nseeds: 1\nattacks: none\nprotections: stock\n";

    fn feed(commands: &str) -> Vec<u8> {
        let mut input = format!("SPEC {}\n", SPEC.len());
        input.push_str(SPEC);
        input.push_str(commands);
        let mut out = Vec::new();
        serve(
            &mut Cursor::new(input.into_bytes()),
            &mut out,
            InjectConfig::default(),
            0,
        )
        .expect("serve");
        out
    }

    #[test]
    fn handshakes_runs_and_exits() {
        let out = feed("RUN 0 1\nEXIT\n");
        let mut reader = FrameReader::new(out.as_slice());
        let spec = OrchSpec::parse(SPEC).expect("spec");
        assert_eq!(
            reader.next_frame().expect("ready"),
            Some(Frame::Ready {
                digest: spec.digest()
            })
        );
        let mut heartbeats = 0;
        let result = loop {
            match reader.next_frame().expect("frame") {
                Some(Frame::Heartbeat { run }) => {
                    assert_eq!(run, 0);
                    heartbeats += 1;
                }
                Some(Frame::Result { run, jsonl }) => break (run, jsonl),
                other => panic!("unexpected {other:?}"),
            }
        };
        // 1200ms flight / 250ms windows → at least 4 heartbeats.
        assert!(heartbeats >= 4, "only {heartbeats} heartbeats");
        assert_eq!(result.0, 0);
        // The record is exactly what the in-process reference emits.
        let reference = cd_bench::campaign::run_one(&spec.campaign().variants()[0]);
        assert_eq!(result.1, reference.jsonl_record().into_bytes());
        assert!(reader.next_frame().expect("eof").is_none());
    }

    #[test]
    fn garbage_fault_corrupts_the_result_frame_only() {
        let mut input = format!("SPEC {}\n", SPEC.len());
        input.push_str(SPEC);
        input.push_str("RUN 0 1\nEXIT\n");
        let mut out = Vec::new();
        // garbage:1.0 → every attempt draws Garbage.
        let inject = InjectConfig::parse("garbage:1").expect("inject");
        serve(&mut Cursor::new(input.into_bytes()), &mut out, inject, 7).expect("serve");
        let mut reader = FrameReader::new(out.as_slice());
        assert!(matches!(
            reader.next_frame().expect("ready"),
            Some(Frame::Ready { .. })
        ));
        // Heartbeats arrive intact; the result frame's CRC must fail.
        let err = loop {
            match reader.next_frame() {
                Ok(Some(Frame::Heartbeat { .. })) => {}
                Err(e) => break e,
                other => panic!("expected checksum failure, got {other:?}"),
            }
        };
        assert!(matches!(err, crate::wire::WireError::Checksum { .. }));
    }

    #[test]
    fn rejects_out_of_grid_runs_and_unknown_commands() {
        let mut input = format!("SPEC {}\n", SPEC.len());
        input.push_str(SPEC);
        input.push_str("RUN 99 1\n");
        let mut out = Vec::new();
        let err = serve(
            &mut Cursor::new(input.into_bytes()),
            &mut out,
            InjectConfig::default(),
            0,
        )
        .expect_err("out of grid");
        assert!(err.contains("99"));

        let mut input = format!("SPEC {}\n", SPEC.len());
        input.push_str(SPEC);
        input.push_str("FROB\n");
        let err = serve(
            &mut Cursor::new(input.into_bytes()),
            &mut Vec::new(),
            InjectConfig::default(),
            0,
        )
        .expect_err("unknown command");
        assert!(err.contains("FROB"));
    }
}
