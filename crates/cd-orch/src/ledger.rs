//! The snapshot/resume ledger: an append-only, checksummed record of
//! every settled run.
//!
//! Layout on disk:
//!
//! ```text
//! header  : [b"CDLG"][version u32 LE][spec digest u64 LE][crc32 u32 LE]   20 bytes
//! record* : [len u32 LE][crc32 u32 LE][run u32 LE][outcome u8][jsonl …]
//! ```
//!
//! The header CRC covers its first 16 bytes; each record CRC covers
//! the record body (`run + outcome + jsonl`, `len` bytes). Every
//! append is `sync_data`'d, so after a SIGKILL the file is a clean
//! prefix of appends plus at most one **torn** tail record — an
//! expected artifact that `--resume` truncates (with a notice) before
//! replaying. A record whose checksum fails *inside* the prefix is a
//! different animal entirely: the ledger was damaged at rest, and
//! resume refuses with a structured [`LedgerError::Corrupt`] naming
//! the byte offset, rather than silently dropping work.
//!
//! Decoding is a `panic_paths` deny region — a ledger can be
//! truncated or corrupted at any byte, and parsing must classify, not
//! unwind. The fuzz tests feed truncations and bit flips at every
//! byte boundary.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::wire::crc32;

/// Ledger file magic.
pub const LEDGER_MAGIC: &[u8; 4] = b"CDLG";

/// Current ledger format version.
pub const LEDGER_VERSION: u32 = 1;

/// Header size on disk.
pub const HEADER_LEN: usize = 20;

/// Bound on one record body; a JSONL record is a few hundred bytes.
pub const MAX_RECORD: usize = 1 << 20;

/// Minimum record body length: run (4) + outcome (1).
const MIN_RECORD: usize = 5;

/// How one settled run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run completed and its record is real.
    Ok,
    /// The run was quarantined; its record is synthesized.
    Failed,
}

impl RunOutcome {
    fn to_byte(self) -> u8 {
        match self {
            RunOutcome::Ok => 0,
            RunOutcome::Failed => 1,
        }
    }

    fn from_byte(byte: u8) -> Option<RunOutcome> {
        match byte {
            0 => Some(RunOutcome::Ok),
            1 => Some(RunOutcome::Failed),
            _ => None,
        }
    }
}

/// One decoded ledger record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRecord {
    /// Byte offset of this record's length prefix in the file.
    pub offset: u64,
    /// The run index the record settles.
    pub run: u32,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The JSONL line (real or synthesized) for the merged stream.
    pub jsonl: Vec<u8>,
}

/// How the byte stream ended after the intact record prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// File ends exactly at a record boundary.
    Clean,
    /// File ends inside a record at `offset` — the expected artifact
    /// of a kill mid-append. Resume truncates to `offset`.
    Torn {
        /// Byte offset where the torn record starts.
        offset: u64,
    },
}

/// Everything a ledger parse yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerLoad {
    /// Spec digest pinned in the header.
    pub digest: u64,
    /// The intact record prefix, in append order.
    pub records: Vec<LedgerRecord>,
    /// How the stream ended.
    pub tail: Tail,
}

/// A ledger failure. `Corrupt` carries the byte offset of the first
/// bad record so the operator can inspect the damage.
#[derive(Debug)]
pub enum LedgerError {
    /// Filesystem error.
    Io(std::io::Error),
    /// File too short to hold a header.
    NoHeader,
    /// Header magic is not `CDLG`.
    BadMagic([u8; 4]),
    /// Header names a version this build does not speak.
    BadVersion(u32),
    /// Header checksum mismatch — the header itself is damaged.
    BadHeaderChecksum,
    /// A record *inside* the intact prefix is damaged: checksum
    /// mismatch, absurd length, or an unknown outcome byte.
    Corrupt {
        /// Byte offset of the first damaged record.
        offset: u64,
        /// What exactly is wrong with it.
        reason: String,
    },
    /// Header digest does not match the spec being resumed.
    DigestMismatch {
        /// Digest the ledger header pinned.
        ledger: u64,
        /// Digest of the spec the orchestrator was given.
        spec: u64,
    },
    /// A record names a run index outside the spec grid.
    RunOutOfRange {
        /// Byte offset of the offending record.
        offset: u64,
        /// The out-of-range run index.
        run: u32,
        /// The grid size it had to be under.
        runs: usize,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger i/o error: {e}"),
            LedgerError::NoHeader => write!(f, "ledger too short to hold a header"),
            LedgerError::BadMagic(m) => write!(f, "ledger magic {m:02X?} is not CDLG"),
            LedgerError::BadVersion(v) => {
                write!(f, "ledger version {v} (this build speaks {LEDGER_VERSION})")
            }
            LedgerError::BadHeaderChecksum => write!(f, "ledger header checksum mismatch"),
            LedgerError::Corrupt { offset, reason } => {
                write!(f, "ledger corrupt at byte offset {offset}: {reason}")
            }
            LedgerError::DigestMismatch { ledger, spec } => write!(
                f,
                "ledger was written for spec digest {ledger:016x}, not {spec:016x} — refusing to resume a different campaign"
            ),
            LedgerError::RunOutOfRange { offset, run, runs } => write!(
                f,
                "ledger record at offset {offset} names run {run}, but the spec has only {runs} runs"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e)
    }
}

// Ledger bytes come off disk after arbitrary kill/corruption; parsing
// must classify every malformation, never unwind.
// cd-lint: deny(panic_paths)

fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let chunk: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(chunk))
}

/// Parses full ledger bytes. Pure — the fuzz tests drive this
/// directly with damaged inputs.
pub fn parse(bytes: &[u8]) -> Result<LedgerLoad, LedgerError> {
    let header = bytes.get(..HEADER_LEN).ok_or(LedgerError::NoHeader)?;
    let magic = header.get(..4).unwrap_or_default();
    if magic != LEDGER_MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(magic);
        return Err(LedgerError::BadMagic(m));
    }
    let version = le_u32(header, 4).ok_or(LedgerError::NoHeader)?;
    let digest = le_u64(header, 8).ok_or(LedgerError::NoHeader)?;
    let declared_crc = le_u32(header, 16).ok_or(LedgerError::NoHeader)?;
    let computed_crc = crc32(&[header.get(..16).unwrap_or_default()]);
    if computed_crc != declared_crc {
        return Err(LedgerError::BadHeaderChecksum);
    }
    if version != LEDGER_VERSION {
        return Err(LedgerError::BadVersion(version));
    }

    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    loop {
        if at == bytes.len() {
            return Ok(LedgerLoad {
                digest,
                records,
                tail: Tail::Clean,
            });
        }
        let offset = at as u64;
        // A record prefix (len + crc) that doesn't fully fit is torn.
        let (Some(len), Some(declared)) = (le_u32(bytes, at), le_u32(bytes, at + 4)) else {
            return Ok(LedgerLoad {
                digest,
                records,
                tail: Tail::Torn { offset },
            });
        };
        let len = len as usize;
        if !(MIN_RECORD..=MAX_RECORD).contains(&len) {
            // An absurd length is damage, not a torn append: appends
            // never write a length outside these bounds.
            return Err(LedgerError::Corrupt {
                offset,
                reason: format!("record length {len} outside [{MIN_RECORD}, {MAX_RECORD}]"),
            });
        }
        let body_at = at + 8;
        let Some(body) = body_at
            .checked_add(len)
            .and_then(|end| bytes.get(body_at..end))
        else {
            return Ok(LedgerLoad {
                digest,
                records,
                tail: Tail::Torn { offset },
            });
        };
        let computed = crc32(&[body]);
        if computed != declared {
            return Err(LedgerError::Corrupt {
                offset,
                reason: format!(
                    "record checksum mismatch: declared 0x{declared:08X}, computed 0x{computed:08X}"
                ),
            });
        }
        let (Some(run), Some(&outcome_byte)) = (le_u32(body, 0), body.get(4)) else {
            return Err(LedgerError::Corrupt {
                offset,
                reason: "record body shorter than its checked minimum".to_string(),
            });
        };
        let Some(outcome) = RunOutcome::from_byte(outcome_byte) else {
            return Err(LedgerError::Corrupt {
                offset,
                reason: format!("unknown outcome byte {outcome_byte}"),
            });
        };
        records.push(LedgerRecord {
            offset,
            run,
            outcome,
            jsonl: body.get(MIN_RECORD..).unwrap_or_default().to_vec(),
        });
        at = body_at + len;
    }
}
// cd-lint: end(panic_paths)

/// Encodes one record (length prefix + checksum + body).
pub fn encode_record(run: u32, outcome: RunOutcome, jsonl: &[u8]) -> Vec<u8> {
    debug_assert!(MIN_RECORD + jsonl.len() <= MAX_RECORD);
    let len = (MIN_RECORD + jsonl.len()) as u32;
    let crc = crc32(&[&run.to_le_bytes(), &[outcome.to_byte()], jsonl]);
    let mut out = Vec::with_capacity(8 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&run.to_le_bytes());
    out.push(outcome.to_byte());
    out.extend_from_slice(jsonl);
    out
}

/// Encodes a ledger header for `digest`.
pub fn encode_header(digest: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(LEDGER_MAGIC);
    header[4..8].copy_from_slice(&LEDGER_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&digest.to_le_bytes());
    let crc = crc32(&[&header[..16]]);
    header[16..20].copy_from_slice(&crc.to_le_bytes());
    header
}

/// Parses a ledger file from disk.
pub fn load(path: &Path) -> Result<LedgerLoad, LedgerError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse(&bytes)
}

/// The append-side handle: every append is checksummed, length-
/// prefixed, flushed, and `sync_data`'d before the orchestrator
/// treats the run as settled.
#[derive(Debug)]
pub struct Ledger {
    file: File,
    path: PathBuf,
}

impl Ledger {
    /// Creates a fresh ledger (truncating any previous file) with the
    /// spec digest pinned in the header.
    pub fn create(path: &Path, digest: u64) -> Result<Ledger, LedgerError> {
        let mut file = File::create(path)?;
        file.write_all(&encode_header(digest))?;
        file.sync_all()?;
        Ok(Ledger {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing ledger for appending, first truncating it
    /// to `keep_len` (dropping a torn tail record, if any).
    pub fn open_append(path: &Path, keep_len: u64) -> Result<Ledger, LedgerError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(keep_len)?;
        file.sync_all()?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(Ledger {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one settled run. Durable on return.
    pub fn append(
        &mut self,
        run: u32,
        outcome: RunOutcome,
        jsonl: &[u8],
    ) -> Result<(), LedgerError> {
        self.file.write_all(&encode_record(run, outcome, jsonl))?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The file this ledger writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bytes() -> Vec<u8> {
        let mut bytes = encode_header(0xABCD_EF01_2345_6789).to_vec();
        bytes.extend_from_slice(&encode_record(0, RunOutcome::Ok, b"{\"a\":1}\n"));
        bytes.extend_from_slice(&encode_record(3, RunOutcome::Failed, b"{\"b\":2}\n"));
        bytes.extend_from_slice(&encode_record(1, RunOutcome::Ok, b"{\"c\":3}\n"));
        bytes
    }

    #[test]
    fn roundtrips_records_in_append_order() {
        let load = parse(&sample_bytes()).expect("parse");
        assert_eq!(load.digest, 0xABCD_EF01_2345_6789);
        assert_eq!(load.tail, Tail::Clean);
        assert_eq!(load.records.len(), 3);
        assert_eq!(load.records[0].run, 0);
        assert_eq!(load.records[1].run, 3);
        assert_eq!(load.records[1].outcome, RunOutcome::Failed);
        assert_eq!(load.records[2].jsonl, b"{\"c\":3}\n");
        assert_eq!(load.records[0].offset, HEADER_LEN as u64);
    }

    #[test]
    fn truncation_at_every_byte_is_torn_tail_or_header_error() {
        let bytes = sample_bytes();
        let full = parse(&bytes).expect("full parse");
        for cut in 0..bytes.len() {
            match parse(&bytes[..cut]) {
                Err(LedgerError::NoHeader) => assert!(cut < HEADER_LEN, "cut={cut}"),
                Ok(load) => {
                    assert!(cut >= HEADER_LEN, "cut={cut}");
                    // The intact prefix must be a prefix of the full
                    // record list — truncation never invents records.
                    assert_eq!(
                        load.records.as_slice(),
                        &full.records[..load.records.len()],
                        "cut={cut}"
                    );
                    match load.tail {
                        // Clean only at a record boundary (header end,
                        // any record end).
                        Tail::Clean => {
                            let boundary = full
                                .records
                                .iter()
                                .map(|r| r.offset as usize)
                                .chain([bytes.len()])
                                .any(|b| b == cut);
                            assert!(boundary, "cut={cut} clean off-boundary");
                        }
                        Tail::Torn { offset } => {
                            assert!(offset as usize <= cut, "cut={cut}");
                            // Resume truncates to `offset`; that
                            // prefix must itself parse clean.
                            let again = parse(&bytes[..offset as usize]).expect("torn prefix");
                            assert_eq!(again.tail, Tail::Clean);
                        }
                    }
                }
                Err(e) => panic!("cut={cut}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn bit_flips_never_pass_silently() {
        let bytes = sample_bytes();
        let full = parse(&bytes).expect("full parse");
        for pos in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                match parse(&bad) {
                    // Damage detected with a name — good. Header
                    // damage and record damage both classify.
                    Err(_) => {}
                    // A flip inside a record's *length* field can
                    // legitimately re-frame the stream as torn; the
                    // surviving record prefix must still be a true
                    // prefix and the tail flagged.
                    Ok(load) => {
                        assert!(
                            matches!(load.tail, Tail::Torn { .. }),
                            "pos={pos} bit={bit}: flip passed as clean"
                        );
                        assert!(
                            load.records.len() < full.records.len(),
                            "pos={pos} bit={bit}: torn but no record lost"
                        );
                        for (got, want) in load.records.iter().zip(&full.records) {
                            assert_eq!(got, want, "pos={pos} bit={bit}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_record_error_names_the_offset() {
        let mut bytes = sample_bytes();
        // Flip a byte inside the second record's body.
        let second = parse(&bytes).expect("parse").records[1].offset as usize;
        bytes[second + 10] ^= 0xFF;
        match parse(&bytes) {
            Err(LedgerError::Corrupt { offset, reason }) => {
                assert_eq!(offset as usize, second);
                assert!(reason.contains("checksum"), "reason: {reason}");
            }
            other => panic!("wanted Corrupt at {second}, got {other:?}"),
        }
    }

    #[test]
    fn append_and_reload_through_a_real_file() {
        let dir = std::env::temp_dir().join(format!("cd-orch-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("test.ledger");
        {
            let mut ledger = Ledger::create(&path, 42).expect("create");
            ledger.append(5, RunOutcome::Ok, b"{}\n").expect("append");
            ledger
                .append(6, RunOutcome::Failed, b"{}\n")
                .expect("append");
        }
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.digest, 42);
        assert_eq!(loaded.records.len(), 2);

        // Simulate a torn tail: append garbage half-record, then
        // reopen through open_append with the intact length.
        let intact = std::fs::metadata(&path).expect("meta").len();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(&[9, 9, 9]).expect("tear");
        }
        let torn = load_tail(&path);
        assert_eq!(torn, Tail::Torn { offset: intact });
        {
            let mut ledger = Ledger::open_append(&path, intact).expect("reopen");
            ledger.append(7, RunOutcome::Ok, b"{}\n").expect("append");
        }
        let reloaded = load(&path).expect("reload");
        assert_eq!(reloaded.tail, Tail::Clean);
        assert_eq!(reloaded.records.len(), 3);
        assert_eq!(reloaded.records[2].run, 7);
        std::fs::remove_file(&path).ok();
    }

    fn load_tail(path: &Path) -> Tail {
        load(path).expect("load").tail
    }
}
