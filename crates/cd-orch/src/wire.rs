//! The worker wire protocol: length-prefixed, CRC32-checksummed frames.
//!
//! Commands flow parent → worker as text lines on the worker's stdin
//! (`SPEC <len>` + raw bytes, `RUN <run> <attempt>`, `EXIT`); frames
//! flow worker → parent as binary on the worker's stdout:
//!
//! ```text
//! [0xCD][type: u8][len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! The CRC covers the type byte and the payload, so a frame whose
//! header or body was damaged in flight (or deliberately corrupted by
//! `--inject garbage:…`) is detected at the parent, which treats the
//! whole worker as compromised: kill, respawn, retry the run. Decoding
//! is a hostile-input path — a worker can be arbitrarily broken — so
//! the byte-level decoder is a `panic_paths` deny region: malformed
//! frames book a [`WireError`], never unwind the orchestrator.

use std::fmt;
use std::io::Read;

/// Hard bound on a frame payload. A result record is a few hundred
/// bytes; anything near this bound is a broken or hostile worker.
pub const MAX_FRAME: usize = 1 << 20;

/// Leading magic byte of every frame.
pub const FRAME_MAGIC: u8 = 0xCD;

/// Frame header size: magic + type + len + crc.
pub const HEADER_LEN: usize = 10;

const TYPE_READY: u8 = 1;
const TYPE_HEARTBEAT: u8 = 2;
const TYPE_RESULT: u8 = 3;

/// One worker → parent frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Handshake after the spec preamble: the worker's digest of the
    /// spec it parsed. The parent verifies it against its own.
    Ready {
        /// [`crate::spec::OrchSpec::digest`] as the worker computed it.
        digest: u64,
    },
    /// Liveness signal emitted once per simulated window during a run.
    Heartbeat {
        /// The run index the worker is executing.
        run: u32,
    },
    /// A completed run's deterministic JSONL record.
    Result {
        /// The run index this result answers.
        run: u32,
        /// The [`cd_bench::CampaignOutcome::jsonl_record`] bytes.
        jsonl: Vec<u8>,
    },
}

/// A framing/decoding failure.
#[derive(Debug)]
pub enum WireError {
    /// Underlying pipe error.
    Io(std::io::Error),
    /// Stream ended inside a frame.
    Truncated,
    /// First byte of a frame was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// CRC32 mismatch between header and body.
    Checksum {
        /// CRC the header declared.
        declared: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// Unknown frame type byte.
    UnknownType(u8),
    /// Payload too short / malformed for its type.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "pipe error: {e}"),
            WireError::Truncated => write!(f, "stream truncated mid-frame"),
            WireError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X}"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds bound {MAX_FRAME}"),
            WireError::Checksum { declared, computed } => write!(
                f,
                "frame checksum mismatch: declared 0x{declared:08X}, computed 0x{computed:08X}"
            ),
            WireError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            WireError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected) over `parts` in sequence.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = !0;
    for part in parts {
        for &byte in *part {
            let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
            // Constant-size table lookup; idx is masked to 0..=255.
            crc = (crc >> 8) ^ TABLE[idx];
        }
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Encodes one frame (header + payload).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let (ftype, payload): (u8, Vec<u8>) = match frame {
        Frame::Ready { digest } => (TYPE_READY, digest.to_le_bytes().to_vec()),
        Frame::Heartbeat { run } => (TYPE_HEARTBEAT, run.to_le_bytes().to_vec()),
        Frame::Result { run, jsonl } => {
            let mut p = Vec::with_capacity(4 + jsonl.len());
            p.extend_from_slice(&run.to_le_bytes());
            p.extend_from_slice(jsonl);
            (TYPE_RESULT, p)
        }
    };
    debug_assert!(payload.len() <= MAX_FRAME);
    let crc = crc32(&[&[ftype], &payload]);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(FRAME_MAGIC);
    out.push(ftype);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// The byte-level decoder: hostile input (a broken worker writes
// anything), so no panic path is tolerable.
// cd-lint: deny(panic_paths)

/// Reads the little-endian `u32` at `at`.
fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let chunk: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

/// Reads the little-endian `u64` at `at`.
fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let chunk: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(chunk))
}

/// Decodes a checksummed payload into a [`Frame`]. The caller has
/// already verified the CRC; this validates shape only.
pub fn decode_payload(ftype: u8, payload: &[u8]) -> Result<Frame, WireError> {
    match ftype {
        TYPE_READY => match read_u64(payload, 0) {
            Some(digest) if payload.len() == 8 => Ok(Frame::Ready { digest }),
            _ => Err(WireError::Malformed("READY wants exactly 8 digest bytes")),
        },
        TYPE_HEARTBEAT => match read_u32(payload, 0) {
            Some(run) if payload.len() == 4 => Ok(Frame::Heartbeat { run }),
            _ => Err(WireError::Malformed("HEARTBEAT wants exactly 4 run bytes")),
        },
        TYPE_RESULT => match (read_u32(payload, 0), payload.get(4..)) {
            (Some(run), Some(jsonl)) => Ok(Frame::Result {
                run,
                jsonl: jsonl.to_vec(),
            }),
            _ => Err(WireError::Malformed("RESULT wants a 4-byte run prefix")),
        },
        other => Err(WireError::UnknownType(other)),
    }
}

/// Validates one frame header, returning `(type, payload_len, crc)`.
pub fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize, u32), WireError> {
    match header {
        [magic, ..] if *magic != FRAME_MAGIC => Err(WireError::BadMagic(*magic)),
        [_, ftype, rest @ ..] => {
            let len = read_u32(rest, 0).ok_or(WireError::Truncated)?;
            let crc = read_u32(rest, 4).ok_or(WireError::Truncated)?;
            if len as usize > MAX_FRAME {
                return Err(WireError::Oversized(len));
            }
            Ok((*ftype, len as usize, crc))
        }
    }
}
// cd-lint: end(panic_paths)

/// Incremental frame reader over a blocking byte stream (the parent's
/// view of a worker's stdout).
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner }
    }

    /// Reads the next frame. `Ok(None)` is a clean end-of-stream at a
    /// frame boundary (the worker exited); every other shortfall or
    /// malformation is a [`WireError`].
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let mut header = [0u8; HEADER_LEN];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            Filled::Eof => return Ok(None),
            Filled::Partial => return Err(WireError::Truncated),
            Filled::Full => {}
        }
        let (ftype, len, declared) = decode_header(&header)?;
        let mut payload = vec![0u8; len];
        match read_exact_or_eof(&mut self.inner, &mut payload)? {
            Filled::Full => {}
            _ => return Err(WireError::Truncated),
        }
        let computed = crc32(&[&[ftype], &payload]);
        if computed != declared {
            return Err(WireError::Checksum { declared, computed });
        }
        decode_payload(ftype, &payload).map(Some)
    }
}

enum Filled {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes EOF-at-start from EOF-mid-buffer.
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<Filled, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Filled::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
    }

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::Ready {
                digest: 0xDEAD_BEEF_0BAD_F00D,
            },
            Frame::Heartbeat { run: 7 },
            Frame::Result {
                run: 42,
                jsonl: b"{\"variant\":\"x\"}\n".to_vec(),
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f));
        }
        let mut reader = FrameReader::new(stream.as_slice());
        for f in &frames {
            assert_eq!(reader.next_frame().expect("frame").as_ref(), Some(f));
        }
        assert!(reader.next_frame().expect("clean eof").is_none());
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let good = encode(&Frame::Result {
            run: 3,
            jsonl: b"payload".to_vec(),
        });
        // Flip one bit at every position: every damage must surface as
        // a WireError (checksum, magic, length, truncation), never a
        // panic and never a silently wrong frame.
        for bit in 0..good.len() * 8 {
            let mut bad = good.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut reader = FrameReader::new(bad.as_slice());
            match reader.next_frame() {
                Err(_) => {}
                Ok(other) => panic!("bit {bit}: corruption survived as {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_detected() {
        let good = encode(&Frame::Heartbeat { run: 1 });
        for cut in 1..good.len() {
            let mut reader = FrameReader::new(&good[..cut]);
            assert!(
                matches!(reader.next_frame(), Err(WireError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
        let mut reader = FrameReader::new(&good[..0]);
        assert!(reader.next_frame().expect("empty is clean eof").is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let mut bad = encode(&Frame::Heartbeat { run: 1 });
        bad[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new(bad.as_slice());
        assert!(matches!(
            reader.next_frame(),
            Err(WireError::Oversized(u32::MAX))
        ));
    }
}
