//! Deterministic fault injection for worker processes.
//!
//! `--inject kill:0.3,stall:0.1,garbage:0.05` gives each `(run,
//! attempt)` pair a chance to die mid-run (`process::abort`), hang
//! forever (heartbeats stop, deadline fires), or corrupt its result
//! frame's checksum. The draw is a pure hash of `(seed, run, attempt)`
//! — no RNG state, no wall clock — so a retried attempt of the same
//! run draws a *different* fault (the attempt counter moved) while the
//! whole schedule replays identically across orchestrator restarts and
//! `--resume`. That reproducibility is what lets CI assert the merged
//! stream is byte-identical *with* faults injected.

use std::fmt;

/// Which fault a worker fires for one `(run, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort the process mid-run (simulates OOM-kill / hard crash).
    Kill,
    /// Stop making progress forever (simulates a livelock / D-state
    /// hang); the parent's heartbeat deadline reaps it.
    Stall,
    /// Complete the run but corrupt the result frame's CRC byte
    /// (simulates pipe damage / a buggy worker).
    Garbage,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Kill => write!(f, "kill"),
            Fault::Stall => write!(f, "stall"),
            Fault::Garbage => write!(f, "garbage"),
        }
    }
}

/// Per-fault injection rates, each in `[0, 1]`, summing to at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InjectConfig {
    /// Probability a given attempt aborts mid-run.
    pub kill: f64,
    /// Probability a given attempt hangs forever.
    pub stall: f64,
    /// Probability a given attempt emits a corrupt result frame.
    pub garbage: f64,
}

impl InjectConfig {
    /// Parses `kill:0.3,stall:0.1,garbage:0.05` (any subset of keys,
    /// any order). The empty string is the all-zero config.
    pub fn parse(text: &str) -> Result<InjectConfig, String> {
        let mut cfg = InjectConfig::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once(':') else {
                return Err(format!("--inject wants `fault:rate`, got `{part}`"));
            };
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("--inject rate `{value}`: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("--inject rate {rate} outside [0, 1]"));
            }
            match key.trim() {
                "kill" => cfg.kill = rate,
                "stall" => cfg.stall = rate,
                "garbage" => cfg.garbage = rate,
                other => {
                    return Err(format!(
                        "unknown fault `{other}` (known: kill, stall, garbage)"
                    ))
                }
            }
        }
        if cfg.kill + cfg.stall + cfg.garbage > 1.0 {
            return Err("--inject rates must sum to at most 1".to_string());
        }
        Ok(cfg)
    }

    /// Renders back to the `--inject` argument form, for passing to
    /// worker child processes.
    pub fn render(&self) -> String {
        format!(
            "kill:{},stall:{},garbage:{}",
            self.kill, self.stall, self.garbage
        )
    }

    /// `true` when every rate is zero (no faults ever fire).
    pub fn is_off(&self) -> bool {
        self.kill == 0.0 && self.stall == 0.0 && self.garbage == 0.0
    }

    /// The fault (if any) this `(run, attempt)` draws under `seed`.
    /// Pure: same inputs, same draw, in every process and across every
    /// restart.
    pub fn draw(&self, seed: u64, run: u32, attempt: u32) -> Option<Fault> {
        if self.is_off() {
            return None;
        }
        let x = splitmix64(
            seed.wrapping_add(u64::from(run).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(u64::from(attempt).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)),
        );
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.kill {
            Some(Fault::Kill)
        } else if u < self.kill + self.stall {
            Some(Fault::Stall)
        } else if u < self.kill + self.stall + self.garbage {
            Some(Fault::Garbage)
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer — a well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subsets_in_any_order_and_roundtrips() {
        let cfg = InjectConfig::parse("stall:0.1,kill:0.3").expect("parse");
        assert_eq!(cfg.kill, 0.3);
        assert_eq!(cfg.stall, 0.1);
        assert_eq!(cfg.garbage, 0.0);
        let again = InjectConfig::parse(&cfg.render()).expect("reparse");
        assert_eq!(cfg, again);
        assert!(InjectConfig::parse("").expect("empty").is_off());
    }

    #[test]
    fn rejects_bad_rates_and_names() {
        assert!(InjectConfig::parse("kill:1.5").is_err());
        assert!(InjectConfig::parse("kill:-0.1").is_err());
        assert!(InjectConfig::parse("warp:0.5").is_err());
        assert!(InjectConfig::parse("kill=0.5").is_err());
        assert!(InjectConfig::parse("kill:0.6,stall:0.6").is_err());
    }

    #[test]
    fn draws_are_pure_and_attempt_sensitive() {
        let cfg = InjectConfig::parse("kill:0.5").expect("parse");
        for run in 0..64u32 {
            for attempt in 0..4u32 {
                assert_eq!(
                    cfg.draw(9, run, attempt),
                    cfg.draw(9, run, attempt),
                    "draw must be pure"
                );
            }
        }
        // Across many runs, some draw Kill and some draw nothing, and
        // at 0.5 the retry of a killed attempt eventually clears.
        let kills = (0..256u32).filter(|&r| cfg.draw(9, r, 0).is_some()).count();
        assert!(kills > 64 && kills < 192, "rate far off: {kills}/256");
        let cleared = (0..256u32)
            .filter(|&r| (0..8).any(|a| cfg.draw(9, r, a).is_none()))
            .count();
        assert_eq!(cleared, 256, "every run must eventually clear at 0.5");
    }

    #[test]
    fn cumulative_bands_cover_all_faults() {
        let cfg = InjectConfig::parse("kill:0.33,stall:0.33,garbage:0.34").expect("parse");
        let mut seen = [0usize; 3];
        for run in 0..512u32 {
            match cfg.draw(7, run, 0) {
                Some(Fault::Kill) => seen[0] += 1,
                Some(Fault::Stall) => seen[1] += 1,
                Some(Fault::Garbage) => seen[2] += 1,
                None => {}
            }
        }
        assert!(seen.iter().all(|&n| n > 64), "bands unbalanced: {seen:?}");
    }
}
