//! `cd-orch` — a crash-resilient multi-process campaign orchestrator.
//!
//! The `cd-bench` [`Campaign`](cd_bench::CampaignSpec) layer is a
//! one-shot in-process thread pool: a single worker panic or OOM kill
//! loses the whole sweep. This crate holds the sweep infrastructure to
//! the same standard the paper holds the UAV to — detect failure,
//! bound the damage, and provably recover:
//!
//! * **Worker processes, not threads.** The orchestrator shards
//!   scenario runs across `cd-orch --worker` child processes over
//!   stdin/stdout pipes ([`wire`] frames, length-prefixed and
//!   CRC32-checksummed). A worker dying, hanging, or emitting garbage
//!   costs one attempt of one run, never the sweep.
//! * **Heartbeats and deadlines.** Workers emit a heartbeat frame per
//!   simulated window; a worker silent past the run deadline is
//!   killed and its run retried under capped exponential backoff
//!   ([`retry`] — attempt-counter-driven; wall time never reaches the
//!   output bytes).
//! * **Fault injection built in.** `--inject kill:R,stall:R,garbage:R`
//!   makes workers abort mid-run, hang forever, or corrupt their
//!   result frame on a deterministic per-`(run, attempt)` schedule
//!   ([`inject`]) — the recovery machinery is exercised by CI on every
//!   push, not trusted on faith.
//! * **Quarantine.** A run that keeps failing is quarantined after a
//!   bounded number of attempts and reported as `"outcome":"failed"`;
//!   it can never wedge the sweep.
//! * **Snapshot/resume.** Every completed run is appended to a
//!   checksummed [`ledger`]; after a SIGKILL, `--resume` replays the
//!   intact prefix (a torn tail from a mid-append kill is truncated;
//!   corruption is a structured error naming the bad record offset)
//!   and finishes only the remaining work.
//!
//! The determinism discipline of the fleet executor carries over:
//! results are buffered per-variant and merged in **spec order**, so
//! the merged JSONL stream is byte-identical regardless of worker
//! count, crash schedule, retry history, or resume point — pinned in
//! tests and CI against the in-process `Campaign` reference
//! ([`cd_bench::CampaignReport::jsonl_bytes`]).
//!
//! Live `cd_orch_*` counters (runs, retries, quarantines, worker
//! restarts) register in the existing `cd-obs` registry and serve via
//! `--metrics-addr`.

#![warn(missing_docs)]

pub mod inject;
pub mod ledger;
pub mod orchestrator;
pub mod retry;
pub mod spec;
pub mod wire;
pub mod worker;

pub use inject::{Fault, InjectConfig};
pub use ledger::{Ledger, LedgerError, LedgerRecord, RunOutcome, Tail};
pub use orchestrator::{OrchError, OrchOptions, OrchSummary};
pub use retry::{FailAction, Phase, RetryPolicy, SweepBook};
pub use spec::{OrchSpec, SpecError};
