//! The campaign spec: the text format both the orchestrator and its
//! workers parse, and the in-process reference runs.
//!
//! A spec is a small line-oriented text file describing a grid of
//! scenario variants — `attacks × protections × seeds` over a base
//! flight, exactly the shape [`CampaignSpec::product`] builds:
//!
//! ```text
//! # 16-variant smoke grid
//! name: ci
//! duration_ms: 1500
//! seeds: 1 2 3 4
//! attacks: none kill hog+kill flood
//! protections: stock
//! ```
//!
//! The spec is the **single source of truth** shared by every process:
//! the orchestrator parses it to know the run count and labels, each
//! worker parses the identical bytes (shipped over its stdin preamble)
//! to build the identical [`CampaignSpec`], and the `--reference` mode
//! runs it through the in-process `Campaign` layer. The canonical
//! rendering is digested ([`OrchSpec::digest`]) and pinned in the
//! ledger header and the worker handshake, so a resumed session or a
//! respawned worker can never silently run a different grid.

use attacks::membw_hog::BandwidthHog;
use attacks::script::{AttackEvent, AttackScript};
use attacks::spoof::MotorSpoof;
use attacks::udp_flood::UdpFlood;
use cd_bench::CampaignSpec;
use containerdrone_core::scenario::ScenarioConfig;
use containerdrone_core::Protections;
use sim_core::time::{SimDuration, SimTime};
use std::fmt;

/// The attack vocabulary a spec may name.
pub const ATTACKS: &[&str] = &["none", "kill", "hog", "hog+kill", "flood", "spoof"];

/// The protection vocabulary a spec may name.
pub const PROTECTIONS: &[&str] = &["stock", "no-monitor", "no-memguard", "no-iptables", "bare"];

/// A parsed, validated campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchSpec {
    /// Campaign name (report heading).
    pub name: String,
    /// Flight duration per variant, milliseconds of simulated time.
    pub duration_ms: u64,
    /// Master seeds (innermost grid axis).
    pub seeds: Vec<u64>,
    /// Attack timeline names (outermost grid axis), from [`ATTACKS`].
    pub attacks: Vec<String>,
    /// Protection set names (middle grid axis), from [`PROTECTIONS`].
    pub protections: Vec<String>,
}

/// A spec parse/validation failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line in the spec text (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec error: {}", self.message)
        } else {
            write!(f, "spec error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

impl OrchSpec {
    /// Parses and validates spec text. Unknown keys, unknown attack or
    /// protection names, and malformed numbers are errors; missing
    /// keys fall back to a 1-variant healthy default.
    pub fn parse(text: &str) -> Result<OrchSpec, SpecError> {
        let mut spec = OrchSpec {
            name: "orch".to_string(),
            duration_ms: 2000,
            seeds: vec![2019],
            attacks: vec!["none".to_string()],
            protections: vec!["stock".to_string()],
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                return Err(err(lineno, format!("expected `key: value`, got `{line}`")));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => {
                    if value.is_empty() || !value.chars().all(|c| c.is_ascii_graphic()) {
                        return Err(err(lineno, "name must be non-empty printable ASCII"));
                    }
                    spec.name = value.to_string();
                }
                "duration_ms" => {
                    spec.duration_ms = value
                        .parse()
                        .map_err(|e| err(lineno, format!("duration_ms `{value}`: {e}")))?;
                    if spec.duration_ms == 0 {
                        return Err(err(lineno, "duration_ms must be positive"));
                    }
                }
                "seeds" => {
                    spec.seeds = value
                        .split_whitespace()
                        .map(|s| {
                            s.parse()
                                .map_err(|e| err(lineno, format!("seed `{s}`: {e}")))
                        })
                        .collect::<Result<_, _>>()?;
                    if spec.seeds.is_empty() {
                        return Err(err(lineno, "seeds must name at least one seed"));
                    }
                }
                "attacks" => {
                    spec.attacks = validated_names(lineno, value, ATTACKS, "attack")?;
                }
                "protections" => {
                    spec.protections = validated_names(lineno, value, PROTECTIONS, "protection")?;
                }
                other => {
                    return Err(err(
                        lineno,
                        format!(
                            "unknown key `{other}` (keys: name, duration_ms, seeds, attacks, protections)"
                        ),
                    ));
                }
            }
        }
        Ok(spec)
    }

    /// The canonical rendering: fixed key order, single-space
    /// separators. Parsing the canonical text reproduces the spec
    /// exactly, and the [`OrchSpec::digest`] is taken over these bytes.
    pub fn canonical(&self) -> String {
        let join = |v: &[String]| v.join(" ");
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        format!(
            "name: {}\nduration_ms: {}\nseeds: {}\nattacks: {}\nprotections: {}\n",
            self.name,
            self.duration_ms,
            seeds.join(" "),
            join(&self.attacks),
            join(&self.protections),
        )
    }

    /// FNV-1a 64 over the canonical rendering — the spec identity the
    /// ledger header and the worker handshake pin.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Number of variants in the grid.
    pub fn len(&self) -> usize {
        self.attacks.len() * self.protections.len() * self.seeds.len()
    }

    /// `true` when the grid is empty (never, after validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the grid as the in-process [`CampaignSpec`] — the
    /// same `product` construction everywhere, so variant order and
    /// labels are identical in the orchestrator, every worker, and the
    /// reference run.
    pub fn campaign(&self) -> CampaignSpec {
        let base = ScenarioConfig::builder()
            .duration(SimDuration::from_millis(self.duration_ms))
            .build();
        let attacks: Vec<(&str, AttackScript)> = self
            .attacks
            .iter()
            .map(|name| (name.as_str(), attack_script(name)))
            .collect();
        let protections: Vec<(&str, Protections)> = self
            .protections
            .iter()
            .map(|name| (name.as_str(), protection_set(name)))
            .collect();
        CampaignSpec::product(&self.name, &base, &attacks, &protections, &self.seeds)
    }
}

fn validated_names(
    lineno: usize,
    value: &str,
    vocabulary: &[&str],
    what: &str,
) -> Result<Vec<String>, SpecError> {
    let names: Vec<String> = value.split_whitespace().map(str::to_string).collect();
    if names.is_empty() {
        return Err(err(lineno, format!("{what}s must name at least one entry")));
    }
    for name in &names {
        if !vocabulary.contains(&name.as_str()) {
            return Err(err(
                lineno,
                format!("unknown {what} `{name}` (known: {})", vocabulary.join(", ")),
            ));
        }
    }
    Ok(names)
}

/// The named attack timelines. Onsets sit at 3 s / 6 s (the
/// `standard_grid` convention) so short smoke flights exercise the
/// healthy path and longer flights the attacks.
fn attack_script(name: &str) -> AttackScript {
    let at3 = SimTime::from_secs(3);
    match name {
        "none" => AttackScript::none(),
        "kill" => AttackScript::single(at3, AttackEvent::KillComplex),
        "hog" => AttackScript::single(at3, AttackEvent::MemoryHog(BandwidthHog::isolbench())),
        "hog+kill" => AttackScript::new()
            .at(at3, AttackEvent::MemoryHog(BandwidthHog::isolbench()))
            .at(SimTime::from_secs(6), AttackEvent::KillComplex),
        "flood" => AttackScript::single(at3, AttackEvent::UdpFlood(UdpFlood::against_motor_port())),
        "spoof" => AttackScript::single(at3, AttackEvent::SpoofMotor(MotorSpoof::moderate())),
        other => unreachable!("attack `{other}` passed validation"),
    }
}

/// The named protection sets.
fn protection_set(name: &str) -> Protections {
    let mut p = Protections::default();
    match name {
        "stock" => {}
        "no-monitor" => p.monitor = false,
        "no-memguard" => p.memguard = false,
        "no-iptables" => p.iptables = false,
        "bare" => {
            p.monitor = false;
            p.memguard = false;
            p.iptables = false;
            p.cpu_isolation = false;
        }
        other => unreachable!("protection `{other}` passed validation"),
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "# demo\nname: demo\nduration_ms: 1000\nseeds: 1 2\nattacks: none kill\nprotections: stock no-monitor\n";

    #[test]
    fn parses_and_counts_the_grid() {
        let spec = OrchSpec::parse(SMOKE).expect("parse");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.len(), 8);
        let campaign = spec.campaign();
        assert_eq!(campaign.len(), 8);
        assert_eq!(campaign.variants()[0].label, "none/stock/seed1");
        assert_eq!(campaign.variants()[7].label, "kill/no-monitor/seed2");
    }

    #[test]
    fn canonical_roundtrips_and_digest_is_stable() {
        let spec = OrchSpec::parse(SMOKE).expect("parse");
        let canon = spec.canonical();
        let reparsed = OrchSpec::parse(&canon).expect("reparse");
        assert_eq!(spec, reparsed);
        assert_eq!(spec.digest(), reparsed.digest());
        // Any semantic change moves the digest.
        let mut other = spec.clone();
        other.seeds.push(3);
        assert_ne!(spec.digest(), other.digest());
    }

    #[test]
    fn defaults_are_a_single_healthy_variant() {
        let spec = OrchSpec::parse("").expect("empty spec");
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.campaign().variants()[0].label, "none/stock/seed2019");
    }

    #[test]
    fn rejects_unknown_names_and_keys_with_line_numbers() {
        let e = OrchSpec::parse("attacks: warp\n").expect_err("unknown attack");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("warp"));
        let e = OrchSpec::parse("name: x\nbogus: 1\n").expect_err("unknown key");
        assert_eq!(e.line, 2);
        let e = OrchSpec::parse("duration_ms: nope\n").expect_err("bad number");
        assert!(e.message.contains("duration_ms"));
        assert!(OrchSpec::parse("no-colon\n").is_err());
        assert!(OrchSpec::parse("duration_ms: 0\n").is_err());
        assert!(OrchSpec::parse("seeds:\n").is_err());
    }

    #[test]
    fn every_vocabulary_entry_builds() {
        let spec = OrchSpec::parse(
            "duration_ms: 100\nattacks: none kill hog hog+kill flood spoof\nprotections: stock no-monitor no-memguard no-iptables bare\n",
        )
        .expect("full vocabulary");
        assert_eq!(spec.campaign().len(), 30);
    }
}
