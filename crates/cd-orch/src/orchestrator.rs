//! The parent side: worker pool, heartbeat deadlines, retry/backoff,
//! quarantine, the ledger, and the byte-stable merged stream.
//!
//! The event loop is a single thread over an mpsc channel fed by one
//! reader thread per worker. All *liveness* decisions (deadlines,
//! backoff pacing) read wall time through the crate's one
//! [`liveness_now`] site; all *output* decisions are pure functions of
//! the spec and the attempt counters, which is what makes the merged
//! JSONL stream byte-identical across worker counts, crash schedules,
//! retry histories, and resume points.
//!
//! **Ordered-prefix emission.** Results land out of order (workers
//! finish when they finish), but the merged file only ever grows by
//! the longest settled prefix in spec order: record `k` is written the
//! moment runs `0..=k` have all settled. Incremental streaming and
//! byte-determinism at once.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cd_obs::{Counter, Gauge, Registry};

use crate::inject::InjectConfig;
use crate::ledger::{self, Ledger, LedgerError, RunOutcome, Tail};
use crate::retry::{FailAction, RetryPolicy, SweepBook};
use crate::spec::{OrchSpec, SpecError};
use crate::wire::{Frame, FrameReader, WireError};

/// The crate's single wall-clock read. Liveness only — heartbeat
/// deadlines and backoff pacing; the value never reaches an output
/// byte, a ledger byte, or a metric that tests compare.
#[allow(clippy::disallowed_methods)]
fn liveness_now() -> Instant {
    Instant::now() // cd-lint: allow(wall_clock) -- liveness only (deadlines, backoff pacing); never feeds output bytes
}

/// Everything an orchestration needs to run.
#[derive(Debug, Clone)]
pub struct OrchOptions {
    /// The campaign spec text (see [`OrchSpec::parse`]).
    pub spec_text: String,
    /// Worker process count (≥ 1).
    pub workers: usize,
    /// Merged JSONL output path.
    pub out: PathBuf,
    /// Ledger path (created fresh unless `resume`).
    pub ledger: PathBuf,
    /// Resume from an existing ledger instead of starting fresh.
    pub resume: bool,
    /// Fault-injection rates forwarded to workers.
    pub inject: InjectConfig,
    /// Seed for the deterministic fault schedule.
    pub inject_seed: u64,
    /// Retry/backoff/quarantine limits.
    pub policy: RetryPolicy,
    /// A worker silent this long (no heartbeat, no result) is killed
    /// and its run retried.
    pub deadline_ms: u64,
    /// Path to the `cd-orch` binary to spawn as workers.
    pub worker_exe: PathBuf,
    /// Metrics registry to book `cd_orch_*` series into, if any.
    pub metrics: Option<Arc<Registry>>,
    /// Echo each merged record to stdout as it settles.
    pub stream: bool,
}

impl OrchOptions {
    /// Defaults for everything but the spec: 2 workers, fresh ledger,
    /// no injection, 5 s deadline, this binary as the worker.
    pub fn new(spec_text: impl Into<String>, out: PathBuf, ledger: PathBuf) -> OrchOptions {
        OrchOptions {
            spec_text: spec_text.into(),
            workers: 2,
            out,
            ledger,
            resume: false,
            inject: InjectConfig::default(),
            inject_seed: 0,
            policy: RetryPolicy::default(),
            deadline_ms: 5000,
            worker_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("cd-orch")),
            metrics: None,
            stream: false,
        }
    }
}

/// What a finished orchestration reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchSummary {
    /// Grid size.
    pub runs: usize,
    /// Runs completed successfully (including prior-session ones
    /// replayed from the ledger on resume).
    pub completed: usize,
    /// Runs quarantined as failed.
    pub failed: usize,
    /// Runs replayed from the ledger (resume only).
    pub resumed: usize,
    /// Attempts that failed and were retried.
    pub retries: u64,
    /// Worker processes restarted after a crash, hang, or bad frame.
    pub worker_restarts: u64,
}

/// An orchestration failure.
#[derive(Debug)]
pub enum OrchError {
    /// The spec did not parse.
    Spec(SpecError),
    /// The ledger could not be created, read, or trusted.
    Ledger(LedgerError),
    /// Filesystem/pipe failure outside the ledger.
    Io(std::io::Error),
    /// Workers died repeatedly before ever completing the handshake —
    /// the worker binary or environment is broken, not one run.
    WorkersKeepDying {
        /// Consecutive pre-handshake deaths observed.
        deaths: u32,
    },
}

impl fmt::Display for OrchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchError::Spec(e) => write!(f, "{e}"),
            OrchError::Ledger(e) => write!(f, "{e}"),
            OrchError::Io(e) => write!(f, "i/o error: {e}"),
            OrchError::WorkersKeepDying { deaths } => write!(
                f,
                "{deaths} consecutive workers died before completing the handshake; \
                 the worker binary or environment is broken"
            ),
        }
    }
}

impl std::error::Error for OrchError {}

impl From<SpecError> for OrchError {
    fn from(e: SpecError) -> Self {
        OrchError::Spec(e)
    }
}

impl From<LedgerError> for OrchError {
    fn from(e: LedgerError) -> Self {
        OrchError::Ledger(e)
    }
}

impl From<std::io::Error> for OrchError {
    fn from(e: std::io::Error) -> Self {
        OrchError::Io(e)
    }
}

/// `cd_orch_*` series, registered once per orchestration.
struct Meters {
    runs_ok: Counter,
    runs_failed: Counter,
    retries: Counter,
    quarantines: Counter,
    restarts: Counter,
    workers: Gauge,
    pending: Gauge,
}

impl Meters {
    fn register(registry: &Registry) -> Meters {
        Meters {
            runs_ok: registry.counter(
                "cd_orch_runs_total",
                "Scenario runs settled by the orchestrator",
                &[("outcome", "ok")],
            ),
            runs_failed: registry.counter(
                "cd_orch_runs_total",
                "Scenario runs settled by the orchestrator",
                &[("outcome", "failed")],
            ),
            retries: registry.counter(
                "cd_orch_retries_total",
                "Failed attempts re-dispatched under backoff",
                &[],
            ),
            quarantines: registry.counter(
                "cd_orch_quarantines_total",
                "Runs quarantined after exhausting attempts",
                &[],
            ),
            restarts: registry.counter(
                "cd_orch_worker_restarts_total",
                "Worker processes restarted after crash, hang, or bad frame",
                &[],
            ),
            workers: registry.gauge("cd_orch_workers", "Live worker processes", &[]),
            pending: registry.gauge("cd_orch_runs_pending", "Runs not yet settled", &[]),
        }
    }
}

enum Event {
    Frame(u64, Frame),
    /// The worker's stdout produced an undecodable frame.
    Broken(u64, WireError),
    /// The worker's stdout closed (it exited or was killed).
    Gone(u64),
}

enum WorkerState {
    Handshaking,
    Idle,
    Busy { run: usize },
}

struct Worker {
    child: Child,
    stdin: ChildStdin,
    state: WorkerState,
    last_seen: Instant,
}

/// Runs an orchestration to completion.
pub fn run(opts: &OrchOptions) -> Result<OrchSummary, OrchError> {
    let spec = OrchSpec::parse(&opts.spec_text)?;
    let campaign = spec.campaign();
    let variants = campaign.variants();
    let runs = variants.len();
    let canonical = spec.canonical();
    let digest = spec.digest();

    // ---- Ledger: fresh, or replayed for --resume. -------------------
    let mut slots: Vec<Option<Vec<u8>>> = vec![None; runs];
    let mut book = SweepBook::new(runs, opts.policy);
    let mut resumed = 0usize;
    let mut failed_prior = 0usize;
    let mut ledger = if opts.resume {
        let load = ledger::load(&opts.ledger)?;
        if load.digest != digest {
            return Err(OrchError::Ledger(LedgerError::DigestMismatch {
                ledger: load.digest,
                spec: digest,
            }));
        }
        let keep = match load.tail {
            Tail::Clean => None,
            Tail::Torn { offset } => {
                eprintln!(
                    "cd-orch: ledger has a torn tail record at offset {offset} \
                     (interrupted append); truncating and resuming"
                );
                Some(offset)
            }
        };
        for record in &load.records {
            let run = record.run as usize;
            if run >= runs {
                return Err(OrchError::Ledger(LedgerError::RunOutOfRange {
                    offset: record.offset,
                    run: record.run,
                    runs,
                }));
            }
            if slots[run].is_some() {
                continue; // duplicate append; first record wins
            }
            slots[run] = Some(record.jsonl.clone());
            let failed = record.outcome == RunOutcome::Failed;
            book.mark_done_prior(run, failed);
            resumed += 1;
            if failed {
                failed_prior += 1;
            }
        }
        let keep = keep.unwrap_or(std::fs::metadata(&opts.ledger)?.len());
        Ledger::open_append(&opts.ledger, keep)?
    } else {
        Ledger::create(&opts.ledger, digest)?
    };

    // ---- Merged output: ordered-prefix emission. --------------------
    // On resume the file is rewritten from scratch; replayed records
    // re-emit first, so the final bytes never depend on where the
    // previous session died.
    let mut out = BufWriter::new(File::create(&opts.out)?);
    let mut next_emit = 0usize;
    let emit_prefix = |slots: &[Option<Vec<u8>>],
                       next_emit: &mut usize,
                       out: &mut BufWriter<File>,
                       stream: bool|
     -> Result<(), OrchError> {
        while let Some(Some(jsonl)) = slots.get(*next_emit) {
            out.write_all(jsonl)?;
            if stream {
                let mut stdout = std::io::stdout().lock();
                stdout.write_all(jsonl)?;
                stdout.flush()?;
            }
            *next_emit += 1;
        }
        out.flush()?;
        Ok(())
    };
    emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;

    let meters = opts.metrics.as_ref().map(|r| Meters::register(r));
    if let Some(m) = &meters {
        m.pending.set(book.remaining() as f64);
    }

    // ---- Worker pool. -----------------------------------------------
    let (tx, rx): (Sender<Event>, Receiver<Event>) = channel();
    let mut pool: BTreeMap<u64, Worker> = BTreeMap::new();
    let mut next_wid: u64 = 0;
    let mut restarts: u64 = 0;
    let mut retries: u64 = 0;
    let mut quarantined = 0usize;
    // Consecutive worker deaths with no handshake ever completing —
    // the "worker binary is broken" fuse. Reset on every Ready.
    let mut handshake_deaths: u32 = 0;
    const HANDSHAKE_FUSE: u32 = 8;

    let want_workers = opts.workers.max(1).min(runs.max(1));
    for _ in 0..want_workers {
        if book.remaining() == 0 {
            break;
        }
        spawn_worker(opts, &canonical, &tx, &mut pool, &mut next_wid)?;
    }
    if let Some(m) = &meters {
        m.workers.set(pool.len() as f64);
    }

    let deadline = Duration::from_millis(opts.deadline_ms.max(1));
    let mut last_tick = liveness_now();

    while !book.all_settled() {
        // -- Pace backoff delays by real elapsed time. ----------------
        let now = liveness_now();
        let elapsed_ms = now.duration_since(last_tick).as_millis() as u64;
        if elapsed_ms > 0 {
            book.pace(elapsed_ms);
            last_tick = now;
        }

        // -- Reap workers silent past the deadline. -------------------
        let mut dead: Vec<u64> = Vec::new();
        for (&wid, worker) in &pool {
            let silent = now.duration_since(worker.last_seen) > deadline;
            if silent && !matches!(worker.state, WorkerState::Idle) {
                dead.push(wid);
            }
        }
        for wid in dead {
            let why = "no heartbeat within deadline";
            fail_worker(
                wid,
                why,
                opts,
                &canonical,
                &tx,
                &mut pool,
                &mut next_wid,
                &mut book,
                &mut slots,
                &mut ledger,
                variants,
                &meters,
                &mut retries,
                &mut quarantined,
                &mut restarts,
                &mut handshake_deaths,
            )?;
            emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;
        }
        if handshake_deaths >= HANDSHAKE_FUSE {
            shutdown(&mut pool);
            return Err(OrchError::WorkersKeepDying {
                deaths: handshake_deaths,
            });
        }

        // -- Dispatch pending runs to idle workers. -------------------
        let mut idle: Vec<u64> = pool
            .iter()
            .filter(|(_, w)| matches!(w.state, WorkerState::Idle))
            .map(|(&wid, _)| wid)
            .collect();
        for wid in idle.drain(..) {
            let Some(run) = book.next_pending() else {
                break;
            };
            let attempt = book.start(run);
            let ok = {
                let worker = pool.get_mut(&wid).expect("idle wid is in the pool");
                worker.state = WorkerState::Busy { run };
                worker.last_seen = liveness_now();
                writeln!(worker.stdin, "RUN {run} {attempt}")
                    .and_then(|_| worker.stdin.flush())
                    .is_ok()
            };
            if !ok {
                // Its pipe is gone: the worker died between frames.
                fail_worker(
                    wid,
                    "stdin pipe closed",
                    opts,
                    &canonical,
                    &tx,
                    &mut pool,
                    &mut next_wid,
                    &mut book,
                    &mut slots,
                    &mut ledger,
                    variants,
                    &meters,
                    &mut retries,
                    &mut quarantined,
                    &mut restarts,
                    &mut handshake_deaths,
                )?;
                emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;
            }
        }
        if let Some(m) = &meters {
            m.pending.set(book.remaining() as f64);
            m.workers.set(pool.len() as f64);
        }

        // -- Wait for the next event. ---------------------------------
        let event = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // All reader threads gone with work remaining; the
                // loop above will respawn on the next deadline pass.
                continue;
            }
        };
        match event {
            Event::Frame(wid, frame) => {
                if let Some(worker) = pool.get_mut(&wid) {
                    worker.last_seen = liveness_now();
                } else {
                    continue; // late frame from an already-reaped worker
                }
                match frame {
                    Frame::Ready {
                        digest: worker_digest,
                    } => {
                        if worker_digest == digest {
                            handshake_deaths = 0;
                            if let Some(worker) = pool.get_mut(&wid) {
                                if matches!(worker.state, WorkerState::Handshaking) {
                                    worker.state = WorkerState::Idle;
                                }
                            }
                        } else {
                            // A worker that parsed the same bytes to a
                            // different digest is a broken build; the
                            // handshake fuse stops the respawn churn.
                            fail_worker(
                                wid,
                                "handshake digest mismatch",
                                opts,
                                &canonical,
                                &tx,
                                &mut pool,
                                &mut next_wid,
                                &mut book,
                                &mut slots,
                                &mut ledger,
                                variants,
                                &meters,
                                &mut retries,
                                &mut quarantined,
                                &mut restarts,
                                &mut handshake_deaths,
                            )?;
                        }
                    }
                    Frame::Heartbeat { .. } => {}
                    Frame::Result { run, jsonl } => {
                        let expected = pool.get(&wid).is_some_and(
                            |w| matches!(w.state, WorkerState::Busy { run: r } if r == run as usize),
                        );
                        if !expected {
                            // A result we did not ask this worker for:
                            // treat the worker as compromised.
                            fail_worker(
                                wid,
                                "unsolicited result frame",
                                opts,
                                &canonical,
                                &tx,
                                &mut pool,
                                &mut next_wid,
                                &mut book,
                                &mut slots,
                                &mut ledger,
                                variants,
                                &meters,
                                &mut retries,
                                &mut quarantined,
                                &mut restarts,
                                &mut handshake_deaths,
                            )?;
                        } else {
                            let run = run as usize;
                            if let Some(worker) = pool.get_mut(&wid) {
                                worker.state = WorkerState::Idle;
                            }
                            book.complete(run);
                            ledger.append(run as u32, RunOutcome::Ok, &jsonl)?;
                            slots[run] = Some(jsonl);
                            if let Some(m) = &meters {
                                m.runs_ok.inc();
                            }
                            emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;
                        }
                    }
                }
            }
            Event::Broken(wid, why) => {
                let why = format!("bad frame: {why}");
                fail_worker(
                    wid,
                    &why,
                    opts,
                    &canonical,
                    &tx,
                    &mut pool,
                    &mut next_wid,
                    &mut book,
                    &mut slots,
                    &mut ledger,
                    variants,
                    &meters,
                    &mut retries,
                    &mut quarantined,
                    &mut restarts,
                    &mut handshake_deaths,
                )?;
                emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;
            }
            Event::Gone(wid) => {
                fail_worker(
                    wid,
                    "worker exited",
                    opts,
                    &canonical,
                    &tx,
                    &mut pool,
                    &mut next_wid,
                    &mut book,
                    &mut slots,
                    &mut ledger,
                    variants,
                    &meters,
                    &mut retries,
                    &mut quarantined,
                    &mut restarts,
                    &mut handshake_deaths,
                )?;
                emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;
            }
        }
    }

    emit_prefix(&slots, &mut next_emit, &mut out, opts.stream)?;
    debug_assert_eq!(next_emit, runs);
    shutdown(&mut pool);
    if let Some(m) = &meters {
        m.pending.set(0.0);
        m.workers.set(0.0);
    }

    Ok(OrchSummary {
        runs,
        completed: runs - failed_prior - quarantined,
        failed: failed_prior + quarantined,
        resumed,
        retries,
        worker_restarts: restarts,
    })
}

/// Spawns one worker, writes its spec preamble, and starts its reader
/// thread.
fn spawn_worker(
    opts: &OrchOptions,
    canonical: &str,
    tx: &Sender<Event>,
    pool: &mut BTreeMap<u64, Worker>,
    next_wid: &mut u64,
) -> Result<(), OrchError> {
    let wid = *next_wid;
    *next_wid += 1;
    let mut cmd = Command::new(&opts.worker_exe);
    cmd.arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if !opts.inject.is_off() {
        cmd.arg("--inject")
            .arg(opts.inject.render())
            .arg("--inject-seed")
            .arg(opts.inject_seed.to_string());
    }
    let mut child = cmd.spawn()?;
    let mut stdin = child.stdin.take().expect("stdin was piped");
    let stdout = child.stdout.take().expect("stdout was piped");

    // The preamble may hit a pipe the child already closed (it died
    // instantly); the reader thread reports that as Gone.
    let _ = write!(stdin, "SPEC {}\n{canonical}", canonical.len());
    let _ = stdin.flush();

    let reader_tx = tx.clone();
    std::thread::Builder::new()
        .name(format!("cd-orch-reader-{wid}"))
        .spawn(move || {
            let mut frames = FrameReader::new(stdout);
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => {
                        if reader_tx.send(Event::Frame(wid, frame)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => {
                        let _ = reader_tx.send(Event::Gone(wid));
                        return;
                    }
                    Err(e) => {
                        let _ = reader_tx.send(Event::Broken(wid, e));
                        return;
                    }
                }
            }
        })?;

    pool.insert(
        wid,
        Worker {
            child,
            stdin,
            state: WorkerState::Handshaking,
            last_seen: liveness_now(),
        },
    );
    Ok(())
}

/// Kills and removes a failed worker, books the failure of whatever it
/// was running (retry or quarantine), and respawns a replacement if
/// work remains.
#[allow(clippy::too_many_arguments)] // one call path; a struct would just rename the lines
fn fail_worker(
    wid: u64,
    why: &str,
    opts: &OrchOptions,
    canonical: &str,
    tx: &Sender<Event>,
    pool: &mut BTreeMap<u64, Worker>,
    next_wid: &mut u64,
    book: &mut SweepBook,
    slots: &mut [Option<Vec<u8>>],
    ledger: &mut Ledger,
    variants: &[cd_bench::campaign::Variant],
    meters: &Option<Meters>,
    retries: &mut u64,
    quarantined: &mut usize,
    restarts: &mut u64,
    handshake_deaths: &mut u32,
) -> Result<(), OrchError> {
    let Some(mut worker) = pool.remove(&wid) else {
        return Ok(()); // already reaped by an earlier event
    };
    let _ = worker.child.kill();
    let _ = worker.child.wait();

    match worker.state {
        WorkerState::Handshaking => {
            *handshake_deaths += 1;
        }
        WorkerState::Idle => {}
        WorkerState::Busy { run } => match book.fail(run) {
            FailAction::Retry { attempt, delay_ms } => {
                *retries += 1;
                if let Some(m) = meters {
                    m.retries.inc();
                }
                eprintln!(
                    "cd-orch: worker {wid} lost run {run} ({why}); \
                     retry as attempt {attempt} after {delay_ms}ms"
                );
            }
            FailAction::Quarantine => {
                *quarantined += 1;
                if let Some(m) = meters {
                    m.quarantines.inc();
                    m.runs_failed.inc();
                }
                let variant = &variants[run];
                let jsonl = quarantine_record(&variant.label, variant.config.seed);
                eprintln!(
                    "cd-orch: run {run} ({}) quarantined after {} attempts ({why})",
                    variant.label,
                    book.failures(run),
                );
                ledger.append(run as u32, RunOutcome::Failed, jsonl.as_bytes())?;
                slots[run] = Some(jsonl.into_bytes());
            }
        },
    }

    if book.remaining() > 0 {
        *restarts += 1;
        if let Some(m) = meters {
            m.restarts.inc();
        }
        spawn_worker(opts, canonical, tx, pool, next_wid)?;
    }
    Ok(())
}

/// The synthesized record for a quarantined run. Attempt counts and
/// timings are deliberately absent: the record must be a pure function
/// of the variant so the merged stream stays byte-stable.
pub fn quarantine_record(label: &str, seed: u64) -> String {
    format!("{{\"variant\":\"{label}\",\"seed\":{seed},\"outcome\":\"failed\"}}\n")
}

/// Asks every worker to exit, then makes sure of it.
fn shutdown(pool: &mut BTreeMap<u64, Worker>) {
    for (_, worker) in pool.iter_mut() {
        let _ = writeln!(worker.stdin, "EXIT");
        let _ = worker.stdin.flush();
    }
    for (_, mut worker) in std::mem::take(pool) {
        let deadline = liveness_now() + Duration::from_millis(500);
        loop {
            match worker.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if liveness_now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                _ => {
                    let _ = worker.child.kill();
                    let _ = worker.child.wait();
                    break;
                }
            }
        }
    }
}

/// Runs the spec **in-process** through the `Campaign` layer — the
/// reference the orchestrator's merged stream is byte-compared
/// against in tests and CI.
pub fn reference_bytes(spec_text: &str) -> Result<Vec<u8>, OrchError> {
    let spec = OrchSpec::parse(spec_text)?;
    Ok(spec.campaign().run().jsonl_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_record_is_minimal_and_stable() {
        assert_eq!(
            quarantine_record("kill/stock/seed7", 7),
            "{\"variant\":\"kill/stock/seed7\",\"seed\":7,\"outcome\":\"failed\"}\n"
        );
    }

    #[test]
    fn options_default_to_this_binary_and_no_injection() {
        let opts = OrchOptions::new("", PathBuf::from("o"), PathBuf::from("l"));
        assert_eq!(opts.workers, 2);
        assert!(opts.inject.is_off());
        assert!(!opts.resume);
        assert_eq!(opts.policy.max_attempts, 8);
    }
}
