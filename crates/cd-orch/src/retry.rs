//! The retry/backoff/quarantine state machine — pure bookkeeping.
//!
//! [`SweepBook`] tracks every run in the sweep through
//! `Pending → Running → (Done | Delayed → Pending | Failed)`. All
//! decisions are driven by **attempt counters**, never wall-clock
//! readings: the backoff delay for a failed run is a pure function of
//! its failure count, and the orchestrator's event loop merely *paces*
//! dispatch by that many milliseconds. Wall time therefore never
//! reaches the output bytes, which is what keeps the merged stream
//! byte-identical across crash schedules and retry histories.

/// Retry limits and backoff shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before a run is quarantined as `failed` (≥ 1).
    pub max_attempts: u32,
    /// First retry delay, milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub cap_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 50,
            cap_delay_ms: 2000,
        }
    }
}

impl RetryPolicy {
    /// Delay before the next attempt after `failures` consecutive
    /// failures: `min(base << (failures - 1), cap)`, capped shifts.
    pub fn backoff_ms(&self, failures: u32) -> u64 {
        if failures == 0 {
            return 0;
        }
        // u128 headroom: a ≤20-bit shift of a u64 cannot overflow, so
        // the min against the cap sees the true doubled value.
        let shift = (failures - 1).min(20);
        let scaled = u128::from(self.base_delay_ms) << shift;
        scaled.min(u128::from(self.cap_delay_ms)) as u64
    }
}

/// Where one run currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting to be dispatched.
    Pending,
    /// Dispatched to a worker.
    Running,
    /// Failed; waiting out a backoff delay before re-dispatch.
    Delayed {
        /// Milliseconds of backoff still to pace off.
        remaining_ms: u64,
    },
    /// Completed successfully (result recorded).
    Done,
    /// Quarantined after exhausting attempts.
    Failed,
}

/// What the orchestrator must do about a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Re-dispatch after `delay_ms`; this will be attempt `attempt`.
    Retry {
        /// The attempt number the retry will carry (1-based).
        attempt: u32,
        /// Backoff delay before re-dispatch, milliseconds.
        delay_ms: u64,
    },
    /// Attempts exhausted: quarantine, emit a synthesized `failed`
    /// record, move on.
    Quarantine,
}

/// Per-run attempt bookkeeping for a whole sweep.
#[derive(Debug)]
pub struct SweepBook {
    policy: RetryPolicy,
    phase: Vec<Phase>,
    failures: Vec<u32>,
}

impl SweepBook {
    /// A fresh book with `runs` pending runs.
    pub fn new(runs: usize, policy: RetryPolicy) -> SweepBook {
        SweepBook {
            policy,
            phase: vec![Phase::Pending; runs],
            failures: vec![0; runs],
        }
    }

    /// Marks a run completed before the sweep started (ledger replay
    /// on `--resume`).
    pub fn mark_done_prior(&mut self, run: usize, failed: bool) {
        self.phase[run] = if failed { Phase::Failed } else { Phase::Done };
    }

    /// The lowest pending run, if any.
    pub fn next_pending(&self) -> Option<usize> {
        self.phase.iter().position(|p| matches!(p, Phase::Pending))
    }

    /// Marks a run dispatched. Returns the attempt number it carries
    /// (1-based: failures so far + 1).
    pub fn start(&mut self, run: usize) -> u32 {
        debug_assert!(matches!(self.phase[run], Phase::Pending));
        self.phase[run] = Phase::Running;
        self.failures[run] + 1
    }

    /// Marks a running run completed.
    pub fn complete(&mut self, run: usize) {
        debug_assert!(matches!(self.phase[run], Phase::Running));
        self.phase[run] = Phase::Done;
    }

    /// Marks a running run failed; decides retry vs quarantine.
    pub fn fail(&mut self, run: usize) -> FailAction {
        debug_assert!(matches!(self.phase[run], Phase::Running));
        self.failures[run] += 1;
        let failures = self.failures[run];
        if failures >= self.policy.max_attempts {
            self.phase[run] = Phase::Failed;
            FailAction::Quarantine
        } else {
            let delay_ms = self.policy.backoff_ms(failures);
            self.phase[run] = Phase::Delayed {
                remaining_ms: delay_ms,
            };
            FailAction::Retry {
                attempt: failures + 1,
                delay_ms,
            }
        }
    }

    /// Paces `elapsed_ms` off every delayed run, promoting those whose
    /// backoff expired back to pending. Returns how many promoted.
    pub fn pace(&mut self, elapsed_ms: u64) -> usize {
        let mut promoted = 0;
        for phase in &mut self.phase {
            if let Phase::Delayed { remaining_ms } = phase {
                *remaining_ms = remaining_ms.saturating_sub(elapsed_ms);
                if *remaining_ms == 0 {
                    *phase = Phase::Pending;
                    promoted += 1;
                }
            }
        }
        promoted
    }

    /// The phase of one run.
    pub fn phase(&self, run: usize) -> Phase {
        self.phase[run]
    }

    /// Failures recorded against one run so far.
    pub fn failures(&self, run: usize) -> u32 {
        self.failures[run]
    }

    /// Runs not yet settled (neither done nor quarantined).
    pub fn remaining(&self) -> usize {
        self.phase
            .iter()
            .filter(|p| !matches!(p, Phase::Done | Phase::Failed))
            .count()
    }

    /// `true` once every run is done or quarantined.
    pub fn all_settled(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap() {
        let p = RetryPolicy::default();
        let cases: &[(u32, u64)] = &[
            (0, 0),
            (1, 50),
            (2, 100),
            (3, 200),
            (4, 400),
            (5, 800),
            (6, 1600),
            (7, 2000),
            (63, 2000),
        ];
        for &(failures, want) in cases {
            assert_eq!(p.backoff_ms(failures), want, "failures={failures}");
        }
        // Degenerate policy: huge shift must saturate, not overflow.
        let wide = RetryPolicy {
            max_attempts: 64,
            base_delay_ms: u64::MAX / 2,
            cap_delay_ms: u64::MAX,
        };
        assert_eq!(wide.backoff_ms(40), u64::MAX);
    }

    #[test]
    fn lifecycle_walks_pending_running_done() {
        let mut book = SweepBook::new(3, RetryPolicy::default());
        assert_eq!(book.remaining(), 3);
        assert_eq!(book.next_pending(), Some(0));
        assert_eq!(book.start(0), 1);
        assert_eq!(book.phase(0), Phase::Running);
        assert_eq!(book.next_pending(), Some(1));
        book.complete(0);
        assert_eq!(book.phase(0), Phase::Done);
        assert_eq!(book.remaining(), 2);
        assert!(!book.all_settled());
    }

    #[test]
    fn failures_back_off_then_quarantine() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 10,
            cap_delay_ms: 1000,
        };
        let mut book = SweepBook::new(1, policy);
        // Attempt 1 fails → retry as attempt 2 after base delay.
        book.start(0);
        assert_eq!(
            book.fail(0),
            FailAction::Retry {
                attempt: 2,
                delay_ms: 10
            }
        );
        assert_eq!(book.phase(0), Phase::Delayed { remaining_ms: 10 });
        // Pacing 4ms leaves it delayed; 6 more promotes it.
        assert_eq!(book.pace(4), 0);
        assert_eq!(book.phase(0), Phase::Delayed { remaining_ms: 6 });
        assert_eq!(book.pace(6), 1);
        assert_eq!(book.phase(0), Phase::Pending);
        // Attempt 2 fails → doubled delay.
        assert_eq!(book.start(0), 2);
        assert_eq!(
            book.fail(0),
            FailAction::Retry {
                attempt: 3,
                delay_ms: 20
            }
        );
        book.pace(1000);
        // Attempt 3 (= max_attempts) fails → quarantine.
        assert_eq!(book.start(0), 3);
        assert_eq!(book.fail(0), FailAction::Quarantine);
        assert_eq!(book.phase(0), Phase::Failed);
        assert!(book.all_settled());
        assert_eq!(book.failures(0), 3);
    }

    #[test]
    fn resume_replay_skips_settled_runs() {
        let mut book = SweepBook::new(4, RetryPolicy::default());
        book.mark_done_prior(0, false);
        book.mark_done_prior(2, true);
        assert_eq!(book.remaining(), 2);
        assert_eq!(book.next_pending(), Some(1));
        book.start(1);
        book.complete(1);
        assert_eq!(book.next_pending(), Some(3));
        book.start(3);
        book.complete(3);
        assert!(book.all_settled());
    }
}
