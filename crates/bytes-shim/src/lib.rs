//! Minimal, std-only subset of the `bytes` crate API.
//!
//! The build environment has no crates.io registry, so this workspace
//! vendors exactly the surface `mavlink-lite` uses: little-endian
//! cursor-style reads over `&[u8]` ([`Buf`]), append-style writes
//! ([`BufMut`]) and a growable byte buffer ([`BytesMut`]). Semantics match
//! the upstream crate for the implemented methods (including panics on
//! under-length reads), so swapping the real dependency back in is a
//! one-line manifest change.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Cursor-style little-endian reads; implemented for `&[u8]`, which
/// advances through the slice as values are consumed.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Reads `N` bytes, advancing the cursor. Panics if under-length.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer under-length: {} < {N}", self.len());
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

/// Append-style little-endian writes; implemented for [`BytesMut`] and
/// `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_i32_le(-42);
        buf.put_f32_le(3.5);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.get_i32_le(), -42);
        assert_eq!(cursor.get_f32_le(), 3.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer under-length")]
    fn short_read_panics_like_upstream() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn vec_and_bytesmut_agree() {
        let mut a = Vec::new();
        let mut b = BytesMut::new();
        a.put_f32_le(1.25);
        b.put_f32_le(1.25);
        assert_eq!(a, b.to_vec());
    }
}
