//! Closed-loop flight tests: the controller flying the simulated airframe.
//!
//! These tests establish the control-quality facts the paper's experiments
//! rely on: the stack holds position at healthy rates, and *degrading the
//! loop rate / sensor cadence destabilizes it* — the crash mechanism behind
//! Figure 4.

use autopilot::controller::{ControlGains, FlightController, Setpoint, Waypoint};
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::math::Vec3;
use uav_dynamics::world::{World, WorldConfig};

/// Result of a scripted closed-loop flight.
struct FlightResult {
    max_xy_dev: f64,
    max_z_dev: f64,
    crashed: bool,
    final_pos: Vec3,
}

/// Flies `duration` seconds of position hold at `target` with every loop
/// running at the given rates. `latency` delays actuation by a fixed lag,
/// emulating scheduling-induced output delay.
#[allow(clippy::too_many_arguments)]
fn fly(
    gains: ControlGains,
    seed: u64,
    duration_s: u64,
    sensor_hz: f64,
    outer_hz: f64,
    rate_hz: f64,
    latency: SimDuration,
    target: Vec3,
) -> FlightResult {
    let mut world = World::new(WorldConfig::default(), seed);
    let hover = Vec3::new(0.0, 0.0, -1.0);
    world.start_at_hover(hover);

    let mut fc = FlightController::new(world.quad_params(), gains);
    fc.initialize_hover(hover, 0.0, SimTime::ZERO);
    fc.set_setpoint(Setpoint {
        position: target,
        yaw: 0.0,
    });

    let dt = SimDuration::from_micros(250);
    let sensor_period = SimDuration::from_hz(sensor_hz);
    let outer_period = SimDuration::from_hz(outer_hz);
    let rate_period = SimDuration::from_hz(rate_hz);
    let fix_period = SimDuration::from_hz(10.0);

    let end = SimTime::from_secs(duration_s);
    let mut t = SimTime::ZERO;
    let (mut next_sensor, mut next_outer, mut next_rate, mut next_fix) = (t, t, t, t);
    let mut pending: Vec<(SimTime, [u16; 4])> = Vec::new();

    let mut max_xy_dev = 0.0f64;
    let mut max_z_dev = 0.0f64;

    while t < end && world.crash().is_none() {
        if t >= next_sensor {
            let imu = world.sample_imu();
            fc.on_imu(&imu);
            next_sensor += sensor_period;
        }
        if t >= next_fix {
            let fix = world.sample_position();
            fc.on_position_fix(&fix);
            next_fix += fix_period;
        }
        if t >= next_outer {
            fc.run_outer(t);
            next_outer += outer_period;
        }
        if t >= next_rate {
            let pwm = fc.run_rate_loop(t);
            pending.push((t + latency, pwm));
            next_rate += rate_period;
        }
        while let Some(&(due, pwm)) = pending.first() {
            if due <= t {
                world.set_motor_pwm(pwm);
                pending.remove(0);
            } else {
                break;
            }
        }
        t += dt;
        world.advance_to(t);

        if t > SimTime::from_secs(2) {
            let p = world.truth().position;
            max_xy_dev = max_xy_dev.max((p - target).norm_xy());
            max_z_dev = max_z_dev.max((p.z - target.z).abs());
        }
    }

    FlightResult {
        max_xy_dev,
        max_z_dev,
        crashed: world.crash().is_some(),
        final_pos: world.truth().position,
    }
}

#[test]
fn complex_controller_holds_position_at_full_rate() {
    let r = fly(
        ControlGains::complex(),
        42,
        15,
        250.0,
        250.0,
        400.0,
        SimDuration::ZERO,
        Vec3::new(0.0, 0.0, -1.0),
    );
    assert!(!r.crashed, "must not crash");
    assert!(r.max_xy_dev < 0.25, "xy dev {}", r.max_xy_dev);
    assert!(r.max_z_dev < 0.25, "z dev {}", r.max_z_dev);
}

#[test]
fn safety_controller_holds_position_at_full_rate() {
    let r = fly(
        ControlGains::safety(),
        43,
        15,
        250.0,
        250.0,
        400.0,
        SimDuration::ZERO,
        Vec3::new(0.0, 0.0, -1.0),
    );
    assert!(!r.crashed);
    assert!(r.max_xy_dev < 0.35, "xy dev {}", r.max_xy_dev);
    assert!(r.max_z_dev < 0.35, "z dev {}", r.max_z_dev);
}

#[test]
fn step_response_reaches_new_setpoint() {
    let r = fly(
        ControlGains::complex(),
        44,
        12,
        250.0,
        250.0,
        400.0,
        SimDuration::ZERO,
        Vec3::new(1.0, -0.5, -1.5),
    );
    assert!(!r.crashed);
    let err = (r.final_pos - Vec3::new(1.0, -0.5, -1.5)).norm();
    assert!(err < 0.2, "final error {err}");
}

#[test]
fn moderate_rate_reduction_still_stable() {
    // Half-rate operation: well within stability margins.
    let r = fly(
        ControlGains::complex(),
        45,
        10,
        125.0,
        125.0,
        200.0,
        SimDuration::from_millis(4),
        Vec3::new(0.0, 0.0, -1.0),
    );
    assert!(!r.crashed, "half-rate flight must still be stable");
    assert!(r.max_xy_dev < 0.5, "xy dev {}", r.max_xy_dev);
}

#[test]
fn severe_rate_degradation_destabilizes() {
    // The Figure-4 mechanism: a memory-DoS-starved stack effectively runs
    // the whole pipeline at a fraction of its design rate with added
    // latency. At ~15x degradation plus 60 ms of latency the vehicle must
    // lose position control (crash or large excursion).
    let r = fly(
        ControlGains::complex(),
        46,
        20,
        15.0,
        15.0,
        25.0,
        SimDuration::from_millis(60),
        Vec3::new(0.0, 0.0, -1.0),
    );
    assert!(
        r.crashed || r.max_xy_dev > 1.0 || r.max_z_dev > 1.0,
        "severe degradation should destabilize: xy {} z {} crashed {}",
        r.max_xy_dev,
        r.max_z_dev,
        r.crashed
    );
}

#[test]
fn mission_waypoints_are_tracked_in_order() {
    let mut world = World::new(WorldConfig::default(), 47);
    let hover = Vec3::new(0.0, 0.0, -1.0);
    world.start_at_hover(hover);
    let mut fc = FlightController::new(world.quad_params(), ControlGains::complex());
    fc.initialize_hover(hover, 0.0, SimTime::ZERO);
    fc.set_mission(vec![
        Waypoint {
            position: Vec3::new(1.0, 0.0, -1.0),
            yaw: 0.0,
            tolerance: 0.3,
        },
        Waypoint {
            position: Vec3::new(1.0, 1.0, -1.5),
            yaw: 0.0,
            tolerance: 0.3,
        },
    ]);

    let dt = SimDuration::from_micros(250);
    let mut t = SimTime::ZERO;
    let (mut next_s, mut next_o, mut next_r, mut next_f) = (t, t, t, t);
    while t < SimTime::from_secs(20) && world.crash().is_none() {
        if t >= next_s {
            fc.on_imu(&world.sample_imu());
            next_s += SimDuration::from_hz(250.0);
        }
        if t >= next_f {
            fc.on_position_fix(&world.sample_position());
            next_f += SimDuration::from_hz(10.0);
        }
        if t >= next_o {
            fc.run_outer(t);
            next_o += SimDuration::from_hz(250.0);
        }
        if t >= next_r {
            world.set_motor_pwm(fc.run_rate_loop(t));
            next_r += SimDuration::from_hz(400.0);
        }
        t += dt;
        world.advance_to(t);
        if fc.mission_progress() == 2 {
            break;
        }
    }
    assert!(world.crash().is_none(), "mission flight crashed");
    assert_eq!(fc.mission_progress(), 2, "mission incomplete");
    let err = (world.truth().position - Vec3::new(1.0, 1.0, -1.5)).norm();
    assert!(err < 0.5, "far from final waypoint: {err}");
}

#[test]
fn gust_disturbance_is_rejected() {
    let mut world = World::new(WorldConfig::default(), 48);
    let hover = Vec3::new(0.0, 0.0, -1.0);
    world.start_at_hover(hover);
    let mut fc = FlightController::new(world.quad_params(), ControlGains::complex());
    fc.initialize_hover(hover, 0.0, SimTime::ZERO);

    let dt = SimDuration::from_micros(250);
    let mut t = SimTime::ZERO;
    let (mut next_s, mut next_o, mut next_r, mut next_f) = (t, t, t, t);
    let mut gusted = false;
    let mut max_dev_after_recovery = 0.0f64;
    while t < SimTime::from_secs(15) && world.crash().is_none() {
        if !gusted && t >= SimTime::from_secs(5) {
            world.inject_gust(Vec3::new(2.5, 2.5, 0.0), 1.0);
            gusted = true;
        }
        if t >= next_s {
            fc.on_imu(&world.sample_imu());
            next_s += SimDuration::from_hz(250.0);
        }
        if t >= next_f {
            fc.on_position_fix(&world.sample_position());
            next_f += SimDuration::from_hz(10.0);
        }
        if t >= next_o {
            fc.run_outer(t);
            next_o += SimDuration::from_hz(250.0);
        }
        if t >= next_r {
            world.set_motor_pwm(fc.run_rate_loop(t));
            next_r += SimDuration::from_hz(400.0);
        }
        t += dt;
        world.advance_to(t);
        if t > SimTime::from_secs(12) {
            max_dev_after_recovery =
                max_dev_after_recovery.max((world.truth().position - hover).norm());
        }
    }
    assert!(world.crash().is_none());
    assert!(
        max_dev_after_recovery < 0.3,
        "should re-settle after gust, dev {max_dev_after_recovery}"
    );
}
