//! Property-based tests for the control stack: PID limits hold for any
//! gain/input combination, and the mixer's outputs are always realizable.

use autopilot::mixer::{Mixer, MixerConfig, Wrench};
use autopilot::pid::{Pid, PidConfig};
use proptest::prelude::*;
use uav_dynamics::quad::QuadParams;

fn arb_pid_config() -> impl Strategy<Value = PidConfig> {
    (
        0.0f64..50.0,
        0.0f64..50.0,
        0.0f64..5.0,
        0.1f64..100.0,
        0.0f64..50.0,
        prop_oneof![Just(0.0), 1.0f64..100.0],
    )
        .prop_map(|(kp, ki, kd, out, int, cutoff)| {
            PidConfig::pid(kp, ki, kd, out, int, cutoff)
        })
}

proptest! {
    /// PID output and integrator never leave their configured limits, for
    /// any gains, inputs and time steps — the anti-windup contract.
    #[test]
    fn pid_limits_always_hold(
        config in arb_pid_config(),
        inputs in prop::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 1..200),
        dt in 0.0001f64..0.1,
    ) {
        let mut pid = Pid::new(config);
        for (sp, meas) in inputs {
            let out = pid.update(sp, meas, dt);
            prop_assert!(out.abs() <= config.output_limit + 1e-12, "output {out}");
            prop_assert!(
                pid.integral().abs() <= config.integral_limit + 1e-12,
                "integral {}",
                pid.integral()
            );
            prop_assert!(out.is_finite());
        }
    }

    /// Reset always restores the zero-state response.
    #[test]
    fn pid_reset_restores_initial_behaviour(
        config in arb_pid_config(),
        sp in -100.0f64..100.0,
        meas in -100.0f64..100.0,
    ) {
        let mut fresh = Pid::new(config);
        let mut used = Pid::new(config);
        for i in 0..50 {
            used.update(i as f64, -(i as f64), 0.01);
        }
        used.reset();
        prop_assert_eq!(fresh.update(sp, meas, 0.01), used.update(sp, meas, 0.01));
    }

    /// Mixer outputs are always in [0, 1] for any wrench demand.
    #[test]
    fn mixer_outputs_realizable(
        thrust in -5.0f64..60.0,
        tx in -5.0f64..5.0,
        ty in -5.0f64..5.0,
        tz in -2.0f64..2.0,
    ) {
        let mixer = Mixer::new(MixerConfig::from_quad(&QuadParams::default()));
        let cmds = mixer.mix(Wrench {
            thrust,
            torque_x: tx,
            torque_y: ty,
            torque_z: tz,
        });
        for c in cmds {
            prop_assert!((0.0..=1.0).contains(&c), "command {c} out of range");
            prop_assert!(c.is_finite());
        }
    }

    /// For feasible (unsaturated) demands the mixer is exact: recomputing
    /// the wrench from the motor commands returns the input.
    #[test]
    fn mixer_exact_when_feasible(
        thrust in 6.0f64..18.0,
        tx in -0.3f64..0.3,
        ty in -0.3f64..0.3,
        tz in -0.05f64..0.05,
    ) {
        let params = QuadParams::default();
        let config = MixerConfig::from_quad(&params);
        let mixer = Mixer::new(config);
        let w = Wrench { thrust, torque_x: tx, torque_y: ty, torque_z: tz };
        let cmds = mixer.mix(w);
        // Skip genuinely saturated cases (they are allowed to deviate).
        if cmds.iter().all(|c| *c > 1e-9 && *c < 1.0 - 1e-9) {
            let t: Vec<f64> = cmds.iter().map(|c| c * params.motor_max_thrust).collect();
            let arm = params.arm_length / std::f64::consts::SQRT_2;
            let back_thrust: f64 = t.iter().sum();
            let back_tx = arm * (-t[0] + t[1] + t[2] - t[3]);
            let back_ty = arm * (t[0] - t[1] + t[2] - t[3]);
            let back_tz = params.torque_coeff * (t[0] + t[1] - t[2] - t[3]);
            prop_assert!((back_thrust - thrust).abs() < 1e-6);
            prop_assert!((back_tx - tx).abs() < 1e-6);
            prop_assert!((back_ty - ty).abs() < 1e-6);
            prop_assert!((back_tz - tz).abs() < 1e-6);
        }
    }
}
