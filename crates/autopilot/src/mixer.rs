//! Control allocation: thrust + body torques → four motor commands.
//!
//! Implements the Quad-X geometry used by [`uav_dynamics::quad::Quadrotor`]
//! (motors: 0 front-right CCW, 1 rear-left CCW, 2 front-left CW,
//! 3 rear-right CW) with airmode-style desaturation: when a command exceeds
//! the actuator range, yaw authority is sacrificed first and collective
//! thrust is shifted to preserve roll/pitch — attitude is what keeps a
//! multirotor alive.

use uav_dynamics::motor::cmd_to_pwm;

/// Geometry/scaling parameters for the mixer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixerConfig {
    /// Motor lever arm projection, m (arm length / √2 for Quad-X).
    pub arm: f64,
    /// Reaction torque per newton of thrust, m.
    pub torque_coeff: f64,
    /// Maximum thrust of one motor, N.
    pub motor_max_thrust: f64,
}

impl MixerConfig {
    /// Builds the mixer config from airframe parameters.
    pub fn from_quad(params: &uav_dynamics::quad::QuadParams) -> Self {
        MixerConfig {
            arm: params.arm_length / std::f64::consts::SQRT_2,
            torque_coeff: params.torque_coeff,
            motor_max_thrust: params.motor_max_thrust,
        }
    }
}

/// The demanded wrench: collective thrust plus body torques.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Wrench {
    /// Total thrust, N (positive up along −z body).
    pub thrust: f64,
    /// Roll torque, N·m.
    pub torque_x: f64,
    /// Pitch torque, N·m.
    pub torque_y: f64,
    /// Yaw torque, N·m.
    pub torque_z: f64,
}

/// Allocates a wrench to per-motor normalized commands in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use autopilot::mixer::{Mixer, MixerConfig, Wrench};
/// use uav_dynamics::quad::QuadParams;
///
/// let mixer = Mixer::new(MixerConfig::from_quad(&QuadParams::default()));
/// let cmds = mixer.mix(Wrench { thrust: 11.77, ..Default::default() });
/// // Pure hover thrust: all four motors equal.
/// assert!((cmds[0] - cmds[3]).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixer {
    config: MixerConfig,
}

impl Mixer {
    /// Creates a mixer.
    ///
    /// # Panics
    ///
    /// Panics if any config parameter is non-positive.
    pub fn new(config: MixerConfig) -> Self {
        assert!(config.arm > 0.0, "arm must be positive");
        assert!(config.torque_coeff > 0.0, "torque_coeff must be positive");
        assert!(
            config.motor_max_thrust > 0.0,
            "motor_max_thrust must be positive"
        );
        Mixer { config }
    }

    /// Computes normalized motor commands for `wrench`.
    pub fn mix(&self, wrench: Wrench) -> [f64; 4] {
        let c = &self.config;
        let base = wrench.thrust / 4.0;
        let r = wrench.torque_x / (4.0 * c.arm);
        let p = wrench.torque_y / (4.0 * c.arm);
        let mut y = wrench.torque_z / (4.0 * c.torque_coeff);

        // Quad-X allocation (see torque signs in uav-dynamics::quad).
        let thrust_of = |r: f64, p: f64, y: f64| {
            [
                base - r + p + y, // 0: front-right, CCW
                base + r - p + y, // 1: rear-left,  CCW
                base + r + p - y, // 2: front-left,  CW
                base - r - p - y, // 3: rear-right,  CW
            ]
        };

        let max = c.motor_max_thrust;
        let mut thrusts = thrust_of(r, p, y);

        // Stage 1: give up yaw authority if it causes saturation.
        let overflow = thrusts
            .iter()
            .map(|t| (t - max).max(0.0).max(-t))
            .fold(0.0f64, f64::max);
        if overflow > 0.0 {
            let shrink = (1.0 - overflow / y.abs().max(1e-9)).clamp(0.0, 1.0);
            y *= shrink;
            thrusts = thrust_of(r, p, y);
        }

        // Stage 2: shift collective thrust to center the commands in range.
        let lo = thrusts.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = thrusts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut shift = 0.0;
        if lo < 0.0 && hi < max {
            shift = (-lo).min(max - hi);
        } else if hi > max && lo > 0.0 {
            shift = -(hi - max).min(lo);
        }

        let mut cmds = [0.0f64; 4];
        for (cmd, t) in cmds.iter_mut().zip(thrusts) {
            *cmd = ((t + shift) / max).clamp(0.0, 1.0);
        }
        cmds
    }

    /// Computes PWM microsecond commands for `wrench`.
    pub fn mix_pwm(&self, wrench: Wrench) -> [u16; 4] {
        let cmds = self.mix(wrench);
        [
            cmd_to_pwm(cmds[0]),
            cmd_to_pwm(cmds[1]),
            cmd_to_pwm(cmds[2]),
            cmd_to_pwm(cmds[3]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uav_dynamics::quad::QuadParams;

    fn mixer() -> Mixer {
        Mixer::new(MixerConfig::from_quad(&QuadParams::default()))
    }

    /// Recomputes the wrench produced by a set of normalized commands.
    fn wrench_of(m: &Mixer, cmds: [f64; 4]) -> Wrench {
        let c = m.config;
        let t: Vec<f64> = cmds.iter().map(|x| x * c.motor_max_thrust).collect();
        Wrench {
            thrust: t.iter().sum(),
            torque_x: c.arm * (-t[0] + t[1] + t[2] - t[3]),
            torque_y: c.arm * (t[0] - t[1] + t[2] - t[3]),
            torque_z: c.torque_coeff * (t[0] + t[1] - t[2] - t[3]),
        }
    }

    #[test]
    fn unsaturated_mix_is_exact() {
        let m = mixer();
        let w = Wrench {
            thrust: 12.0,
            torque_x: 0.2,
            torque_y: -0.15,
            torque_z: 0.02,
        };
        let back = wrench_of(&m, m.mix(w));
        assert!((back.thrust - w.thrust).abs() < 1e-9);
        assert!((back.torque_x - w.torque_x).abs() < 1e-9);
        assert!((back.torque_y - w.torque_y).abs() < 1e-9);
        assert!((back.torque_z - w.torque_z).abs() < 1e-9);
    }

    #[test]
    fn commands_always_in_unit_range() {
        let m = mixer();
        for &thrust in &[0.0, 5.0, 20.0, 40.0] {
            for &tx in &[-3.0, 0.0, 3.0] {
                for &tz in &[-1.0, 0.0, 1.0] {
                    let cmds = m.mix(Wrench {
                        thrust,
                        torque_x: tx,
                        torque_y: -tx,
                        torque_z: tz,
                    });
                    for c in cmds {
                        assert!((0.0..=1.0).contains(&c), "{cmds:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn saturation_preserves_roll_direction_over_yaw() {
        let m = mixer();
        // Huge roll + yaw demand at high thrust: yaw gets sacrificed, the
        // roll torque sign must survive.
        let w = Wrench {
            thrust: 22.0,
            torque_x: 2.0,
            torque_y: 0.0,
            torque_z: 1.5,
        };
        let back = wrench_of(&m, m.mix(w));
        assert!(back.torque_x > 0.3, "roll torque retained: {back:?}");
        assert!(back.torque_z.abs() < w.torque_z, "yaw reduced: {back:?}");
    }

    #[test]
    fn zero_thrust_zero_torque_is_all_motors_off() {
        let m = mixer();
        assert_eq!(m.mix(Wrench::default()), [0.0; 4]);
    }

    #[test]
    fn low_thrust_roll_demand_uses_thrust_shift() {
        let m = mixer();
        // Nearly zero collective with a roll demand: without the shift the
        // negative-side motors would clamp at 0 and kill the torque.
        let w = Wrench {
            thrust: 0.5,
            torque_x: 0.3,
            torque_y: 0.0,
            torque_z: 0.0,
        };
        let back = wrench_of(&m, m.mix(w));
        assert!(back.torque_x > 0.25, "roll mostly preserved: {back:?}");
    }

    #[test]
    fn pwm_output_matches_normalized() {
        let m = mixer();
        let w = Wrench {
            thrust: 11.0,
            torque_x: 0.1,
            torque_y: 0.1,
            torque_z: 0.0,
        };
        let cmds = m.mix(w);
        let pwm = m.mix_pwm(w);
        for i in 0..4 {
            assert_eq!(pwm[i], cmd_to_pwm(cmds[i]));
        }
    }
}
