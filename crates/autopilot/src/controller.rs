//! The PX4-like cascaded flight controller.
//!
//! Structure (outer → inner): position P → velocity PID → attitude P →
//! rate PID → mixer. The same [`FlightController`] type serves as both of
//! the paper's controllers:
//!
//! * the **complex controller** ([`ControlGains::complex`]) — aggressive
//!   gains, full position cascade, waypoint missions; runs inside the CCE
//!   on forwarded sensor messages;
//! * the **safety controller** ([`ControlGains::safety`]) — conservative
//!   gains and tighter limits; small enough to verify, runs on the HCE and
//!   is always hot as the Simplex fallback.

use sim_core::time::SimTime;
use uav_dynamics::math::{wrap_angle, Quat, Vec3};
use uav_dynamics::quad::{QuadParams, GRAVITY};
use uav_dynamics::sensors::{BaroSample, ImuSample, PositionFix};

use crate::estimator::{
    AttitudeFilter, AttitudeFilterConfig, PositionFilter, PositionFilterConfig,
};
use crate::mixer::{Mixer, MixerConfig, Wrench};
use crate::pid::{Pid, PidConfig};

/// Gains and limits for the full cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlGains {
    /// Position → velocity-setpoint P gain, 1/s.
    pub pos_p: f64,
    /// Horizontal velocity limit, m/s.
    pub max_vel_xy: f64,
    /// Vertical velocity limit, m/s.
    pub max_vel_z: f64,
    /// Horizontal velocity PID (output: acceleration setpoint, m/s²).
    pub vel_xy: PidConfig,
    /// Vertical velocity PID (output: acceleration setpoint, m/s²).
    pub vel_z: PidConfig,
    /// Maximum commanded tilt, rad.
    pub max_tilt: f64,
    /// Attitude → rate-setpoint P gain, 1/s.
    pub att_p: f64,
    /// Rate-setpoint limit, rad/s.
    pub max_rate: f64,
    /// Yaw rate-setpoint limit, rad/s.
    pub max_yaw_rate: f64,
    /// Roll/pitch rate PID (output: angular acceleration, rad/s²).
    pub rate_rp: PidConfig,
    /// Yaw rate PID (output: angular acceleration, rad/s²).
    pub rate_yaw: PidConfig,
}

impl ControlGains {
    /// The complex controller: performance-tuned.
    pub fn complex() -> Self {
        ControlGains {
            pos_p: 0.95,
            max_vel_xy: 3.0,
            max_vel_z: 1.5,
            vel_xy: PidConfig::pid(2.6, 0.8, 0.0, 6.0, 2.0, 0.0),
            vel_z: PidConfig::pid(4.0, 2.0, 0.0, 5.0, 2.5, 0.0),
            max_tilt: 35f64.to_radians(),
            att_p: 7.0,
            max_rate: 3.5,
            max_yaw_rate: 1.5,
            rate_rp: PidConfig::pid(22.0, 18.0, 0.9, 400.0, 60.0, 40.0),
            rate_yaw: PidConfig::pid(12.0, 6.0, 0.0, 150.0, 30.0, 0.0),
        }
    }

    /// The safety controller: conservative, verified-simple behaviour.
    pub fn safety() -> Self {
        ControlGains {
            pos_p: 0.6,
            max_vel_xy: 1.0,
            max_vel_z: 0.8,
            vel_xy: PidConfig::pid(2.2, 0.6, 0.0, 3.5, 1.5, 0.0),
            vel_z: PidConfig::pid(3.0, 1.2, 0.0, 4.0, 2.0, 0.0),
            max_tilt: 20f64.to_radians(),
            att_p: 5.0,
            max_rate: 2.0,
            max_yaw_rate: 0.8,
            rate_rp: PidConfig::pid(18.0, 12.0, 0.7, 300.0, 40.0, 30.0),
            rate_yaw: PidConfig::pid(10.0, 4.0, 0.0, 120.0, 20.0, 0.0),
        }
    }
}

/// Flight mode, mirroring the paper's experiment procedure: "first flies the
/// drone to a safe height in manual mode and then switches to position
/// control mode".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlightMode {
    /// Motors off.
    #[default]
    Disarmed,
    /// Attitude stabilization; the operator supplies tilt + thrust.
    Stabilized,
    /// Full position hold at the current setpoint.
    Position,
}

/// Operator stick input for [`FlightMode::Stabilized`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StickInput {
    /// Commanded roll, rad.
    pub roll: f64,
    /// Commanded pitch, rad.
    pub pitch: f64,
    /// Commanded yaw rate, rad/s.
    pub yaw_rate: f64,
    /// Normalized collective thrust, 0–1.
    pub thrust: f64,
}

/// A position-hold target.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Setpoint {
    /// Target position, NED m.
    pub position: Vec3,
    /// Target yaw, rad.
    pub yaw: f64,
}

/// One waypoint of a mission (complex-controller feature).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waypoint {
    /// Position to reach, NED m.
    pub position: Vec3,
    /// Yaw to hold, rad.
    pub yaw: f64,
    /// Acceptance radius, m.
    pub tolerance: f64,
}

/// The assembled controller.
///
/// # Examples
///
/// ```
/// use autopilot::controller::{ControlGains, FlightController, Setpoint};
/// use uav_dynamics::math::Vec3;
/// use uav_dynamics::quad::QuadParams;
/// use sim_core::time::SimTime;
///
/// let params = QuadParams::default();
/// let mut fc = FlightController::new(&params, ControlGains::safety());
/// fc.initialize_hover(Vec3::new(0.0, 0.0, -1.0), 0.0, SimTime::ZERO);
/// fc.set_setpoint(Setpoint { position: Vec3::new(0.0, 0.0, -1.0), yaw: 0.0 });
/// let pwm = fc.run_rate_loop(SimTime::from_millis(3));
/// assert!(pwm.iter().all(|&p| (1000..=2000).contains(&p)));
/// ```
#[derive(Debug, Clone)]
pub struct FlightController {
    gains: ControlGains,
    params: QuadParams,
    mixer: Mixer,
    attitude_filter: AttitudeFilter,
    position_filter: PositionFilter,
    mode: FlightMode,
    setpoint: Setpoint,
    sticks: StickInput,
    mission: Vec<Waypoint>,
    mission_index: usize,
    vel_x: Pid,
    vel_y: Pid,
    vel_z: Pid,
    rate_x: Pid,
    rate_y: Pid,
    rate_z: Pid,
    attitude_sp: Quat,
    thrust_sp: f64,
    rate_sp: Vec3,
    last_outer: Option<SimTime>,
    last_rate: Option<SimTime>,
    last_pwm: [u16; 4],
    outer_runs: u64,
    rate_runs: u64,
}

impl FlightController {
    /// Builds a controller for the given airframe.
    pub fn new(params: &QuadParams, gains: ControlGains) -> Self {
        FlightController {
            gains,
            params: *params,
            mixer: Mixer::new(MixerConfig::from_quad(params)),
            attitude_filter: AttitudeFilter::new(AttitudeFilterConfig::default()),
            position_filter: PositionFilter::new(PositionFilterConfig::default()),
            mode: FlightMode::Disarmed,
            setpoint: Setpoint::default(),
            sticks: StickInput::default(),
            mission: Vec::new(),
            mission_index: 0,
            vel_x: Pid::new(gains.vel_xy),
            vel_y: Pid::new(gains.vel_xy),
            vel_z: Pid::new(gains.vel_z),
            rate_x: Pid::new(gains.rate_rp),
            rate_y: Pid::new(gains.rate_rp),
            rate_z: Pid::new(gains.rate_yaw),
            attitude_sp: Quat::IDENTITY,
            thrust_sp: 0.0,
            rate_sp: Vec3::ZERO,
            last_outer: None,
            last_rate: None,
            last_pwm: [1000; 4],
            outer_runs: 0,
            rate_runs: 0,
        }
    }

    /// The gains in use.
    pub fn gains(&self) -> &ControlGains {
        &self.gains
    }

    /// Current mode.
    pub fn mode(&self) -> FlightMode {
        self.mode
    }

    /// Switches mode. Entering [`FlightMode::Position`] re-centres the
    /// setpoint on the current position estimate so the vehicle holds where
    /// it is, like PX4's position mode.
    pub fn set_mode(&mut self, mode: FlightMode) {
        if mode == FlightMode::Position && self.mode != FlightMode::Position {
            let (_, _, yaw) = self.attitude_filter.attitude().to_euler();
            self.setpoint = Setpoint {
                position: self.position_filter.position(),
                yaw,
            };
        }
        self.mode = mode;
    }

    /// Sets the position-hold target.
    pub fn set_setpoint(&mut self, sp: Setpoint) {
        self.setpoint = sp;
        if self.mode == FlightMode::Disarmed {
            self.mode = FlightMode::Position;
        }
    }

    /// Current position-hold target.
    pub fn setpoint(&self) -> Setpoint {
        self.setpoint
    }

    /// Sets operator sticks (used in [`FlightMode::Stabilized`]).
    pub fn set_sticks(&mut self, sticks: StickInput) {
        self.sticks = sticks;
        if self.mode == FlightMode::Disarmed && sticks.thrust > 0.0 {
            self.mode = FlightMode::Stabilized;
        }
    }

    /// Loads a waypoint mission (complex-controller feature). The active
    /// setpoint follows the mission while in position mode.
    pub fn set_mission(&mut self, waypoints: Vec<Waypoint>) {
        self.mission = waypoints;
        self.mission_index = 0;
    }

    /// Index of the next mission waypoint (== len when complete).
    pub fn mission_progress(&self) -> usize {
        self.mission_index
    }

    /// Replaces the position-observer configuration (use
    /// [`PositionFilterConfig::for_noise`] to match the positioning
    /// source). Resets the observer state; call before
    /// [`FlightController::initialize_hover`].
    pub fn configure_position_filter(&mut self, config: PositionFilterConfig) {
        self.position_filter = PositionFilter::new(config);
    }

    /// Primes estimators and setpoint for a mid-air start at `position` —
    /// the initial condition of every figure scenario.
    pub fn initialize_hover(&mut self, position: Vec3, yaw: f64, time: SimTime) {
        self.attitude_filter
            .initialize(Quat::from_euler(0.0, 0.0, yaw), time);
        self.position_filter.initialize(position, Vec3::ZERO, time);
        self.setpoint = Setpoint { position, yaw };
        self.mode = FlightMode::Position;
        self.thrust_sp = self.params.hover_thrust();
        self.attitude_sp = Quat::from_euler(0.0, 0.0, yaw);
    }

    /// Feeds an IMU sample to the attitude filter.
    pub fn on_imu(&mut self, sample: &ImuSample) {
        self.attitude_filter.update(sample);
    }

    /// Feeds a position fix to the position filter.
    pub fn on_position_fix(&mut self, fix: &PositionFix) {
        self.position_filter.update_fix(fix);
    }

    /// Feeds a barometer sample to the position filter.
    pub fn on_baro(&mut self, sample: &BaroSample) {
        self.position_filter.update_baro(sample);
    }

    /// Current attitude estimate.
    pub fn attitude_estimate(&self) -> Quat {
        self.attitude_filter.attitude()
    }

    /// Current position estimate.
    pub fn position_estimate(&self) -> Vec3 {
        self.position_filter.position()
    }

    /// Attitude error magnitude between estimate and setpoint, rad — the
    /// signal the paper's security monitor bounds.
    pub fn attitude_error(&self) -> f64 {
        self.attitude_filter.attitude().angle_to(self.attitude_sp)
    }

    /// Number of outer-loop and rate-loop executions so far.
    pub fn run_counts(&self) -> (u64, u64) {
        (self.outer_runs, self.rate_runs)
    }

    /// Runs the outer cascade (position → velocity → attitude setpoints).
    /// Call at 250 Hz when healthy; the controller tolerates any actual rate.
    pub fn run_outer(&mut self, now: SimTime) {
        let dt = self
            .last_outer
            .map(|t| now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.004)
            .clamp(0.0, 0.1);
        self.last_outer = Some(now);
        self.outer_runs += 1;

        match self.mode {
            FlightMode::Disarmed => {
                self.thrust_sp = 0.0;
                self.rate_sp = Vec3::ZERO;
                return;
            }
            FlightMode::Stabilized => {
                self.attitude_sp = {
                    let (_, _, yaw) = self.attitude_filter.attitude().to_euler();
                    Quat::from_euler(self.sticks.roll, self.sticks.pitch, yaw)
                };
                self.thrust_sp = self.sticks.thrust * 4.0 * self.params.motor_max_thrust;
                self.update_attitude_loop(self.sticks.yaw_rate);
                return;
            }
            FlightMode::Position => {}
        }

        self.advance_mission();
        self.position_filter.predict(now);
        let pos = self.position_filter.position();
        let vel = self.position_filter.velocity();
        let g = &self.gains;

        // Position P → velocity setpoint.
        let pos_err = self.setpoint.position - pos;
        let mut vel_sp = pos_err * g.pos_p;
        let vxy = vel_sp.norm_xy();
        if vxy > g.max_vel_xy {
            let k = g.max_vel_xy / vxy;
            vel_sp.x *= k;
            vel_sp.y *= k;
        }
        vel_sp.z = vel_sp.z.clamp(-g.max_vel_z, g.max_vel_z);

        // Velocity PID → acceleration setpoint (world frame).
        let acc_sp = Vec3::new(
            self.vel_x.update(vel_sp.x, vel.x, dt),
            self.vel_y.update(vel_sp.y, vel.y, dt),
            self.vel_z.update(vel_sp.z, vel.z, dt),
        );

        // Acceleration → attitude setpoint and collective thrust. The tilt
        // demand must be expressed in the *current* yaw frame — using the
        // setpoint yaw would push in rotated directions whenever the vehicle
        // carries a yaw error (e.g. right after an uncontrolled phase),
        // which turns recovery into an outward spiral. Yaw is steered
        // separately through a rate feed-forward.
        let (_, _, yaw_now) = self.attitude_filter.attitude().to_euler();
        let (sy, cy) = yaw_now.sin_cos();
        let ax = cy * acc_sp.x + sy * acc_sp.y;
        let ay = -sy * acc_sp.x + cy * acc_sp.y;
        let pitch_sp = (-ax / GRAVITY).atan().clamp(-g.max_tilt, g.max_tilt);
        let roll_sp = (ay / GRAVITY).atan().clamp(-g.max_tilt, g.max_tilt);
        self.attitude_sp = Quat::from_euler(roll_sp, pitch_sp, yaw_now);

        let tilt_comp = (roll_sp.cos() * pitch_sp.cos()).max(0.5);
        self.thrust_sp = (self.params.mass * (GRAVITY - acc_sp.z) / tilt_comp)
            .clamp(0.0, 4.0 * self.params.motor_max_thrust);

        let yaw_err = wrap_angle(self.setpoint.yaw - yaw_now);
        let yaw_ff = (g.att_p * yaw_err).clamp(-g.max_yaw_rate, g.max_yaw_rate);
        self.update_attitude_loop(yaw_ff);
    }

    /// Attitude P: quaternion error → body rate setpoint.
    fn update_attitude_loop(&mut self, yaw_rate_ff: f64) {
        let g = &self.gains;
        let q = self.attitude_filter.attitude();
        let q_err = q.conjugate().mul_quat(self.attitude_sp).normalized();
        // Shortest rotation: flip sign if w < 0.
        let sign = if q_err.w >= 0.0 { 1.0 } else { -1.0 };
        let mut rate_sp = Vec3::new(q_err.x, q_err.y, q_err.z) * (2.0 * g.att_p * sign);
        rate_sp.x = rate_sp.x.clamp(-g.max_rate, g.max_rate);
        rate_sp.y = rate_sp.y.clamp(-g.max_rate, g.max_rate);
        rate_sp.z = (rate_sp.z + yaw_rate_ff).clamp(-g.max_yaw_rate, g.max_yaw_rate);
        self.rate_sp = rate_sp;
    }

    /// Advances the waypoint mission when the current target is reached.
    fn advance_mission(&mut self) {
        if self.mission_index >= self.mission.len() {
            return;
        }
        let wp = self.mission[self.mission_index];
        self.setpoint = Setpoint {
            position: wp.position,
            yaw: wp.yaw,
        };
        let dist = (self.position_filter.position() - wp.position).norm();
        if dist < wp.tolerance {
            self.mission_index += 1;
        }
    }

    /// Runs the inner rate loop and mixer; call at 400 Hz when healthy.
    /// Returns the PWM command for the four motors.
    pub fn run_rate_loop(&mut self, now: SimTime) -> [u16; 4] {
        let dt = self
            .last_rate
            .map(|t| now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.0025)
            .clamp(0.0, 0.1);
        self.last_rate = Some(now);
        self.rate_runs += 1;

        if self.mode == FlightMode::Disarmed {
            self.last_pwm = [1000; 4];
            return self.last_pwm;
        }

        let rates = self.attitude_filter.rates();
        let ang_acc = Vec3::new(
            self.rate_x.update(self.rate_sp.x, rates.x, dt),
            self.rate_y.update(self.rate_sp.y, rates.y, dt),
            self.rate_z.update(self.rate_sp.z, rates.z, dt),
        );
        let torque = self.params.inertia.mul_vec(ang_acc);
        let wrench = Wrench {
            thrust: self.thrust_sp,
            torque_x: torque.x,
            torque_y: torque.y,
            torque_z: torque.z,
        };
        self.last_pwm = self.mixer.mix_pwm(wrench);
        self.last_pwm
    }

    /// The PWM output of the most recent rate-loop run.
    pub fn last_pwm(&self) -> [u16; 4] {
        self.last_pwm
    }

    /// Resets transient control state (integrators, derivative history) —
    /// used when the Simplex monitor promotes the standby controller.
    pub fn reset_transients(&mut self) {
        self.vel_x.reset();
        self.vel_y.reset();
        self.vel_z.reset();
        self.rate_x.reset();
        self.rate_y.reset();
        self.rate_z.reset();
    }

    /// Yaw error (wrapped) between estimate and setpoint, rad.
    pub fn yaw_error(&self) -> f64 {
        let (_, _, yaw) = self.attitude_filter.attitude().to_euler();
        wrap_angle(self.setpoint.yaw - yaw)
    }
}
