//! PID controller with output limiting, integrator anti-windup and a
//! filtered derivative-on-measurement term.

/// PID gain/limit configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain (applied to the measurement, not the error, so
    /// setpoint steps do not kick the output).
    pub kd: f64,
    /// Symmetric output limit (the output is clamped to `±output_limit`).
    pub output_limit: f64,
    /// Symmetric integrator state limit (anti-windup clamp).
    pub integral_limit: f64,
    /// Derivative low-pass cutoff frequency, Hz (0 disables filtering).
    pub derivative_cutoff_hz: f64,
}

impl PidConfig {
    /// A proportional-only controller.
    pub fn p(kp: f64, output_limit: f64) -> Self {
        PidConfig {
            kp,
            ki: 0.0,
            kd: 0.0,
            output_limit,
            integral_limit: 0.0,
            derivative_cutoff_hz: 0.0,
        }
    }

    /// A PI controller.
    pub fn pi(kp: f64, ki: f64, output_limit: f64, integral_limit: f64) -> Self {
        PidConfig {
            kp,
            ki,
            kd: 0.0,
            output_limit,
            integral_limit,
            derivative_cutoff_hz: 0.0,
        }
    }

    /// A full PID controller with a derivative low-pass at `cutoff_hz`.
    pub fn pid(
        kp: f64,
        ki: f64,
        kd: f64,
        output_limit: f64,
        integral_limit: f64,
        cutoff_hz: f64,
    ) -> Self {
        PidConfig {
            kp,
            ki,
            kd,
            output_limit,
            integral_limit,
            derivative_cutoff_hz: cutoff_hz,
        }
    }
}

/// PID controller state.
///
/// # Examples
///
/// ```
/// use autopilot::pid::{Pid, PidConfig};
///
/// let mut pid = Pid::new(PidConfig::p(2.0, 10.0));
/// let out = pid.update(1.0, 0.0, 0.01); // setpoint 1, measurement 0
/// assert_eq!(out, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_measurement: Option<f64>,
    derivative_filtered: f64,
}

impl Pid {
    /// Creates a controller at rest.
    ///
    /// # Panics
    ///
    /// Panics if any limit is negative.
    pub fn new(config: PidConfig) -> Self {
        assert!(config.output_limit >= 0.0, "negative output limit");
        assert!(config.integral_limit >= 0.0, "negative integral limit");
        Pid {
            config,
            integral: 0.0,
            last_measurement: None,
            derivative_filtered: 0.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Runs one update with `dt` seconds since the previous call and
    /// returns the limited output.
    ///
    /// Non-positive or non-finite `dt` skips the integral/derivative update
    /// and returns the proportional response only — robust behaviour when a
    /// starved scheduler produces pathological timing.
    pub fn update(&mut self, setpoint: f64, measurement: f64, dt: f64) -> f64 {
        let c = &self.config;
        let error = setpoint - measurement;

        if !(dt.is_finite() && dt > 0.0) {
            return (c.kp * error).clamp(-c.output_limit, c.output_limit);
        }

        // Integrator with clamping anti-windup.
        self.integral =
            (self.integral + c.ki * error * dt).clamp(-c.integral_limit, c.integral_limit);

        // Derivative on measurement, optionally low-passed.
        let raw_derivative = match self.last_measurement {
            Some(prev) => (measurement - prev) / dt,
            None => 0.0,
        };
        self.last_measurement = Some(measurement);
        let derivative = if c.derivative_cutoff_hz > 0.0 {
            let alpha = {
                let rc = 1.0 / (std::f64::consts::TAU * c.derivative_cutoff_hz);
                dt / (rc + dt)
            };
            self.derivative_filtered += alpha * (raw_derivative - self.derivative_filtered);
            self.derivative_filtered
        } else {
            raw_derivative
        };

        let out = c.kp * error + self.integral - c.kd * derivative;
        out.clamp(-c.output_limit, c.output_limit)
    }

    /// Current integrator state.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Clears all internal state (used when the Simplex switch hands
    /// control to a controller that has been in standby).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_measurement = None;
        self.derivative_filtered = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_response() {
        let mut pid = Pid::new(PidConfig::p(3.0, 100.0));
        assert_eq!(pid.update(2.0, 0.5, 0.01), 4.5);
    }

    #[test]
    fn output_is_clamped() {
        let mut pid = Pid::new(PidConfig::p(10.0, 1.0));
        assert_eq!(pid.update(100.0, 0.0, 0.01), 1.0);
        assert_eq!(pid.update(-100.0, 0.0, 0.01), -1.0);
    }

    #[test]
    fn integral_accumulates_and_clamps() {
        let mut pid = Pid::new(PidConfig::pi(0.0, 1.0, 10.0, 0.5));
        for _ in 0..1000 {
            pid.update(1.0, 0.0, 0.01);
        }
        assert!(
            (pid.integral() - 0.5).abs() < 1e-12,
            "integral clamped at limit"
        );
    }

    #[test]
    fn integral_drives_out_steady_state_error() {
        // Plant: x' = u. P alone leaves droop under a constant disturbance;
        // PI must converge to the setpoint.
        let mut pid = Pid::new(PidConfig::pi(2.0, 4.0, 10.0, 5.0));
        let mut x: f64 = 0.0;
        let disturbance = -1.0;
        let dt = 0.01;
        for _ in 0..5000 {
            let u = pid.update(1.0, x, dt);
            x += (u + disturbance) * dt;
        }
        assert!((x - 1.0).abs() < 0.01, "x = {x}");
    }

    #[test]
    fn derivative_damps_oscillation() {
        // Plant: double integrator x'' = u. Pure P oscillates forever; adding
        // D must decay the oscillation.
        let run = |kd: f64| {
            let mut pid = Pid::new(PidConfig::pid(4.0, 0.0, kd, 100.0, 0.0, 0.0));
            let (mut x, mut v) = (1.0f64, 0.0f64);
            let dt = 0.001;
            let mut peak: f64 = 0.0;
            for i in 0..20_000 {
                let u = pid.update(0.0, x, dt);
                v += u * dt;
                x += v * dt;
                if i > 15_000 {
                    peak = peak.max(x.abs());
                }
            }
            peak
        };
        assert!(
            run(3.0) < 0.05,
            "damped run should settle, got {}",
            run(3.0)
        );
        assert!(run(0.0) > 0.5, "undamped run should keep oscillating");
    }

    #[test]
    fn derivative_on_measurement_ignores_setpoint_steps() {
        let mut pid = Pid::new(PidConfig::pid(0.0, 0.0, 1.0, 100.0, 0.0, 0.0));
        pid.update(0.0, 0.0, 0.01);
        // Setpoint jumps; measurement unchanged -> derivative term stays 0.
        let out = pid.update(10.0, 0.0, 0.01);
        assert_eq!(out, 0.0);
    }

    #[test]
    fn pathological_dt_falls_back_to_proportional() {
        let mut pid = Pid::new(PidConfig::pid(2.0, 1.0, 1.0, 10.0, 5.0, 0.0));
        assert_eq!(pid.update(1.0, 0.0, 0.0), 2.0);
        assert_eq!(pid.update(1.0, 0.0, f64::NAN), 2.0);
        assert_eq!(pid.integral(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidConfig::pid(1.0, 1.0, 1.0, 10.0, 5.0, 10.0));
        for _ in 0..100 {
            pid.update(1.0, 0.5, 0.01);
        }
        assert!(pid.integral() != 0.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
    }
}
