//! State estimation: a complementary attitude filter and a constant-gain
//! position/velocity observer.
//!
//! PX4 runs an EKF; for the control rates and disturbance levels in this
//! reproduction a complementary filter has the same essential property the
//! experiments rely on: estimate quality *degrades with sensor latency and
//! gaps*, because gyro integration drifts between corrections. When a DoS
//! attack starves the sensor path, the estimate — and then the vehicle —
//! degrades exactly as in the paper.

use sim_core::time::SimTime;
use uav_dynamics::math::{Quat, Vec3};
use uav_dynamics::sensors::{BaroSample, ImuSample, PositionFix};

/// Attitude filter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttitudeFilterConfig {
    /// Accelerometer correction gain (fraction of tilt error removed per
    /// second).
    pub accel_gain: f64,
    /// Magnetometer yaw correction gain, per second.
    pub mag_gain: f64,
    /// Largest IMU gap integrated as-is; beyond this the gyro integration
    /// clamps `dt` (a starved driver cannot inject a huge rotation step).
    pub max_gyro_dt: f64,
}

impl Default for AttitudeFilterConfig {
    fn default() -> Self {
        AttitudeFilterConfig {
            accel_gain: 2.0,
            mag_gain: 0.5,
            max_gyro_dt: 0.05,
        }
    }
}

/// Complementary attitude filter.
///
/// # Examples
///
/// ```
/// use autopilot::estimator::AttitudeFilter;
/// use uav_dynamics::sensors::ImuSample;
/// use uav_dynamics::math::Vec3;
/// use sim_core::time::SimTime;
///
/// let mut f = AttitudeFilter::default();
/// let sample = ImuSample {
///     time: SimTime::from_millis(4),
///     accel: Vec3::new(0.0, 0.0, -9.81),
///     ..Default::default()
/// };
/// f.update(&sample);
/// let (roll, pitch, _) = f.attitude().to_euler();
/// assert!(roll.abs() < 1e-6 && pitch.abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct AttitudeFilter {
    config: AttitudeFilterConfig,
    attitude: Quat,
    last_time: Option<SimTime>,
    last_gyro: Vec3,
}

impl Default for AttitudeFilter {
    fn default() -> Self {
        AttitudeFilter::new(AttitudeFilterConfig::default())
    }
}

impl AttitudeFilter {
    /// Creates a filter at the identity attitude.
    pub fn new(config: AttitudeFilterConfig) -> Self {
        AttitudeFilter {
            config,
            attitude: Quat::IDENTITY,
            last_time: None,
            last_gyro: Vec3::ZERO,
        }
    }

    /// Forces the filter state (scenario initialization at hover).
    pub fn initialize(&mut self, attitude: Quat, time: SimTime) {
        self.attitude = attitude;
        self.last_time = Some(time);
    }

    /// Current attitude estimate (body → world).
    pub fn attitude(&self) -> Quat {
        self.attitude
    }

    /// The most recent gyro measurement fed to the filter, rad/s.
    pub fn rates(&self) -> Vec3 {
        self.last_gyro
    }

    /// Time of the last processed sample.
    pub fn last_update(&self) -> Option<SimTime> {
        self.last_time
    }

    /// Folds one IMU sample into the estimate.
    pub fn update(&mut self, sample: &ImuSample) {
        let dt = match self.last_time {
            Some(prev) => sample.time.saturating_since(prev).as_secs_f64(),
            None => 0.0,
        };
        self.last_time = Some(sample.time);
        self.last_gyro = sample.gyro;

        // Predict: integrate gyro, clamping pathological gaps.
        let dt = dt.min(self.config.max_gyro_dt);
        if dt > 0.0 {
            self.attitude = self.attitude.integrate(sample.gyro, dt);
        }

        // Correct tilt with the accelerometer whenever it plausibly measures
        // gravity (norm close to g).
        let norm = sample.accel.norm();
        if (7.0..12.5).contains(&norm) && dt > 0.0 {
            // Gravity direction measured in body frame (specific force at
            // quasi-static flight is −g, so down is −accel).
            let down_meas = (-sample.accel).normalized();
            // Down direction predicted by the current attitude.
            let down_pred = self.attitude.rotate_inverse(Vec3::new(0.0, 0.0, 1.0));
            // Small-angle correction toward the measured down direction:
            // rotating by meas × pred shrinks the tilt error.
            let correction = down_meas.cross(down_pred) * (self.config.accel_gain * dt);
            self.attitude = self
                .attitude
                .mul_quat(Quat::new(
                    1.0,
                    correction.x / 2.0,
                    correction.y / 2.0,
                    correction.z / 2.0,
                ))
                .normalized();
        }

        // Correct yaw with the magnetometer (horizontal projection).
        if self.config.mag_gain > 0.0 && dt > 0.0 && sample.mag.norm() > 1e-6 {
            let mag_world = self.attitude.rotate(sample.mag);
            let yaw_err = -mag_world.y.atan2(mag_world.x); // field declination 0
            let correction = Vec3::new(0.0, 0.0, 1.0) * (yaw_err * self.config.mag_gain * dt);
            let body_corr = self.attitude.rotate_inverse(correction);
            self.attitude = self
                .attitude
                .mul_quat(Quat::new(
                    1.0,
                    body_corr.x / 2.0,
                    body_corr.y / 2.0,
                    body_corr.z / 2.0,
                ))
                .normalized();
        }
    }
}

/// Position observer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionFilterConfig {
    /// Fraction of position innovation absorbed per fix.
    pub position_gain: f64,
    /// Fraction of velocity innovation absorbed per fix.
    pub velocity_gain: f64,
    /// Barometer altitude fusion gain per sample (0 disables).
    pub baro_gain: f64,
}

impl Default for PositionFilterConfig {
    fn default() -> Self {
        PositionFilterConfig {
            position_gain: 0.95,
            velocity_gain: 0.95,
            baro_gain: 0.02,
        }
    }
}

impl PositionFilterConfig {
    /// Chooses observer gains for a positioning source with the given
    /// per-fix noise standard deviation (metres): near-perfect fixes
    /// (Vicon, millimetres) are absorbed almost fully; noisy fixes
    /// (consumer GNSS, decimetres) are averaged so the velocity estimate
    /// stays usable.
    ///
    /// # Examples
    ///
    /// ```
    /// use autopilot::estimator::PositionFilterConfig;
    /// let vicon = PositionFilterConfig::for_noise(0.002);
    /// let gps = PositionFilterConfig::for_noise(0.4);
    /// assert!(vicon.position_gain > gps.position_gain);
    /// ```
    pub fn for_noise(position_noise_std: f64) -> Self {
        // Smooth interpolation: full trust below 1 cm, heavy averaging
        // above half a metre. Velocity stays well-trusted — GNSS velocity
        // comes from a separate (Doppler) channel whose noise is low even
        // when the position fix wanders.
        let t = (position_noise_std.max(0.0) / 0.5).clamp(0.0, 1.0);
        PositionFilterConfig {
            position_gain: 0.95 - 0.65 * t,
            velocity_gain: 0.95 - 0.25 * t,
            baro_gain: 0.02 + 0.08 * t,
        }
    }
}

/// Constant-gain position/velocity observer fed by the positioning fixes
/// (Vicon-as-GPS) and optionally the barometer.
#[derive(Debug, Clone)]
pub struct PositionFilter {
    config: PositionFilterConfig,
    position: Vec3,
    velocity: Vec3,
    last_time: Option<SimTime>,
}

impl Default for PositionFilter {
    fn default() -> Self {
        PositionFilter::new(PositionFilterConfig::default())
    }
}

impl PositionFilter {
    /// Creates an observer at the origin.
    pub fn new(config: PositionFilterConfig) -> Self {
        PositionFilter {
            config,
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
            last_time: None,
        }
    }

    /// Forces the observer state (scenario initialization).
    pub fn initialize(&mut self, position: Vec3, velocity: Vec3, time: SimTime) {
        self.position = position;
        self.velocity = velocity;
        self.last_time = Some(time);
    }

    /// Current position estimate, NED metres.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Current velocity estimate, NED m/s.
    pub fn velocity(&self) -> Vec3 {
        self.velocity
    }

    /// Dead-reckons the state forward to `time` using the velocity estimate.
    pub fn predict(&mut self, time: SimTime) {
        if let Some(prev) = self.last_time {
            let dt = time.saturating_since(prev).as_secs_f64().min(0.5);
            self.position += self.velocity * dt;
        }
        self.last_time = Some(time);
    }

    /// Fuses a positioning fix.
    pub fn update_fix(&mut self, fix: &PositionFix) {
        self.predict(fix.time);
        self.position += (fix.position - self.position) * self.config.position_gain;
        self.velocity += (fix.velocity - self.velocity) * self.config.velocity_gain;
    }

    /// Fuses a barometric altitude.
    pub fn update_baro(&mut self, baro: &BaroSample) {
        if self.config.baro_gain > 0.0 {
            self.predict(baro.time);
            let alt_err = baro.altitude - (-self.position.z);
            self.position.z -= alt_err * self.config.baro_gain;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::Rng;
    use sim_core::time::SimDuration;
    use uav_dynamics::quad::GRAVITY;

    fn imu_at(t_ms: u64, gyro: Vec3, accel: Vec3) -> ImuSample {
        ImuSample {
            time: SimTime::from_millis(t_ms),
            gyro,
            accel,
            mag: Vec3::new(0.21, 0.0, 0.42),
        }
    }

    #[test]
    fn filter_converges_to_level_from_wrong_init() {
        let mut f = AttitudeFilter::default();
        f.initialize(Quat::from_euler(0.3, -0.2, 0.0), SimTime::ZERO);
        // Level, static vehicle: accel measures (0,0,-g).
        for i in 1..=2000u64 {
            f.update(&imu_at(i * 4, Vec3::ZERO, Vec3::new(0.0, 0.0, -GRAVITY)));
        }
        let (roll, pitch, _) = f.attitude().to_euler();
        assert!(roll.abs() < 0.01, "roll {roll}");
        assert!(pitch.abs() < 0.01, "pitch {pitch}");
    }

    #[test]
    fn gyro_integration_tracks_fast_motion() {
        let mut f = AttitudeFilter::default();
        f.initialize(Quat::IDENTITY, SimTime::ZERO);
        // Constant roll rate 1 rad/s for 0.5 s at 250 Hz; accel invalid
        // (freefall-like) so only the gyro drives the filter.
        for i in 1..=125u64 {
            f.update(&imu_at(i * 4, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO));
        }
        let (roll, _, _) = f.attitude().to_euler();
        assert!((roll - 0.5).abs() < 0.01, "roll {roll}");
    }

    #[test]
    fn sensor_gaps_degrade_attitude_tracking() {
        // The property the paper's memory-DoS experiment rests on: with the
        // same rotation, sparse samples track worse than dense ones.
        let simulate = |period_ms: u64| {
            let mut f = AttitudeFilter::default();
            f.initialize(Quat::IDENTITY, SimTime::ZERO);
            // True motion: sinusoidal roll rate, 2 Hz.
            let mut t = 0u64;
            while t < 2000 {
                t += period_ms;
                let secs = t as f64 / 1000.0;
                let rate = (std::f64::consts::TAU * 2.0 * secs).sin() * 2.0;
                f.update(&imu_at(t, Vec3::new(rate, 0.0, 0.0), Vec3::ZERO));
            }
            // True roll angle: integral of the sine.
            let secs = t as f64 / 1000.0;
            let true_roll =
                (1.0 - (std::f64::consts::TAU * 2.0 * secs).cos()) / (std::f64::consts::PI * 2.0);
            let (roll, _, _) = f.attitude().to_euler();
            (roll - true_roll).abs()
        };
        let dense = simulate(4); // 250 Hz
        let sparse = simulate(97); // ~10 Hz, aliased
        assert!(sparse > 5.0 * dense, "dense {dense}, sparse {sparse}");
    }

    #[test]
    fn noisy_hover_estimate_stays_level() {
        let mut f = AttitudeFilter::default();
        f.initialize(Quat::IDENTITY, SimTime::ZERO);
        let mut rng = Rng::seed_from(3);
        for i in 1..=5000u64 {
            let noise = Vec3::new(
                rng.normal(0.0, 0.002),
                rng.normal(0.0, 0.002),
                rng.normal(0.0, 0.002),
            );
            let accel = Vec3::new(
                rng.normal(0.0, 0.05),
                rng.normal(0.0, 0.05),
                -GRAVITY + rng.normal(0.0, 0.05),
            );
            f.update(&imu_at(i * 4, noise, accel));
        }
        let (roll, pitch, _) = f.attitude().to_euler();
        assert!(roll.abs() < 0.02 && pitch.abs() < 0.02, "{roll} {pitch}");
    }

    #[test]
    fn position_filter_tracks_constant_velocity() {
        let mut f = PositionFilter::default();
        f.initialize(Vec3::ZERO, Vec3::ZERO, SimTime::ZERO);
        // Fixes every 100 ms from a vehicle moving at 1 m/s north.
        for i in 1..=50u64 {
            let t = SimTime::from_millis(i * 100);
            f.update_fix(&PositionFix {
                time: t,
                position: Vec3::new(i as f64 * 0.1, 0.0, -1.0),
                velocity: Vec3::new(1.0, 0.0, 0.0),
                ..Default::default()
            });
        }
        assert!((f.position().x - 5.0).abs() < 0.05);
        assert!((f.velocity().x - 1.0).abs() < 0.05);
        // Dead reckoning carries the estimate between fixes.
        f.predict(SimTime::from_millis(5050));
        assert!((f.position().x - 5.05).abs() < 0.05);
    }

    #[test]
    fn baro_pulls_altitude() {
        let mut f = PositionFilter::new(PositionFilterConfig {
            baro_gain: 0.5,
            ..Default::default()
        });
        f.initialize(Vec3::new(0.0, 0.0, -1.0), Vec3::ZERO, SimTime::ZERO);
        for i in 1..=40u64 {
            f.update_baro(&BaroSample {
                time: SimTime::from_millis(i * 20),
                altitude: 2.0,
                ..Default::default()
            });
        }
        assert!(
            (-f.position().z - 2.0).abs() < 0.05,
            "alt {}",
            -f.position().z
        );
    }

    #[test]
    fn predict_clamps_huge_gaps() {
        let mut f = PositionFilter::default();
        f.initialize(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), SimTime::ZERO);
        f.predict(SimTime::ZERO + SimDuration::from_secs(100));
        // A 100 s outage dead-reckons at most 0.5 s worth of motion.
        assert!(f.position().x <= 5.0 + 1e-9);
    }
}
