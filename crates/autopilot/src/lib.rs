//! PX4-like flight control stack for the ContainerDrone reproduction.
//!
//! The paper runs the PX4 autopilot in both control environments (§IV-C).
//! This crate provides the equivalent control stack:
//!
//! * [`pid`] — limited, anti-windup PID primitive,
//! * [`estimator`] — complementary attitude filter + position observer
//!   (estimate quality degrades with sensor gaps, the property the paper's
//!   memory-DoS experiment rests on),
//! * [`mixer`] — Quad-X control allocation with desaturation,
//! * [`controller`] — the cascaded [`controller::FlightController`], with
//!   [`controller::ControlGains::complex`] and
//!   [`controller::ControlGains::safety`] presets corresponding to the
//!   paper's complex and safety controllers.
//!
//! # Examples
//!
//! ```
//! use autopilot::prelude::*;
//! use uav_dynamics::math::Vec3;
//! use uav_dynamics::quad::QuadParams;
//! use sim_core::time::SimTime;
//!
//! let params = QuadParams::default();
//! let mut fc = FlightController::new(&params, ControlGains::complex());
//! fc.initialize_hover(Vec3::new(0.0, 0.0, -1.0), 0.0, SimTime::ZERO);
//! fc.run_outer(SimTime::from_millis(4));
//! let pwm = fc.run_rate_loop(SimTime::from_millis(5));
//! assert!(pwm.iter().all(|&p| p >= 1000));
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod estimator;
pub mod mixer;
pub mod pid;

pub use controller::{ControlGains, FlightController, FlightMode, Setpoint, StickInput, Waypoint};
pub use estimator::{AttitudeFilter, AttitudeFilterConfig, PositionFilter, PositionFilterConfig};
pub use mixer::{Mixer, MixerConfig, Wrench};
pub use pid::{Pid, PidConfig};

/// Convenient glob import of the autopilot types.
pub mod prelude {
    pub use crate::controller::{
        ControlGains, FlightController, FlightMode, Setpoint, StickInput, Waypoint,
    };
    pub use crate::estimator::{AttitudeFilter, PositionFilter};
    pub use crate::mixer::{Mixer, MixerConfig, Wrench};
    pub use crate::pid::{Pid, PidConfig};
}
