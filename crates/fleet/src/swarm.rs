//! Vehicle-to-vehicle swarm coordination streams — the second DoS
//! surface the airspace carries.
//!
//! Real swarms do not only talk to a ground station: vehicles broadcast
//! their position to formation neighbors so each can hold separation.
//! [`SwarmLink`] wires radio↔radio links on a [`SwarmTopology`] (ring or
//! mesh), binds one coordination port per radio, and exchanges periodic
//! neighbor-position datagrams at the fleet's poll boundaries — the same
//! deterministic merge point as the GCS downlink, so the sharded executor
//! stays byte-identical at any thread count.
//!
//! The stream is also an *attack surface*: a hostile airspace peer that
//! floods a radio's swarm port
//! ([`FleetTarget::SwarmJam`](attacks::fleet::FleetTarget)) pressures
//! the port's ingress budget. The per-port token bucket bounds what the
//! jammer lands — genuine neighbor broadcasts arrive early in each
//! refill window and survive — and the per-vehicle [`SwarmView`] makes
//! the pressure measurable (received vs jam-dropped vs garbage).
//!
//! Broadcast emission is quantised to poll boundaries: a poll tick emits
//! at most one broadcast round, so effective rates above the GCS poll
//! rate clamp to it. That quantisation is what keeps the V2V traffic on
//! the coordinating thread — and therefore independent of sharding.

use sim_core::time::{SimDuration, SimTime};
use virt_net::net::{Addr, LinkConfig, Network, NsId, SocketId};

use crate::airspace::Airspace;
use crate::gcs::{decode_telemetry, encode_telemetry, VehicleSnapshot};

/// Port bound on every radio namespace for incoming V2V broadcasts.
pub const SWARM_RX_PORT: u16 = 9_060;

/// Port bound on every radio namespace for outgoing V2V broadcasts.
pub const SWARM_TX_PORT: u16 = 9_061;

/// Which neighbors each vehicle exchanges coordination traffic with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwarmTopology {
    /// Each vehicle talks to its two ring neighbors (`i ± 1 mod N`).
    Ring,
    /// Each vehicle talks to the `degree` nearest indices on each side
    /// (`Mesh { degree: 1 }` is the ring).
    Mesh {
        /// Neighbor reach on each side of the index ring.
        degree: usize,
    },
}

impl SwarmTopology {
    /// Vehicle `i`'s neighbor set in an `n`-vehicle fleet: sorted,
    /// deduplicated, never containing `i` itself.
    pub fn neighbors(self, i: usize, n: usize) -> Vec<usize> {
        let degree = match self {
            SwarmTopology::Ring => 1,
            SwarmTopology::Mesh { degree } => degree,
        };
        let mut out = Vec::new();
        for d in 1..=degree {
            if d >= n {
                break;
            }
            out.push((i + d) % n);
            out.push((i + n - d) % n);
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&j| j != i);
        out
    }
}

/// Swarm coordination-stream configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmConfig {
    /// Neighbor topology.
    pub topology: SwarmTopology,
    /// Broadcast rate per vehicle, Hz (quantised to GCS poll boundaries;
    /// rates above the poll rate clamp to it).
    pub broadcast_hz: f64,
    /// Ingress rate limit per swarm rx port, packets/s (0 disables) —
    /// the defence that bounds a jammer's impact.
    pub per_port_pps: f64,
    /// Burst allowance of the per-port limit, packets.
    pub per_port_burst: f64,
    /// Radio↔radio V2V link characteristics.
    pub link: LinkConfig,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            topology: SwarmTopology::Ring,
            broadcast_hz: 10.0,
            per_port_pps: 100.0,
            per_port_burst: 20.0,
            // The V2V radio: same class of medium as the GCS uplink.
            link: LinkConfig {
                latency: SimDuration::from_millis(2),
                bandwidth: 2.0e6,
                queue_capacity: 64,
            },
        }
    }
}

/// Last reported position + report time of one tracked neighbor.
type NeighborTrack = Option<([f64; 3], SimTime)>;

/// What one vehicle's radio learned from the coordination stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwarmView {
    /// Valid neighbor broadcasts received.
    pub rx_msgs: u64,
    /// Datagrams on the swarm port that failed to decode or claimed a
    /// non-neighbor sender — jam garbage that got past the rate limit.
    pub rx_garbage: u64,
    /// Datagrams dropped at the swarm port by the ingress rate limit or
    /// receive-queue overflow — the jammer's measurable footprint.
    pub dropped_jam: u64,
    /// Send timestamp of the freshest neighbor broadcast received.
    pub last_heard: Option<SimTime>,
    /// Smallest distance (m) between this vehicle and a neighbor's
    /// reported position, over the whole flight — the separation metric
    /// the coordination stream exists to maintain.
    pub min_separation: Option<f64>,
}

/// The fleet's V2V coordination fabric: per-radio sockets, neighbor
/// tables, and the per-vehicle views.
#[derive(Debug)]
pub struct SwarmLink {
    rx: Vec<SocketId>,
    tx: Vec<SocketId>,
    /// Radio namespace per vehicle (broadcast destinations).
    radios: Vec<NsId>,
    /// Out-neighbors per vehicle (symmetric, sorted).
    neighbors: Vec<Vec<usize>>,
    views: Vec<SwarmView>,
    /// Per (vehicle, in-neighbor slot) track — slot k of vehicle i
    /// tracks `neighbors[i][k]`.
    tracked: Vec<Vec<NeighborTrack>>,
    next_tick: SimTime,
    period: SimDuration,
}

impl SwarmLink {
    /// Wires the V2V topology into the airspace (radio↔radio links in
    /// `(i, j)` order with `i < j`) and binds the coordination ports.
    pub fn build(air: &mut Airspace, cfg: &SwarmConfig) -> Self {
        let n = air.n_vehicles();
        let neighbors: Vec<Vec<usize>> = (0..n).map(|i| cfg.topology.neighbors(i, n)).collect();
        for (i, nbrs) in neighbors.iter().enumerate() {
            for &j in nbrs {
                if i < j {
                    air.connect_radios(i, j, cfg.link);
                }
            }
        }
        let mut rx = Vec::with_capacity(n);
        let mut tx = Vec::with_capacity(n);
        for i in 0..n {
            let radio = air.radio(i);
            let net = air.net_mut();
            let sock = net.bind(radio, SWARM_RX_PORT).expect("swarm rx port free");
            if cfg.per_port_pps > 0.0 {
                net.add_rate_limit(
                    Addr {
                        ns: radio,
                        port: SWARM_RX_PORT,
                    },
                    cfg.per_port_pps,
                    cfg.per_port_burst,
                );
            }
            rx.push(sock);
            tx.push(net.bind(radio, SWARM_TX_PORT).expect("swarm tx port free"));
        }
        SwarmLink {
            rx,
            tx,
            radios: air.radios().to_vec(),
            tracked: neighbors.iter().map(|n| vec![None; n.len()]).collect(),
            neighbors,
            views: vec![SwarmView::default(); n],
            next_tick: SimTime::ZERO,
            period: SimDuration::from_hz(cfg.broadcast_hz),
        }
    }

    /// Vehicle `i`'s neighbor set.
    pub fn neighbors_of(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Current per-vehicle views.
    pub fn views(&self) -> &[SwarmView] {
        &self.views
    }

    /// Emits one broadcast round if due: every still-flying vehicle, in
    /// vehicle-index order, sends its position snapshot to each neighbor
    /// (sorted order). Called at poll boundaries on the coordinating
    /// thread — the deterministic merge point.
    pub fn exchange(&mut self, net: &mut Network, fleet: &[VehicleSnapshot], now: SimTime) {
        if now < self.next_tick {
            return;
        }
        while self.next_tick <= now {
            self.next_tick += self.period;
        }
        for (i, snapshot) in fleet.iter().enumerate() {
            if snapshot.done {
                continue;
            }
            for &j in &self.neighbors[i] {
                let mut buf = net.take_buf();
                encode_telemetry(&mut buf, i as u16, snapshot.crashed, snapshot.position);
                let dst = Addr {
                    ns: self.radios[j],
                    port: SWARM_RX_PORT,
                };
                let _ = net.send(self.tx[i], dst, buf, now);
            }
        }
    }

    /// Drains every swarm port (vehicle-index order), updating neighbor
    /// tables and separation statistics against the current snapshots.
    // An index loop, not an iterator chain: the body needs disjoint
    // `&mut` access to views/tracked while reading neighbors/rx.
    #[allow(clippy::needless_range_loop)]
    pub fn drain(&mut self, net: &mut Network, fleet: &[VehicleSnapshot]) {
        for i in 0..self.rx.len() {
            while let Some(pkt) = net.recv(self.rx[i]) {
                let decoded = decode_telemetry(&pkt.payload);
                // A packet counts only when it decodes *and* self-identifies
                // as a configured neighbor; a single position() scan decides
                // both, leaving no panic path on the hostile port.
                let slot = decoded.and_then(|(sender, _, _)| {
                    self.neighbors[i].iter().position(|&j| j == sender as usize)
                });
                match (decoded, slot) {
                    (Some((_sender, _crashed, position)), Some(slot)) => {
                        let view = &mut self.views[i];
                        view.rx_msgs += 1;
                        view.last_heard = Some(pkt.sent);
                        self.tracked[i][slot] = Some((position, pkt.sent));
                        let own = fleet[i].position;
                        let d2 = (own[0] - position[0]).powi(2)
                            + (own[1] - position[1]).powi(2)
                            + (own[2] - position[2]).powi(2);
                        let dist = d2.sqrt();
                        view.min_separation = Some(match view.min_separation {
                            Some(m) => m.min(dist),
                            None => dist,
                        });
                    }
                    _ => self.views[i].rx_garbage += 1,
                }
                net.recycle(pkt);
            }
        }
    }

    /// Last tracked position report from `neighbor` as seen by `vehicle`,
    /// if any broadcast has been heard.
    pub fn tracked_position(&self, vehicle: usize, neighbor: usize) -> Option<([f64; 3], SimTime)> {
        let slot = self.neighbors[vehicle]
            .iter()
            .position(|&j| j == neighbor)?;
        self.tracked[vehicle][slot]
    }

    /// Live (mid-run) jam footprint on vehicle `i`'s swarm port: ingress
    /// rate-limit drops plus receive-queue overflow, read off the same
    /// socket counters [`SwarmLink::finish`] folds into the final views.
    pub fn jam_dropped_so_far(&self, net: &Network, i: usize) -> u64 {
        let stats = net.socket_stats(self.rx[i]);
        stats.dropped_ratelimit + stats.dropped_overflow
    }

    /// Tears the swarm fabric down into its final views, folding in the
    /// per-port drop counters (rate limit + overflow = jam footprint).
    pub fn finish(mut self, net: &Network) -> Vec<SwarmView> {
        for (view, &sock) in self.views.iter_mut().zip(&self.rx) {
            let stats = net.socket_stats(sock);
            view.dropped_jam = stats.dropped_ratelimit + stats.dropped_overflow;
        }
        self.views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbors_wrap_and_dedup() {
        assert_eq!(SwarmTopology::Ring.neighbors(0, 5), vec![1, 4]);
        assert_eq!(SwarmTopology::Ring.neighbors(4, 5), vec![0, 3]);
        assert_eq!(SwarmTopology::Ring.neighbors(0, 2), vec![1]);
        assert!(SwarmTopology::Ring.neighbors(0, 1).is_empty());
    }

    #[test]
    fn mesh_degree_widens_the_neighborhood() {
        let mesh = SwarmTopology::Mesh { degree: 2 };
        assert_eq!(mesh.neighbors(0, 6), vec![1, 2, 4, 5]);
        assert_eq!(mesh.neighbors(3, 6), vec![1, 2, 4, 5]);
        // Degree ≥ N/2 saturates into the full graph minus self.
        let full = SwarmTopology::Mesh { degree: 10 };
        assert_eq!(full.neighbors(1, 4), vec![0, 2, 3]);
    }

    #[test]
    fn exchange_routes_broadcasts_to_ring_neighbors_only() {
        let mut air = Airspace::build(4, LinkConfig::default());
        let mut swarm = SwarmLink::build(&mut air, &SwarmConfig::default());
        assert!(air.net().connected(air.radio(0), air.radio(1)));
        assert!(!air.net().connected(air.radio(0), air.radio(2)));

        let snaps: Vec<VehicleSnapshot> = (0..4)
            .map(|i| VehicleSnapshot {
                done: false,
                crashed: false,
                position: [i as f64, 0.0, -1.0],
            })
            .collect();
        let t = SimTime::from_millis(100);
        swarm.exchange(air.net_mut(), &snaps, t);
        air.net_mut().step(t + SimDuration::from_millis(10));
        swarm.drain(air.net_mut(), &snaps);

        for i in 0..4 {
            let view = swarm.views()[i];
            assert_eq!(view.rx_msgs, 2, "vehicle {i} heard both ring neighbors");
            assert_eq!(view.rx_garbage, 0);
            assert_eq!(view.last_heard, Some(t));
            // Ring distance 1 (neighbor i±1) except across the 0↔3 wrap.
            let sep = view.min_separation.expect("separation tracked");
            assert!((sep - 1.0).abs() < 1e-9, "vehicle {i} min sep {sep}");
        }
        let (pos, at) = swarm.tracked_position(1, 2).expect("1 tracked 2");
        assert_eq!(pos, [2.0, 0.0, -1.0]);
        assert_eq!(at, t);
        assert_eq!(swarm.tracked_position(0, 2), None, "not a neighbor");
    }

    #[test]
    fn finished_vehicles_stop_broadcasting() {
        let mut air = Airspace::build(3, LinkConfig::default());
        let mut swarm = SwarmLink::build(&mut air, &SwarmConfig::default());
        let mut snaps = vec![VehicleSnapshot::default(); 3];
        snaps[1].done = true;
        let t = SimTime::from_millis(100);
        swarm.exchange(air.net_mut(), &snaps, t);
        air.net_mut().step(t + SimDuration::from_millis(10));
        swarm.drain(air.net_mut(), &snaps);
        assert_eq!(swarm.views()[0].rx_msgs, 1, "only vehicle 2 broadcast");
        assert_eq!(swarm.views()[1].rx_msgs, 2, "the silent one still hears");
    }

    #[test]
    fn broadcast_rate_is_quantised_to_the_tick_clock() {
        let mut air = Airspace::build(2, LinkConfig::default());
        let cfg = SwarmConfig {
            broadcast_hz: 5.0, // 200 ms period against 100 ms poll ticks
            ..SwarmConfig::default()
        };
        let mut swarm = SwarmLink::build(&mut air, &cfg);
        let snaps = vec![VehicleSnapshot::default(); 2];
        let mut sent_rounds = 0u32;
        for tick in 0..10u64 {
            let t = SimTime::from_millis(tick * 100);
            let before = air.net().packets_sent();
            swarm.exchange(air.net_mut(), &snaps, t);
            if air.net().packets_sent() > before {
                sent_rounds += 1;
            }
        }
        assert_eq!(sent_rounds, 5, "every other 100 ms tick broadcasts");
    }
}
