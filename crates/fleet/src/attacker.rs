//! External attacker nodes: hostile peers that are not onboard any
//! vehicle.
//!
//! The paper's attacker lives *inside* a victim's container; swarm-scale
//! threat models add adversaries that merely stand inside radio range —
//! a ground transmitter flooding a vehicle's telemetry port on the GCS
//! ([`FleetTarget::GcsUplink`](attacks::fleet::FleetTarget)) or jamming
//! its V2V coordination port
//! ([`FleetTarget::SwarmJam`](attacks::fleet::FleetTarget)). An
//! [`AttackerNode`] is such a peer: a namespace that
//! [joined](crate::airspace::Airspace::join_peer) the airspace with
//! routed links to the GCS and into radio range of the whole formation,
//! plus its own machine hosting the flooder processes.
//!
//! Armed attacks are the existing [`AttackDriver`] machinery: each
//! compiled [`AttackerEntry`] arms into a boxed driver stepped
//! generically, and `CeaseFire` entries halt the drivers aimed at their
//! target (an external attacker aims its cease-fire — unlike the
//! per-vehicle timelines, where a cease-fire silences the whole vehicle).
//!
//! Emission is quantised to the fleet's poll boundaries — the
//! coordinating thread's merge point — so attacker traffic, like the GCS
//! downlink and the swarm streams, is byte-identical at any thread count
//! and under any shard partition. A 20 kpps flood therefore arrives as
//! poll-period bursts whose arrivals the link serialiser spreads, not as
//! per-quantum trickle; a driver's first burst covers only the time
//! since its scheduled onset (never the span before it), and an attack
//! window shorter than one poll period may round down to nothing — the
//! quantisation floor.

use attacks::driver::AttackDriver;
use attacks::fleet::{AttackerEntry, AttackerTarget};
use attacks::script::AttackEvent;
use attacks::udp_flood::{shared_flood_payload, FloodEmitter};
use rt_sched::machine::{Machine, MachineConfig};
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::{Addr, LinkConfig, Network, NsId};

use crate::airspace::Airspace;
use crate::gcs::GCS_PORT_BASE;
use crate::swarm::SWARM_RX_PORT;

/// First source port an attacker node binds flooder sockets on.
pub const ATTACKER_SRC_PORT_BASE: u16 = 4_000;

/// External-attacker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerConfig {
    /// Number of hostile namespaces to spawn (entries are assigned to
    /// node `victim % nodes`, so a flood and the cease-fire that ends it
    /// always land on the same node). Nodes without entries are not
    /// created.
    pub nodes: usize,
    /// The hostile transmitter's link characteristics into the airspace
    /// (same link to the GCS and to every radio). Deliberately beefier
    /// than a telemetry radio: a directional high-power flood rig.
    pub link: LinkConfig,
}

impl Default for AttackerConfig {
    fn default() -> Self {
        AttackerConfig {
            nodes: 1,
            link: LinkConfig {
                latency: SimDuration::from_millis(2),
                bandwidth: 10.0e6,
                queue_capacity: 4096,
            },
        }
    }
}

/// An armed external flood: the off-board counterpart of
/// [`attacks::udp_flood::FloodDriver`], sharing its emission kernel
/// ([`FloodEmitter`]). No victim container hosts it, so there is no
/// flooder task to kill — the process lives on the attacker's own
/// machine and `halt` just silences the emitter.
#[derive(Debug)]
struct ExternalFlood {
    name: &'static str,
    emitter: FloodEmitter,
}

impl AttackDriver for ExternalFlood {
    fn name(&self) -> &'static str {
        self.name
    }

    fn step(&mut self, net: &mut Network, now: SimTime, dt: SimDuration) {
        self.emitter.step(net, now, dt);
    }

    fn halt(&mut self, _machine: &mut Machine) {
        self.emitter.stop();
    }

    fn packets_sent(&self) -> u64 {
        self.emitter.sent()
    }
}

/// One hostile peer in the airspace, driving its compiled attack
/// timeline against GCS uplinks and swarm ports.
#[derive(Debug)]
pub struct AttackerNode {
    ns: NsId,
    /// The attacker's own computer — hosts the flooder processes and
    /// receives the `halt` calls of the driver machinery.
    machine: Machine,
    gcs_ns: NsId,
    radios: Vec<NsId>,
    entries: Vec<AttackerEntry>,
    cursor: usize,
    armed: Vec<(AttackerTarget, Box<dyn AttackDriver>)>,
    log: Vec<(SimTime, &'static str)>,
    last_tick: SimTime,
    next_src_port: u16,
}

impl AttackerNode {
    /// Joins the airspace as `attacker-<index>`: routed links to the GCS
    /// and to every radio in the formation (a jam target may be any
    /// vehicle), carrying the compiled entries for this node.
    pub fn build(
        air: &mut Airspace,
        index: usize,
        entries: Vec<AttackerEntry>,
        cfg: &AttackerConfig,
    ) -> Self {
        let radio_range: Vec<(usize, LinkConfig)> =
            (0..air.n_vehicles()).map(|i| (i, cfg.link)).collect();
        let ns = air.join_peer(format!("attacker-{index}"), Some(cfg.link), radio_range);
        AttackerNode {
            ns,
            machine: Machine::new(MachineConfig::default()),
            gcs_ns: air.gcs_ns(),
            radios: air.radios().to_vec(),
            entries,
            cursor: 0,
            armed: Vec::new(),
            log: Vec::new(),
            last_tick: SimTime::ZERO,
            next_src_port: ATTACKER_SRC_PORT_BASE,
        }
    }

    /// The attacker's namespace in the airspace.
    pub fn netns(&self) -> NsId {
        self.ns
    }

    /// `(time, driver name)` pairs for every armed event so far.
    pub fn log(&self) -> &[(SimTime, &'static str)] {
        &self.log
    }

    /// Datagrams this node has offered to the airspace.
    pub fn packets_sent(&self) -> u64 {
        self.armed.iter().map(|(_, d)| d.packets_sent()).sum()
    }

    // The hostile-timeline execution path: entries come from campaign
    // scripts, so structural surprises must be booked errors or carry a
    // proof, never an unchecked panic.
    // cd-lint: deny(panic_paths)
    fn resolve(&self, target: AttackerTarget) -> Addr {
        match target {
            AttackerTarget::GcsUplink(v) => Addr {
                ns: self.gcs_ns,
                port: GCS_PORT_BASE + v as u16,
            },
            AttackerTarget::SwarmJam(v) => Addr {
                // cd-lint: allow(panic_paths) -- compile_attackers wraps v modulo the fleet size, so it indexes in range
                ns: self.radios[v],
                port: SWARM_RX_PORT,
            },
        }
    }

    /// One attacker turn at a poll boundary: arms every entry whose onset
    /// has passed, then steps the armed drivers — pre-existing drivers
    /// with the elapsed time since the previous turn, drivers armed
    /// *this* turn with only the time since their scheduled onset, so an
    /// attack never back-fills load for the span before its window
    /// opened. Deterministic for any executor: turns happen only on the
    /// coordinating thread at poll ticks.
    pub fn tick(&mut self, net: &mut Network, now: SimTime) {
        let prev = self.last_tick;
        self.last_tick = now;
        let armed_before = self.armed.len();
        let mut onsets = Vec::new();
        while let Some(entry) = self.entries.get(self.cursor) {
            if entry.at > now {
                break;
            }
            self.cursor += 1;
            match &entry.event {
                AttackEvent::UdpFlood(flood) => {
                    let socket = net
                        .bind(self.ns, self.next_src_port)
                        // cd-lint: allow(panic_paths) -- ports ascend from ATTACKER_SRC_PORT_BASE in the attacker's own namespace, so the bind cannot collide
                        .expect("attacker source port free");
                    self.next_src_port += 1;
                    let name = match entry.target {
                        AttackerTarget::GcsUplink(_) => "gcs-uplink-flood",
                        AttackerTarget::SwarmJam(_) => "swarm-jam",
                    };
                    let driver = ExternalFlood {
                        name,
                        emitter: FloodEmitter::new(
                            socket,
                            self.resolve(entry.target),
                            flood.pps,
                            shared_flood_payload(flood.payload),
                        ),
                    };
                    self.log.push((now, name));
                    self.armed.push((entry.target, Box::new(driver)));
                    onsets.push(entry.at);
                }
                AttackEvent::CeaseFire => {
                    self.log.push((now, "cease-fire"));
                    for (target, driver) in &mut self.armed {
                        if *target == entry.target {
                            driver.halt(&mut self.machine);
                        }
                    }
                }
                // cd-lint: allow(panic_paths) -- compile_attackers asserts every attacker entry is a flood or cease-fire
                other => unreachable!(
                    "compile_attackers admits only network events, got {}",
                    other.name()
                ),
            }
        }
        let dt = now.saturating_since(prev);
        // Entries armed this turn sit after `armed_before` and pushed one
        // onset each, so the zip below pairs them exactly.
        let (existing, fresh) = self.armed.split_at_mut(armed_before);
        for (_, driver) in existing {
            driver.step(net, now, dt);
        }
        for ((_, driver), onset) in fresh.iter_mut().zip(&onsets) {
            // Armed this turn: emit only from its onset (clamped to
            // the turn window), not from the previous tick.
            driver.step(net, now, now.saturating_since((*onset).max(prev)));
        }
    }
    // cd-lint: end(panic_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacks::fleet::{FleetScript, FleetTarget};
    use attacks::udp_flood::UdpFlood;
    use sim_core::time::SimTime;

    fn jam_script(at: u64, target: FleetTarget) -> Vec<AttackerEntry> {
        FleetScript::new()
            .at(
                SimTime::from_secs(at),
                target,
                AttackEvent::UdpFlood(UdpFlood {
                    pps: 1_000.0,
                    payload: 64,
                    target_port: 0, // ignored: the fleet target picks the port
                }),
            )
            .compile_attackers(3)
    }

    #[test]
    fn attacker_floods_the_gcs_uplink_port() {
        let mut air = Airspace::build(3, LinkConfig::default());
        let gcs_ns = air.gcs_ns();
        let gcs_rx = air.net_mut().bind(gcs_ns, GCS_PORT_BASE + 1).unwrap();
        let entries = jam_script(1, FleetTarget::GcsUplink(1));
        let mut node = AttackerNode::build(&mut air, 0, entries, &AttackerConfig::default());
        assert_eq!(air.net().namespace_name(node.netns()), "attacker-0");

        // Before onset: silent.
        node.tick(air.net_mut(), SimTime::from_millis(500));
        assert_eq!(node.packets_sent(), 0);
        // The arm tick lands exactly on the onset, so it emits nothing —
        // a flood never back-fills the span before its window opened.
        node.tick(air.net_mut(), SimTime::from_secs(1));
        assert_eq!(node.packets_sent(), 0, "pre-onset back-fill");
        // Each following 500 ms turn delivers its 1000 pps share.
        node.tick(air.net_mut(), SimTime::from_millis(1500));
        node.tick(air.net_mut(), SimTime::from_secs(2));
        assert_eq!(node.packets_sent(), 1000);
        air.net_mut().step(SimTime::from_secs(2));
        assert!(air.net().socket_stats(gcs_rx).delivered > 0);
        assert_eq!(node.log().len(), 1);
        assert_eq!(node.log()[0].1, "gcs-uplink-flood");
    }

    #[test]
    fn cease_fire_halts_only_its_target() {
        let mut air = Airspace::build(3, LinkConfig::default());
        let entries = FleetScript::new()
            .at(
                SimTime::from_secs(1),
                FleetTarget::GcsUplink(0),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            )
            .at(
                SimTime::from_secs(1),
                FleetTarget::SwarmJam(2),
                AttackEvent::UdpFlood(UdpFlood::against_motor_port()),
            )
            .at(
                SimTime::from_secs(2),
                FleetTarget::GcsUplink(0),
                AttackEvent::CeaseFire,
            )
            .compile_attackers(3);
        let mut node = AttackerNode::build(&mut air, 0, entries, &AttackerConfig::default());
        node.tick(air.net_mut(), SimTime::from_secs(1)); // arms both, no back-fill
        node.tick(air.net_mut(), SimTime::from_millis(1500));
        let after_first = node.packets_sent();
        assert!(after_first > 0, "both floods armed and emitted");
        // The cease-fire kills the uplink flood; the jam keeps emitting.
        node.tick(air.net_mut(), SimTime::from_secs(2));
        let uplink_then = node.armed[0].1.packets_sent();
        let jam_then = node.armed[1].1.packets_sent();
        node.tick(air.net_mut(), SimTime::from_secs(3));
        assert_eq!(node.armed[0].1.packets_sent(), uplink_then, "halted");
        assert!(node.armed[1].1.packets_sent() > jam_then, "still jamming");
    }
}
