//! The shared airspace as a first-class topology: the radio medium every
//! cross-vehicle datagram crosses.
//!
//! PR 4 split the fleet's traffic into per-vehicle **bridge** networks
//! plus one shared **airspace** network, but the airspace itself was
//! hard-wired inside the ground station: exactly one GCS namespace and
//! one `radio-<i>` namespace per vehicle. [`Airspace`] generalises that
//! into an adversarial network — a topology *owner* that any peer can
//! join:
//!
//! * the ground station binds its telemetry ports against radios the
//!   airspace created (not ones it owns privately);
//! * [`SwarmLink`](crate::swarm::SwarmLink) wires radio↔radio V2V links
//!   on a ring/mesh topology and binds coordination ports on the radios;
//! * [`AttackerNode`](crate::attacker::AttackerNode)s join as *hostile*
//!   peer namespaces with routed links to the GCS and into radio range of
//!   the formation.
//!
//! Everything the airspace carries is merged on the coordinating thread
//! in stable vehicle-index order, which is why the sharded executor stays
//! byte-identical at any thread count no matter how many tenants join.

use virt_net::net::{LinkConfig, Network, NsId};

/// The shared radio-medium network plus its topology registry.
#[derive(Debug)]
pub struct Airspace {
    net: Network,
    gcs_ns: NsId,
    radios: Vec<NsId>,
}

impl Airspace {
    /// Builds the base airspace for `n_vehicles`: the GCS namespace and
    /// one `radio-<i>` namespace per vehicle, each with a telemetry
    /// uplink to the GCS of the given characteristics.
    ///
    /// Namespace and link creation order is pinned (GCS first, then the
    /// radios in vehicle-index order) — ids feed the deterministic
    /// per-packet routing, so the order is part of the byte-identical
    /// contract.
    pub fn build(n_vehicles: usize, uplink: LinkConfig) -> Self {
        let mut net = Network::new();
        let gcs_ns = net.add_namespace("gcs");
        let radios = (0..n_vehicles)
            .map(|i| {
                let radio = net.add_namespace(format!("radio-{i}"));
                net.connect(radio, gcs_ns, uplink);
                radio
            })
            .collect();
        Airspace {
            net,
            gcs_ns,
            radios,
        }
    }

    /// The underlying network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The underlying network, mutably.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Consumes the airspace into its network (fleet teardown).
    pub fn into_net(self) -> Network {
        self.net
    }

    /// The ground station's namespace.
    pub fn gcs_ns(&self) -> NsId {
        self.gcs_ns
    }

    /// Every vehicle's radio namespace, in vehicle-index order.
    pub fn radios(&self) -> &[NsId] {
        &self.radios
    }

    /// Vehicle `i`'s radio namespace.
    pub fn radio(&self, i: usize) -> NsId {
        self.radios[i]
    }

    /// Number of vehicles the airspace was built for.
    pub fn n_vehicles(&self) -> usize {
        self.radios.len()
    }

    /// Adds a V2V link between two vehicles' radios (swarm topologies).
    /// A duplicate connection is inert, as [`Network::connect`] defines.
    pub fn connect_radios(&mut self, i: usize, j: usize, link: LinkConfig) {
        let (a, b) = (self.radios[i], self.radios[j]);
        self.net.connect(a, b, link);
    }

    /// Admits an arbitrary peer namespace into the airspace with routed
    /// links to the GCS (when `gcs_link` is given) and to every radio in
    /// `radio_range` — the generalised join that attacker nodes (or any
    /// future tenant: relays, decoys, observers) use.
    pub fn join_peer(
        &mut self,
        name: impl Into<String>,
        gcs_link: Option<LinkConfig>,
        radio_range: impl IntoIterator<Item = (usize, LinkConfig)>,
    ) -> NsId {
        let ns = self.net.add_namespace(name);
        if let Some(link) = gcs_link {
            self.net.connect(ns, self.gcs_ns, link);
        }
        for (i, link) in radio_range {
            self.net.connect(ns, self.radios[i], link);
        }
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_airspace_matches_the_classic_topology() {
        let air = Airspace::build(3, LinkConfig::default());
        assert_eq!(air.n_vehicles(), 3);
        assert_eq!(air.net().namespace_count(), 4);
        assert_eq!(air.net().namespace_name(air.gcs_ns()), "gcs");
        for i in 0..3 {
            assert_eq!(air.net().namespace_name(air.radio(i)), format!("radio-{i}"));
            assert!(air.net().connected(air.radio(i), air.gcs_ns()));
        }
        assert!(!air.net().connected(air.radio(0), air.radio(1)));
    }

    #[test]
    fn peers_join_with_routed_links() {
        let mut air = Airspace::build(4, LinkConfig::default());
        let hostile = air.join_peer(
            "attacker-0",
            Some(LinkConfig::default()),
            (0..4).map(|i| (i, LinkConfig::default())),
        );
        assert_eq!(air.net().namespace_name(hostile), "attacker-0");
        assert!(air.net().connected(hostile, air.gcs_ns()));
        for i in 0..4 {
            assert!(air.net().connected(hostile, air.radio(i)));
        }
        // A link-less observer is also a valid peer.
        let observer = air.join_peer("observer", None, []);
        assert!(air.net().neighbors(observer).is_empty());
    }

    #[test]
    fn v2v_links_connect_radios() {
        let mut air = Airspace::build(3, LinkConfig::default());
        air.connect_radios(0, 1, LinkConfig::default());
        assert!(air.net().connected(air.radio(0), air.radio(1)));
        assert!(!air.net().connected(air.radio(1), air.radio(2)));
    }
}
