//! **cd-fleet** — shared-airspace multi-UAV co-simulation.
//!
//! The paper evaluates one container-hosted UAV under DoS; its threat
//! model — a compromised network peer flooding the companion computer —
//! is inherently multi-node. This crate opens that axis: N independent
//! [`VehicleInstance`]s (each a full machine + container + controller
//! stack) fly on the common scheduler quantum against a ground control
//! station that polls telemetry from every vehicle over rate-limited
//! radio uplinks. Fleet-level attack campaigns place the existing attack
//! timelines per-victim, broadcast, or rolling-victim via
//! [`attacks::fleet::FleetScript`].
//!
//! # Two networks: bridge and airspace
//!
//! Each vehicle owns a private **bridge** [`Network`] — its host↔container
//! veth pair, where all of its sensor, motor and attack traffic lives
//! (on the paper's testbed this bridge physically exists *inside* the
//! vehicle's companion computer). The fleet shares one [`Airspace`] —
//! the radio medium — a first-class adversarial network holding the GCS
//! namespace, one radio namespace per vehicle, and any peer that joins:
//! the V2V [`SwarmLink`] wires radio↔radio coordination links on a
//! ring/mesh [`SwarmTopology`], and hostile [`AttackerNode`]s join with
//! routed links into radio range to flood GCS uplinks
//! ([`FleetTarget::GcsUplink`](attacks::fleet::FleetTarget)) or jam the
//! swarm streams ([`FleetTarget::SwarmJam`](attacks::fleet::FleetTarget)).
//! The split is what makes the fleet shardable: vehicles touch only their
//! own bridge, so shards advance on worker threads without
//! synchronisation, while all cross-vehicle traffic crosses the airspace
//! on the coordinating thread, in stable vehicle-index order.
//!
//! # Sharded parallel execution
//!
//! [`FleetConfig::with_threads`] runs the fleet on a scoped-thread worker
//! pool: vehicles are assigned to shards by the configured [`Partition`]
//! — [`Partition::LoadBalanced`] by default, which weighs each vehicle
//! by its observed per-batch step cost (attacked vehicles are hot) and
//! spreads the heavy ones across threads — each shard runs its vehicles'
//! `advance`/`post_step` phases batch-wise up to the next GCS poll
//! boundary, and the main thread merges the per-vehicle
//! [`VehicleSnapshot`]s into the shared airspace step (GCS downlink,
//! swarm broadcast round, attacker turns — in that pinned order).
//! Because each vehicle's trajectory is a pure function of its own
//! config and bridge, and the airspace merge order is pinned to vehicle
//! indices, a parallel run at **any** thread count under **either**
//! partition is byte-for-byte identical to the serial run — the
//! determinism tests enforce it.
//!
//! An N = 1 fleet run remains *byte-for-byte* identical to the classic
//! single-vehicle [`Scenario`](containerdrone_core::runner::Scenario) run
//! (the equivalence test pins this against the golden Figure 4 CSV).
//!
//! # Examples
//!
//! ```
//! use cd_fleet::{Fleet, FleetConfig};
//! use containerdrone_core::prelude::*;
//! use sim_core::time::SimDuration;
//!
//! let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
//! let report = Fleet::new(FleetConfig::new(base, 3).with_threads(2)).run();
//! assert_eq!(report.outcomes.len(), 3);
//! assert!(report.outcomes.iter().all(|o| !o.result.crashed()));
//! ```

#![warn(missing_docs)]

pub mod airspace;
pub mod attacker;
pub mod gcs;
pub mod obs;
pub mod swarm;

use std::time::{Duration, Instant};

use attacks::fleet::FleetScript;
use cd_obs::metrics::Registry;
use cd_obs::trace::TraceSink;
use containerdrone_core::config::SCHED_QUANTUM;
use containerdrone_core::phase;
use containerdrone_core::runner::{ScenarioResult, SpanEnd, VehicleInstance};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};
use uav_dynamics::batch::WorldBatch;
use virt_net::net::Network;

pub use airspace::Airspace;
pub use attacker::{AttackerConfig, AttackerNode};
pub use gcs::{GcsConfig, GcsView, GroundStation, VehicleSnapshot};
pub use obs::FleetObserver;
pub use swarm::{SwarmConfig, SwarmLink, SwarmTopology, SwarmView};

/// A fleet scenario: one per-vehicle base configuration replicated N
/// times, plus fleet-level attack placement, a ground station, and the
/// executor's thread count.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The per-vehicle scenario. Vehicle `i` flies this configuration
    /// with seed `base.seed + i`, so vehicle 0 reproduces the
    /// single-vehicle run exactly and the rest decorrelate.
    pub base: ScenarioConfig,
    /// Number of vehicles sharing the airspace.
    pub n_vehicles: usize,
    /// Fleet-level attack placement, compiled onto the per-vehicle
    /// timelines on top of whatever `base.attacks` already schedules.
    /// [`FleetTarget::GcsUplink`](attacks::fleet::FleetTarget) and
    /// [`FleetTarget::SwarmJam`](attacks::fleet::FleetTarget) entries
    /// compile onto external [`AttackerNode`]s instead.
    pub script: FleetScript,
    /// Ground-station configuration.
    pub gcs: GcsConfig,
    /// V2V swarm coordination streams (`None` = no swarm traffic — the
    /// classic GCS-only airspace).
    pub swarm: Option<SwarmConfig>,
    /// External-attacker configuration (nodes spawn only when the script
    /// actually schedules attacker entries).
    pub attacker: AttackerConfig,
    /// Worker threads for [`Fleet::run`] (1 = fully serial). Any value
    /// produces byte-identical reports; more threads only buy wall-clock
    /// time on multicore hosts.
    pub threads: usize,
    /// How vehicles are assigned to worker threads. Any strategy produces
    /// byte-identical reports; the choice only moves wall-clock time.
    pub partition: Partition,
    /// Run on the event-driven time-leap executor (the default). `false`
    /// is the `--no-leap` reference: every quantum runs all four phases.
    /// Both produce byte-identical reports — the adversarial equivalence
    /// tests pin it — the leap executor is just faster across event-free
    /// spans.
    pub leap: bool,
    /// Use the virtual network's bulk (closed-form) flood-delivery fast
    /// path (the default). `false` is the `--no-bulk` reference: every
    /// queued span settles packet-by-packet. Both produce byte-identical
    /// reports — [`virt_net::net::Network::set_bulk`] — bulk is just
    /// O(1) per flood span instead of O(packets).
    pub bulk: bool,
}

/// Shard-assignment strategy for the parallel executor.
///
/// The executor's determinism does not depend on the partition — vehicle
/// work is a pure per-vehicle function and the airspace merge happens in
/// vehicle-index order regardless — so this is purely a wall-clock knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Contiguous index ranges, one per thread (the PR 4 scheme). Even
    /// only when per-vehicle cost is even; an attack campaign focused on
    /// a few victims leaves most threads idle while one grinds.
    Contiguous,
    /// Weighs each vehicle by its observed per-batch step cost (EWMA of
    /// measured wall time) and assigns greedily, heaviest first, to the
    /// least-loaded thread — attacked vehicles are hot, so they spread
    /// across threads instead of clustering in one contiguous shard.
    #[default]
    LoadBalanced,
}

impl FleetConfig {
    /// A healthy fleet of `n_vehicles` flying `base`, serial executor.
    pub fn new(base: ScenarioConfig, n_vehicles: usize) -> Self {
        FleetConfig {
            base,
            n_vehicles,
            script: FleetScript::none(),
            gcs: GcsConfig::default(),
            swarm: None,
            attacker: AttackerConfig::default(),
            threads: 1,
            partition: Partition::default(),
            leap: true,
            bulk: true,
        }
    }

    /// Replaces the fleet attack script.
    #[must_use]
    pub fn with_script(mut self, script: FleetScript) -> Self {
        self.script = script;
        self
    }

    /// Replaces the ground-station configuration.
    #[must_use]
    pub fn with_gcs(mut self, gcs: GcsConfig) -> Self {
        self.gcs = gcs;
        self
    }

    /// Enables V2V swarm coordination streams.
    #[must_use]
    pub fn with_swarm(mut self, swarm: SwarmConfig) -> Self {
        self.swarm = Some(swarm);
        self
    }

    /// Replaces the external-attacker configuration.
    #[must_use]
    pub fn with_attacker(mut self, attacker: AttackerConfig) -> Self {
        self.attacker = attacker;
        self
    }

    /// Sets the executor's worker-thread count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the shard-assignment strategy.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Selects the executor: `true` (default) for the event-driven
    /// time-leap executor, `false` for the quantum-stepped reference
    /// (`--no-leap`). Byte-identical either way.
    #[must_use]
    pub fn with_leap(mut self, leap: bool) -> Self {
        self.leap = leap;
        self
    }

    /// Selects the network delivery path: `true` (default) settles flood
    /// spans in closed form, `false` (`--no-bulk`) replays them
    /// packet-by-packet. Byte-identical either way — the bulk
    /// equivalence suites pin it.
    #[must_use]
    pub fn with_bulk(mut self, bulk: bool) -> Self {
        self.bulk = bulk;
        self
    }
}

/// One vehicle plus the private bridge network it flies against. The
/// unit of sharding: a slot never touches anything outside itself while
/// advancing, so disjoint slots advance on different threads freely.
pub(crate) struct VehicleSlot {
    pub(crate) net: Network,
    pub(crate) vehicle: VehicleInstance,
}

/// Advances one vehicle quantum-by-quantum until it finishes or reaches
/// `target` (a poll boundary), leaving in `snap` the snapshot the GCS
/// poll at `target` must see: captured after the vehicle's `advance` for
/// that quantum, before its `post_step` — the same interleaving the
/// quantum-stepped serial loop produces.
fn run_slot_to(slot: &mut VehicleSlot, target: SimTime, snap: &mut VehicleSnapshot) {
    let VehicleSlot { net, vehicle } = slot;
    loop {
        if !vehicle.advance(net) {
            *snap = VehicleSnapshot::finished(vehicle);
            return;
        }
        let now = vehicle.now();
        let at_target = now >= target;
        if at_target {
            *snap = VehicleSnapshot::of(vehicle);
        }
        let t0 = phase::now();
        let deliveries = net.step(now);
        for &d in deliveries {
            vehicle.on_delivery(d);
        }
        vehicle.phase_add(phase::NET, phase::now() - t0);
        vehicle.post_step();
        if at_target {
            return;
        }
    }
}

/// Pooled per-worker scratch of the leap executor: the struct-of-arrays
/// physics batch and the bin-local indices of vehicles whose physics
/// catch-up was deferred into it. Cleared (capacity kept) after every
/// poll batch, so steady state allocates nothing.
#[derive(Default)]
struct ShardScratch {
    batch: WorldBatch,
    pending: Vec<usize>,
    /// Wall-ns this shard spent in batched physics catch-up — the
    /// deferred share of the physics phase, booked here because it runs
    /// outside any vehicle ([`containerdrone_core::phase`] accounting;
    /// stays zero unless the phase clock is installed).
    physics_ns: u64,
}

/// Advances one vehicle span-by-span to `target` (a poll boundary) on
/// the time-leap executor. Mirrors [`run_slot_to`]'s interleaving
/// exactly — the snapshot the GCS poll must see is captured after the
/// at-target machine advance, before that quantum's `post_step` — except
/// that a vehicle ending its final span event-free defers its physics
/// catch-up: the caller batches those into `batch` and finishes them via
/// [`finish_deferred_slot`]. Returns `true` when this vehicle was
/// deferred (its lane was enrolled in `batch`, its snapshot and
/// bookkeeping still owed).
fn run_slot_leap(
    slot: &mut VehicleSlot,
    target: SimTime,
    snap: &mut VehicleSnapshot,
    batch: &mut WorldBatch,
) -> bool {
    let VehicleSlot { net, vehicle } = slot;
    loop {
        match vehicle.advance_span_deferred(net, target) {
            SpanEnd::Done => {
                *snap = VehicleSnapshot::finished(vehicle);
                return false;
            }
            SpanEnd::Short => {}
            SpanEnd::AtTarget => {
                *snap = VehicleSnapshot::of(vehicle);
                vehicle.post_step();
                return false;
            }
            SpanEnd::AtTargetDeferred => {
                batch.enroll(vehicle.world(), vehicle.now());
                return true;
            }
        }
    }
}

/// Completes a deferred vehicle once its shard's physics batch has
/// advanced: scatters the lane back into the world, captures the poll
/// snapshot (physics now current, `post_step` still pending — the same
/// observation point as the non-deferred paths) and runs the owed
/// telemetry/crash bookkeeping.
fn finish_deferred_slot(
    slot: &mut VehicleSlot,
    snap: &mut VehicleSnapshot,
    batch: &WorldBatch,
    lane: usize,
) {
    let vehicle = &mut slot.vehicle;
    batch.scatter_into(lane, vehicle.world_mut());
    *snap = VehicleSnapshot::of(vehicle);
    vehicle.post_step();
}

/// [`run_slot_leap`] plus the same EWMA cost observation as
/// [`run_slot_timed`]. The deferred physics cost lands in the batch
/// advance outside this timer — the estimate only steers
/// [`Partition::LoadBalanced`], never simulation state, so the skew is
/// harmless.
#[allow(clippy::disallowed_methods)] // mirror of the cd-lint allow below
fn run_slot_leap_timed(
    slot: &mut VehicleSlot,
    target: SimTime,
    snap: &mut VehicleSnapshot,
    cost: &mut f64,
    batch: &mut WorldBatch,
) -> bool {
    // cd-lint: allow(wall_clock) -- cost-only EWMA observation for LPT shard balance; never feeds simulation state or the report
    let started = Instant::now();
    let deferred = run_slot_leap(slot, target, snap, batch);
    let observed = started.elapsed().as_secs_f64();
    *cost = if *cost == 0.0 {
        observed
    } else {
        0.5 * *cost + 0.5 * observed
    };
    deferred
}

/// [`run_slot_to`] plus cost observation: folds the measured wall time
/// of this batch into the vehicle's cost estimate (EWMA, so the balance
/// follows a rolling victim instead of averaging over the whole
/// history). The estimate feeds [`Partition::LoadBalanced`] and nothing
/// else — it never touches simulation state, so the nondeterminism of
/// wall-clock measurement cannot leak into the report. Shard membership
/// may differ from run to run, but the merge step replays deliveries in
/// deterministic order regardless of which thread produced them, which
/// is exactly what the cross-thread equivalence pins verify.
#[allow(clippy::disallowed_methods)] // mirror of the cd-lint allow below
fn run_slot_timed(
    slot: &mut VehicleSlot,
    target: SimTime,
    snap: &mut VehicleSnapshot,
    cost: &mut f64,
) {
    // cd-lint: allow(wall_clock) -- cost-only EWMA observation for LPT shard balance; never feeds simulation state or the report
    let started = Instant::now();
    run_slot_to(slot, target, snap);
    let observed = started.elapsed().as_secs_f64();
    *cost = if *cost == 0.0 {
        observed
    } else {
        0.5 * *cost + 0.5 * observed
    };
}

/// Assigns vehicle indices to at most `threads` bins. Contiguous: equal
/// index ranges. Load-balanced: greedy longest-processing-time — visit
/// vehicles heaviest-first (by observed cost) and give each to the
/// currently lightest bin, so a campaign that concentrates attacks on a
/// few victims spreads those hot vehicles across threads.
fn assign_shards(costs: &[f64], threads: usize, partition: Partition) -> Vec<Vec<usize>> {
    let n = costs.len();
    match partition {
        Partition::Contiguous => {
            let shard = n.div_ceil(threads);
            (0..n)
                .collect::<Vec<_>>()
                .chunks(shard)
                .map(<[usize]>::to_vec)
                .collect()
        }
        Partition::LoadBalanced => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                costs[b]
                    .partial_cmp(&costs[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut loads = vec![0.0f64; threads];
            let mut bins: Vec<Vec<usize>> = vec![Vec::new(); threads];
            for i in order {
                let lightest = loads
                    .iter()
                    .enumerate()
                    .min_by(|(_, x), (_, y)| x.total_cmp(y))
                    .map(|(k, _)| k)
                    .expect("threads >= 1");
                bins[lightest].push(i);
                // A floor keeps all-zero first-round costs spreading
                // round-robin instead of piling into bin 0.
                loads[lightest] += costs[i].max(1e-9);
            }
            // Ascending index order within a bin: batches stay
            // cache-friendly and the walk order is reproducible.
            for bin in &mut bins {
                bin.sort_unstable();
            }
            bins.retain(|b| !b.is_empty());
            bins
        }
    }
}

/// The executor knobs for one poll-boundary batch: where to stop, how
/// wide to shard, how to partition, and which executor (leap/stepped)
/// advances each vehicle.
#[derive(Clone, Copy)]
struct ShardPlan {
    target: SimTime,
    threads: usize,
    partition: Partition,
    leap: bool,
}

/// Runs every slot up to `plan.target`, sharded over `plan.threads`
/// scoped worker threads under the configured [`Partition`]. Slots are
/// disjoint, so the only synchronisation is the scope join; snapshots
/// land in vehicle-index order regardless of which thread wrote them —
/// the partition decides *where* a vehicle computes, never *what*, so
/// the report is partition- and thread-count-independent by
/// construction. Returns the shard assignment used, `None` on the
/// serial path (which computes no bins — and must stay allocation-free
/// for the zero-alloc gate).
fn run_shards(
    slots: &mut [VehicleSlot],
    snapshots: &mut [VehicleSnapshot],
    costs: &mut [f64],
    scratch: &mut [ShardScratch],
    plan: ShardPlan,
) -> Option<Vec<Vec<usize>>> {
    let ShardPlan {
        target,
        threads,
        partition,
        leap,
    } = plan;
    if threads <= 1 || slots.len() <= 1 {
        if leap {
            // Index loops over pooled scratch: the serial leap path, like
            // the serial stepped path, allocates nothing in steady state.
            let scratch = &mut scratch[0];
            for i in 0..slots.len() {
                if run_slot_leap_timed(
                    &mut slots[i],
                    target,
                    &mut snapshots[i],
                    &mut costs[i],
                    &mut scratch.batch,
                ) {
                    scratch.pending.push(i);
                }
            }
            let t0 = phase::now();
            scratch.batch.advance();
            scratch.physics_ns += phase::now() - t0;
            for (lane, &i) in scratch.pending.iter().enumerate() {
                finish_deferred_slot(&mut slots[i], &mut snapshots[i], &scratch.batch, lane);
            }
            scratch.batch.clear();
            scratch.pending.clear();
        } else {
            for ((slot, snap), cost) in slots
                .iter_mut()
                .zip(snapshots.iter_mut())
                .zip(costs.iter_mut())
            {
                run_slot_timed(slot, target, snap, cost);
            }
        }
        return None;
    }
    let bins = assign_shards(costs, threads, partition);
    // Split the disjoint `&mut` cells out of the slices and deal them to
    // their bins — safe non-contiguous sharding, no index arithmetic on
    // raw pointers.
    let mut cells: Vec<Option<(&mut VehicleSlot, &mut VehicleSnapshot, &mut f64)>> = slots
        .iter_mut()
        .zip(snapshots.iter_mut())
        .zip(costs.iter_mut())
        .map(|((slot, snap), cost)| Some((slot, snap, cost)))
        .collect();
    let work: Vec<Vec<_>> = bins
        .iter()
        .map(|bin| {
            bin.iter()
                .map(|&i| cells[i].take().expect("bins are disjoint"))
                .collect()
        })
        .collect();
    std::thread::scope(|scope| {
        for (batch, scratch) in work.into_iter().zip(scratch.iter_mut()) {
            scope.spawn(move || {
                if leap {
                    let mut batch = batch;
                    for (i, (slot, snap, cost)) in batch.iter_mut().enumerate() {
                        if run_slot_leap_timed(slot, target, snap, cost, &mut scratch.batch) {
                            scratch.pending.push(i);
                        }
                    }
                    let t0 = phase::now();
                    scratch.batch.advance();
                    scratch.physics_ns += phase::now() - t0;
                    for (lane, &i) in scratch.pending.iter().enumerate() {
                        let (slot, snap, _) = &mut batch[i];
                        finish_deferred_slot(slot, snap, &scratch.batch, lane);
                    }
                    scratch.batch.clear();
                    scratch.pending.clear();
                } else {
                    for (slot, snap, cost) in batch {
                        run_slot_timed(slot, target, snap, cost);
                    }
                }
            });
        }
    });
    Some(bins)
}

/// A fleet mid-flight: N vehicles on one quantum clock, each over its
/// private bridge network, sharing the [`Airspace`] with the GCS, the
/// swarm coordination fabric and any hostile attacker nodes.
pub struct Fleet {
    slots: Vec<VehicleSlot>,
    airspace: Airspace,
    gcs: GroundStation,
    swarm: Option<SwarmLink>,
    attackers: Vec<AttackerNode>,
    /// Per-vehicle snapshots captured at the latest poll boundary.
    snapshots: Vec<VehicleSnapshot>,
    /// Observed per-batch step cost per vehicle (load-balancing weights).
    costs: Vec<f64>,
    /// One pooled leap scratch (SoA physics batch + deferred list) per
    /// worker thread.
    scratch: Vec<ShardScratch>,
    now: SimTime,
    end_of_flight: SimTime,
    next_poll: SimTime,
    poll_period: SimDuration,
    threads: usize,
    partition: Partition,
    leap: bool,
    /// Trace sink + metric handles, all-`None` unless attached — one
    /// branch per poll boundary when detached.
    obs: obs::FleetObs,
}

impl Fleet {
    /// Builds the whole fleet: N vehicle instances over private bridge
    /// networks, the compiled per-vehicle attack timelines, and the
    /// airspace with its tenants — the GCS and its radio uplinks, the
    /// V2V swarm fabric (when configured), and one attacker node per
    /// populated attacker partition (when the script schedules external
    /// attacks).
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet (`n_vehicles == 0`), and on a script
    /// that jams swarm ports of a fleet with no swarm configured.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.n_vehicles > 0, "a fleet needs at least one vehicle");
        let end_of_flight = SimTime::ZERO + config.base.duration;
        let per_vehicle = config.script.compile(config.n_vehicles, end_of_flight);

        let mut slots = Vec::with_capacity(config.n_vehicles);
        for (i, extra) in per_vehicle.into_iter().enumerate() {
            let mut cfg = config.base.clone();
            cfg.seed = cfg.seed.wrapping_add(i as u64);
            for entry in extra.entries() {
                cfg.attacks = cfg.attacks.at(entry.at, entry.event.clone());
            }
            let mut net = Network::new();
            net.set_bulk(config.bulk);
            let vehicle = VehicleInstance::build(cfg, Vec::new(), &mut net);
            slots.push(VehicleSlot { net, vehicle });
        }
        let mut airspace = Airspace::build(config.n_vehicles, config.gcs.uplink);
        airspace.net_mut().set_bulk(config.bulk);
        let gcs = GroundStation::build(&mut airspace, &config.gcs);
        let swarm = config
            .swarm
            .as_ref()
            .map(|sc| SwarmLink::build(&mut airspace, sc));

        let attacker_entries = config.script.compile_attackers(config.n_vehicles);
        assert!(
            swarm.is_some()
                || attacker_entries
                    .iter()
                    .all(|e| !matches!(e.target, attacks::fleet::AttackerTarget::SwarmJam(_))),
            "SwarmJam targets need with_swarm(..): there is no V2V stream to jam"
        );
        let mut attackers = Vec::new();
        if !attacker_entries.is_empty() {
            let nodes = config.attacker.nodes.max(1);
            let mut per_node = vec![Vec::new(); nodes];
            for entry in attacker_entries {
                per_node[entry.target.vehicle() % nodes].push(entry);
            }
            for (k, entries) in per_node.into_iter().enumerate() {
                if !entries.is_empty() {
                    attackers.push(AttackerNode::build(
                        &mut airspace,
                        k,
                        entries,
                        &config.attacker,
                    ));
                }
            }
        }

        let n = slots.len();
        Fleet {
            slots,
            airspace,
            gcs,
            swarm,
            attackers,
            snapshots: vec![VehicleSnapshot::default(); n],
            costs: vec![0.0; n],
            scratch: std::iter::repeat_with(ShardScratch::default)
                .take(config.threads.max(1))
                .collect(),
            now: SimTime::ZERO,
            end_of_flight,
            next_poll: SimTime::ZERO,
            poll_period: SimDuration::from_hz(config.gcs.poll_hz),
            threads: config.threads.max(1),
            partition: config.partition,
            leap: config.leap,
            obs: obs::FleetObs::default(),
        }
    }

    /// Attaches a structured trace: every vehicle gets a pre-allocated
    /// event ring (this is the trace path's only allocation), and the
    /// coordinating thread drains all rings into `sink` at each poll
    /// boundary, in vehicle-index order. Under the sink's default
    /// [`cd_obs::TraceMask`] the JSONL stream is byte-identical at any
    /// thread count and partition; `TraceMask::ALL` adds the
    /// thread-count-dependent shard-rebalance events.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        // A poll window is ~2000 quanta; 4096 events per vehicle rides
        // out a skip storm without wrapping (wrap drops oldest + counts).
        const RING_CAPACITY: usize = 4096;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.vehicle.obs_port().attach(RING_CAPACITY, i as u32);
        }
        self.obs.ensure_ledgers(self.slots.len());
        self.obs.sink = Some(sink);
    }

    /// Registers the fleet's metric families in `registry` and wires the
    /// per-packet network counters of every bridge and the airspace to
    /// registered series. Totals and gauges are (re)published at every
    /// poll boundary; the network counters update live. Share the
    /// registry with [`cd_obs::server::serve`] to scrape a run in flight.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.obs.metrics = Some(obs::FleetMetrics::register(
            registry,
            self.slots.len(),
            self.threads,
        ));
        self.obs.ensure_ledgers(self.slots.len());
        let help = "Datagrams offered to the virtual networks, by admission result.";
        let counters = virt_net::net::NetCounters {
            admitted: registry
                .counter("cd_net_datagrams_total", help, &[("result", "admitted")])
                .shared(),
            dropped_ratelimit: registry
                .counter(
                    "cd_net_datagrams_total",
                    help,
                    &[("result", "dropped_ratelimit")],
                )
                .shared(),
            dropped_overflow: registry
                .counter(
                    "cd_net_datagrams_total",
                    help,
                    &[("result", "dropped_overflow")],
                )
                .shared(),
        };
        for slot in &mut self.slots {
            slot.net.set_counters(counters.clone());
        }
        self.airspace.net_mut().set_counters(counters);
    }

    /// Current fleet time (the common quantum clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of vehicles in the fleet.
    pub fn n_vehicles(&self) -> usize {
        self.slots.len()
    }

    /// One vehicle, by index.
    pub fn vehicle(&self, index: usize) -> &VehicleInstance {
        &self.slots[index].vehicle
    }

    /// The ground station.
    pub fn gcs(&self) -> &GroundStation {
        &self.gcs
    }

    /// The shared airspace topology (GCS, radios, and every peer that
    /// joined) — the inspection surface for tests and tooling that audit
    /// who is on the radio medium and how they are wired.
    pub fn airspace(&self) -> &Airspace {
        &self.airspace
    }

    /// The V2V swarm fabric, when configured.
    pub fn swarm(&self) -> Option<&SwarmLink> {
        self.swarm.as_ref()
    }

    /// The external attacker nodes spawned from the fleet script.
    pub fn attackers(&self) -> &[AttackerNode] {
        &self.attackers
    }

    /// Advances the whole airspace by one scheduler quantum:
    ///
    /// 1. every still-flying vehicle advances (machine, physics, job
    ///    dispatch, armed attacks), steps its bridge network and runs its
    ///    telemetry/crash bookkeeping;
    /// 2. if a poll tick is due, the merge boundary fires from the
    ///    per-vehicle snapshots, in vehicle-index order: GCS downlink,
    ///    swarm broadcast round, then the attacker nodes' turns;
    /// 3. the airspace advances once and the GCS and swarm drain their
    ///    sockets.
    ///
    /// Returns `false` — without advancing — once every vehicle has
    /// finished. [`Fleet::run`] batches this loop between poll
    /// boundaries (and across worker threads) without changing a byte of
    /// the outcome for single-source ports; `step` stays the
    /// incremental, debugger-friendly way to drive a fleet. When a
    /// rate-limited port is fed by several links at once (an external
    /// attacker sharing a telemetry or swarm port with genuine traffic),
    /// the per-quantum schedule orders same-window bucket admissions by
    /// arrival rather than by link, so view counters may differ
    /// microscopically from [`Fleet::run`]'s — each schedule is
    /// individually deterministic (see `run_to_end`).
    pub fn step(&mut self) -> bool {
        let target = self.now + SCHED_QUANTUM;
        let poll_due = target >= self.next_poll;
        let mut any = false;
        for (slot, snap) in self.slots.iter_mut().zip(self.snapshots.iter_mut()) {
            let VehicleSlot { net, vehicle } = slot;
            if vehicle.advance(net) {
                any = true;
                if poll_due {
                    *snap = VehicleSnapshot::of(vehicle);
                }
                let deliveries = net.step(vehicle.now());
                for &d in deliveries {
                    vehicle.on_delivery(d);
                }
                vehicle.post_step();
            } else if poll_due {
                *snap = VehicleSnapshot::finished(vehicle);
            }
        }
        if !any {
            return false;
        }
        self.now = target;
        if poll_due {
            self.merge_boundary(target);
            self.next_poll += self.poll_period;
        }
        self.settle_airspace();
        if poll_due {
            self.observe_boundary(None);
        }
        true
    }

    /// Everything that happens *at* a poll boundary, in its pinned
    /// deterministic order: the GCS downlink fires from the snapshots,
    /// the swarm broadcasts its round, and the attacker nodes take their
    /// turn — all on the coordinating thread, all in vehicle-index (and
    /// attacker-index) order, so the wire traffic is identical under any
    /// thread count and any shard partition.
    fn merge_boundary(&mut self, now: SimTime) {
        self.gcs.poll(self.airspace.net_mut(), &self.snapshots, now);
        if let Some(swarm) = &mut self.swarm {
            swarm.exchange(self.airspace.net_mut(), &self.snapshots, now);
        }
        for node in &mut self.attackers {
            node.tick(self.airspace.net_mut(), now);
        }
    }

    /// Advances the airspace to the fleet clock and drains every
    /// coordinating-thread consumer (GCS views, swarm neighbor tables).
    fn settle_airspace(&mut self) {
        self.airspace.net_mut().step(self.now);
        self.gcs.drain(self.airspace.net_mut());
        if let Some(swarm) = &mut self.swarm {
            swarm.drain(self.airspace.net_mut(), &self.snapshots);
        }
    }

    /// Runs the fleet to completion on the configured executor and tears
    /// it down into the report. The wall-clock measurement taken here
    /// lands only in [`FleetReport::wall_clock`], a diagnostic field the
    /// equivalence tests explicitly exclude from byte comparison — every
    /// simulated quantity in the report derives from the virtual clock.
    pub fn run(self) -> FleetReport {
        self.run_observed(&mut ())
    }

    /// [`Fleet::run`] with an observer in the loop: `on_batch` fires
    /// after every completed poll-boundary batch (trace drained, metrics
    /// republished), `on_finish` with the final report. The observer only
    /// *reads* the fleet, so the run's bytes are unchanged by observation.
    #[allow(clippy::disallowed_methods)] // mirror of the cd-lint allow below
    pub fn run_observed(mut self, observer: &mut dyn FleetObserver) -> FleetReport {
        // cd-lint: allow(wall_clock) -- diagnostic wall_clock field only; excluded from report byte-comparison
        let started = Instant::now();
        self.run_to_end(observer);
        self.obs.flush();
        let mut report = self.finish();
        report.wall_clock = started.elapsed();
        observer.on_finish(&report);
        report
    }

    /// The batch executor behind [`Fleet::run`]: between GCS poll
    /// boundaries the vehicles are entirely independent, so each shard
    /// runs vehicle-at-a-time batches (cache-friendly: one vehicle's
    /// whole working set stays hot for thousands of quanta) and the
    /// threads only meet at poll boundaries. Byte-identical to looping
    /// [`Fleet::step`] for single-source ports: the per-vehicle work is
    /// the same pure function, snapshots are captured at the same
    /// interleaving point, and the airspace admits every packet at its
    /// own arrival time, so stepping it once per batch delivers exactly
    /// what per-quantum stepping would (the quantum-vs-batch test pins
    /// this on the mixed campaign). One caveat: when *several* links
    /// feed one rate-limited port — an attacker flooding the uplink a
    /// radio also reports on — the admission order within a window
    /// follows link order under batch stepping but arrival order under
    /// quantum stepping, so the two schedules may book a boundary packet
    /// to different counters. Each schedule is individually
    /// deterministic, and every thread count and partition runs this
    /// batch executor, so the byte-identical guarantee across executor
    /// configurations is unaffected.
    fn run_to_end(&mut self, observer: &mut dyn FleetObserver) {
        let threads = self.threads.clamp(1, self.slots.len());
        while self.run_batch(threads) {
            observer.on_batch(self);
        }
    }

    /// Advances the fleet in whole poll-boundary batches on the
    /// configured executor until the fleet clock reaches `target` (or
    /// every vehicle finishes). The incremental form of the executor
    /// behind [`Fleet::run`] — used to carve steady-state measurement
    /// windows (the allocation-regression gate) out of a batch-executed
    /// run. The final batch may overshoot `target` to its poll boundary.
    pub fn run_until(&mut self, target: SimTime) {
        let threads = self.threads.clamp(1, self.slots.len());
        while self.now < target && self.run_batch(threads) {}
    }

    /// One poll-boundary batch of the executor: shards the vehicles to
    /// the next poll boundary, merges, settles. Returns `false` when the
    /// fleet is done (every vehicle finished, now or earlier).
    fn run_batch(&mut self, threads: usize) -> bool {
        // The next poll boundary: the first quantum boundary past
        // `now` at which the poll is due.
        let mut target = self.now + SCHED_QUANTUM;
        while target < self.next_poll {
            target += SCHED_QUANTUM;
        }
        let bins = run_shards(
            &mut self.slots,
            &mut self.snapshots,
            &mut self.costs,
            &mut self.scratch,
            ShardPlan {
                target,
                threads,
                partition: self.partition,
                leap: self.leap,
            },
        );
        let furthest = self
            .slots
            .iter()
            .map(|s| s.vehicle.now())
            .max()
            .unwrap_or(self.now);
        if furthest <= self.now {
            return false; // every vehicle had already finished
        }
        self.now = furthest;
        if furthest == target {
            // At least one vehicle was still flying at the poll
            // quantum, so the quantum-stepped loop would have fired
            // the poll there too.
            self.merge_boundary(target);
            self.next_poll += self.poll_period;
        }
        self.settle_airspace();
        // Observation runs on every batch end (including the final
        // partial one, so trailing events drain): the batch sequence is
        // thread-count-independent, so so is the trace stream.
        self.observe_boundary(bins.as_deref());
        // `furthest < target` means the whole fleet finished before the
        // boundary.
        furthest >= target
    }

    /// The poll-boundary observation pass (no-op unless a trace sink or
    /// metrics registry is attached): drains every vehicle's trace ring
    /// in vehicle-index order, appends the fleet-scope per-window GCS and
    /// swarm delta events, and republishes every metric family.
    fn observe_boundary(&mut self, bins: Option<&[Vec<usize>]>) {
        if !self.obs.active() {
            return;
        }
        self.obs.boundary(
            &mut self.slots,
            self.airspace.net(),
            &self.gcs,
            self.swarm.as_ref(),
            &self.attackers,
            self.now,
            bins,
            &self.costs,
        );
    }

    /// Tears the fleet down into a [`FleetReport`] at the current time
    /// (`wall_clock` is left zero; [`Fleet::run`] fills it).
    pub fn finish(self) -> FleetReport {
        let Fleet {
            slots,
            airspace,
            gcs,
            swarm,
            attackers,
            now,
            end_of_flight,
            scratch,
            ..
        } = self;
        let net = airspace.net();
        let views = gcs.finish(net);
        let swarm_views = match swarm {
            Some(link) => link.finish(net),
            None => vec![SwarmView::default(); slots.len()],
        };
        let attacker_packets: u64 = attackers.iter().map(AttackerNode::packets_sent).sum();
        let mut net_packets = net.packets_sent();
        let outcomes: Vec<VehicleOutcome> = slots
            .into_iter()
            .zip(views)
            .zip(swarm_views)
            .enumerate()
            .map(|(index, ((slot, gcs_view), swarm_view))| {
                net_packets += slot.net.packets_sent();
                let result = slot.vehicle.finish(&slot.net);
                let from = result.attack_onset.unwrap_or(SimTime::from_secs(2));
                let max_deviation = result.max_deviation(from, end_of_flight);
                let deadline_skips = result
                    .task_report
                    .iter()
                    .map(|(_, stats)| stats.skips)
                    .sum();
                VehicleOutcome {
                    index,
                    seed: result.config.seed,
                    max_deviation,
                    deadline_skips,
                    gcs: gcs_view,
                    swarm: swarm_view,
                    result,
                }
            })
            .collect();
        let mut phase_ns = [0u64; phase::COUNT];
        for o in &outcomes {
            for (acc, v) in phase_ns.iter_mut().zip(o.result.phase_ns) {
                *acc += v;
            }
        }
        phase_ns[phase::PHYSICS] += scratch.iter().map(|s| s.physics_ns).sum::<u64>();
        FleetReport {
            sim_steps: outcomes.iter().map(|o| o.result.sim_steps).sum(),
            quanta_leaped: outcomes.iter().map(|o| o.result.quanta_leaped).sum(),
            phase_ns,
            net_packets,
            attacker_packets,
            duration: now,
            wall_clock: Duration::ZERO,
            outcomes,
        }
    }
}

/// One vehicle's end-of-flight outcome inside a fleet run.
#[derive(Debug)]
pub struct VehicleOutcome {
    /// The vehicle's index in the fleet.
    pub index: usize,
    /// The seed it flew with (`base.seed + index`).
    pub seed: u64,
    /// Max deviation from the hover setpoint between the first attack
    /// onset (or 2 s, when unattacked) and the end of flight, metres.
    pub max_deviation: f64,
    /// Periodic releases skipped across the vehicle's task set — the
    /// fleet-level deadline-miss indicator.
    pub deadline_skips: u64,
    /// What the ground station last knew about this vehicle.
    pub gcs: GcsView,
    /// What this vehicle's radio learned from the V2V coordination
    /// stream (all-default when the fleet flies without a swarm).
    pub swarm: SwarmView,
    /// The full per-vehicle result.
    pub result: ScenarioResult,
}

impl VehicleOutcome {
    /// Compact outcome classification: `crash`, `lost-ctl` or `stable`.
    pub fn verdict(&self) -> &'static str {
        if self.result.crashed() {
            "crash"
        } else if self.max_deviation > 2.0 {
            "lost-ctl"
        } else {
            "stable"
        }
    }
}

/// Aggregated results of one fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle outcomes, in vehicle order.
    pub outcomes: Vec<VehicleOutcome>,
    /// Scheduler quanta executed, summed over all vehicle machines (the
    /// fleet steps/sec numerator).
    pub sim_steps: u64,
    /// Of [`FleetReport::sim_steps`], the quanta the time-leap executor
    /// advanced in closed form instead of stepping individually. Always 0
    /// under `--no-leap`; everything else in the report is byte-identical
    /// either way (see [`FleetReport::quanta_stepped`]).
    pub quanta_leaped: u64,
    /// Wall-nanoseconds per executor phase, summed over vehicles and
    /// worker shards ([`containerdrone_core::phase`] indices). All-zero
    /// unless the phase clock is installed; under multi-threaded runs the
    /// phases sum CPU-time-like across threads, so they can exceed the
    /// run's wall clock.
    pub phase_ns: [u64; phase::COUNT],
    /// Datagrams offered to the bridge and airspace networks combined
    /// (streams, attacks and telemetry).
    pub net_packets: u64,
    /// Datagrams offered by external attacker nodes (a subset of
    /// `net_packets` — the hostile share of the airspace load).
    pub attacker_packets: u64,
    /// Fleet clock at teardown.
    pub duration: SimTime,
    /// Host wall-clock time of the run (zero unless produced by
    /// [`Fleet::run`]).
    pub wall_clock: Duration,
}

impl FleetReport {
    /// Column list of [`FleetReport::to_csv`], exposed so downstream
    /// artifact writers that prefix extra columns stay in lockstep.
    pub const CSV_HEADER: &'static str = "vehicle,seed,outcome,crashed,switch_s,\
         max_deviation_m,deadline_skips,gcs_packets,gcs_dropped,gcs_malformed,\
         gcs_last_seen_s,swarm_rx,swarm_jam_drops,swarm_min_sep_m";

    /// Quanta the executor stepped individually (the complement of
    /// [`FleetReport::quanta_leaped`]; equals `sim_steps` under
    /// `--no-leap`).
    pub fn quanta_stepped(&self) -> u64 {
        self.sim_steps - self.quanta_leaped
    }

    /// Number of vehicles that crashed.
    pub fn crashes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.crashed()).count()
    }

    /// Number of vehicles whose monitor performed the Simplex switch.
    pub fn switches(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.result.switch_time.is_some())
            .count()
    }

    /// Deadline skips summed over the fleet.
    pub fn total_deadline_skips(&self) -> u64 {
        self.outcomes.iter().map(|o| o.deadline_skips).sum()
    }

    /// One CSV row per vehicle — the fleet-campaign artifact shape, and
    /// the determinism witness (two same-seed runs, at any thread counts,
    /// must render identically).
    pub fn to_csv(&self) -> String {
        let mut csv = format!("{}\n", Self::CSV_HEADER);
        for o in &self.outcomes {
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{},{},{},{},{},{},{},{}\n",
                o.index,
                o.seed,
                o.verdict(),
                o.result.crashed(),
                o.result
                    .switch_time
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
                o.max_deviation,
                o.deadline_skips,
                o.gcs.packets,
                o.gcs.dropped_ratelimit,
                o.gcs.malformed,
                o.gcs
                    .last_seen
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
                o.swarm.rx_msgs,
                o.swarm.dropped_jam,
                o.swarm
                    .min_separation
                    .map(|d| format!("{d:.3}"))
                    .unwrap_or_default(),
            ));
        }
        csv
    }
}

#[cfg(test)]
mod send_bounds {
    use super::*;

    /// The sharded executor moves whole vehicle slots (instance + bridge
    /// network, armed attacks included) onto scoped worker threads.
    #[test]
    fn vehicle_slot_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<VehicleSlot>();
        assert_send::<VehicleSnapshot>();
    }
}
