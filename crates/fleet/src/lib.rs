//! **cd-fleet** — shared-airspace multi-UAV co-simulation.
//!
//! The paper evaluates one container-hosted UAV under DoS; its threat
//! model — a compromised network peer flooding the companion computer —
//! is inherently multi-node. This crate opens that axis: N independent
//! [`VehicleInstance`]s (each a full machine + container + controller
//! stack) fly against **one** shared [`Network`] "airspace" with a ground
//! control station node that polls telemetry from every vehicle over
//! rate-limited radio uplinks. Fleet-level attack campaigns place the
//! existing attack timelines per-victim, broadcast, or rolling-victim
//! via [`attacks::fleet::FleetScript`].
//!
//! Every vehicle steps on the common scheduler quantum, and the shared
//! network advances exactly once per quantum — so an N = 1 fleet run is
//! *byte-for-byte* identical to the classic single-vehicle
//! [`Scenario`](containerdrone_core::runner::Scenario) run (the
//! equivalence test pins this against the golden Figure 4 CSV).
//!
//! # Examples
//!
//! ```
//! use cd_fleet::{Fleet, FleetConfig};
//! use containerdrone_core::prelude::*;
//! use sim_core::time::SimDuration;
//!
//! let base = ScenarioConfig::healthy().with_duration(SimDuration::from_secs(2));
//! let report = Fleet::new(FleetConfig::new(base, 3)).run();
//! assert_eq!(report.outcomes.len(), 3);
//! assert!(report.outcomes.iter().all(|o| !o.result.crashed()));
//! ```

#![warn(missing_docs)]

pub mod gcs;

use std::time::{Duration, Instant};

use attacks::fleet::FleetScript;
use containerdrone_core::config::SCHED_QUANTUM;
use containerdrone_core::runner::{ScenarioResult, VehicleInstance};
use containerdrone_core::scenario::ScenarioConfig;
use sim_core::time::{SimDuration, SimTime};
use virt_net::net::{Delivery, Network, SocketId};

pub use gcs::{GcsConfig, GcsView, GroundStation};

/// A fleet scenario: one per-vehicle base configuration replicated N
/// times into a shared airspace, plus fleet-level attack placement and a
/// ground station.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The per-vehicle scenario. Vehicle `i` flies this configuration
    /// with seed `base.seed + i`, so vehicle 0 reproduces the
    /// single-vehicle run exactly and the rest decorrelate.
    pub base: ScenarioConfig,
    /// Number of vehicles sharing the airspace.
    pub n_vehicles: usize,
    /// Fleet-level attack placement, compiled onto the per-vehicle
    /// timelines on top of whatever `base.attacks` already schedules.
    pub script: FleetScript,
    /// Ground-station configuration.
    pub gcs: GcsConfig,
}

impl FleetConfig {
    /// A healthy fleet of `n_vehicles` flying `base`.
    pub fn new(base: ScenarioConfig, n_vehicles: usize) -> Self {
        FleetConfig {
            base,
            n_vehicles,
            script: FleetScript::none(),
            gcs: GcsConfig::default(),
        }
    }

    /// Replaces the fleet attack script.
    #[must_use]
    pub fn with_script(mut self, script: FleetScript) -> Self {
        self.script = script;
        self
    }

    /// Replaces the ground-station configuration.
    #[must_use]
    pub fn with_gcs(mut self, gcs: GcsConfig) -> Self {
        self.gcs = gcs;
        self
    }
}

/// A fleet mid-flight: N vehicles interleaved on one quantum clock over
/// one shared network.
pub struct Fleet {
    net: Network,
    vehicles: Vec<VehicleInstance>,
    gcs: GroundStation,
    /// Sorted `(motor-rx socket, vehicle index)` for delivery routing.
    rx_owner: Vec<(SocketId, usize)>,
    now: SimTime,
    end_of_flight: SimTime,
    next_poll: SimTime,
    poll_period: SimDuration,
    /// Scratch: which vehicles advanced this quantum.
    advanced: Vec<bool>,
    /// Scratch: this quantum's deliveries, copied out of the network.
    deliveries: Vec<Delivery>,
}

impl Fleet {
    /// Builds the whole airspace: N vehicle instances, the compiled
    /// per-vehicle attack timelines, the GCS node and its uplinks.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet (`n_vehicles == 0`).
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.n_vehicles > 0, "a fleet needs at least one vehicle");
        let end_of_flight = SimTime::ZERO + config.base.duration;
        let per_vehicle = config.script.compile(config.n_vehicles, end_of_flight);

        let mut net = Network::new();
        let mut vehicles = Vec::with_capacity(config.n_vehicles);
        for (i, extra) in per_vehicle.into_iter().enumerate() {
            let mut cfg = config.base.clone();
            cfg.seed = cfg.seed.wrapping_add(i as u64);
            for entry in extra.entries() {
                cfg.attacks = cfg.attacks.at(entry.at, entry.event.clone());
            }
            vehicles.push(VehicleInstance::build(cfg, Vec::new(), &mut net));
        }
        let gcs = GroundStation::build(&mut net, &vehicles, &config.gcs);

        let mut rx_owner: Vec<(SocketId, usize)> = vehicles
            .iter()
            .enumerate()
            .map(|(i, v)| (v.motor_rx(), i))
            .collect();
        rx_owner.sort_unstable();

        let n = vehicles.len();
        Fleet {
            net,
            vehicles,
            gcs,
            rx_owner,
            now: SimTime::ZERO,
            end_of_flight,
            next_poll: SimTime::ZERO,
            poll_period: SimDuration::from_hz(config.gcs.poll_hz),
            advanced: vec![false; n],
            deliveries: Vec::new(),
        }
    }

    /// Current fleet time (the common quantum clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The vehicles, in index order.
    pub fn vehicles(&self) -> &[VehicleInstance] {
        &self.vehicles
    }

    /// The ground station.
    pub fn gcs(&self) -> &GroundStation {
        &self.gcs
    }

    /// Advances the whole airspace by one scheduler quantum:
    ///
    /// 1. every still-flying vehicle advances (machine, physics, job
    ///    dispatch, armed attacks);
    /// 2. the GCS downlink fires if a poll tick is due;
    /// 3. the shared network advances once, and deliveries are routed to
    ///    the vehicle owning the receiving socket (or drained by the
    ///    GCS);
    /// 4. the advanced vehicles run their telemetry/crash bookkeeping.
    ///
    /// Returns `false` — without advancing — once every vehicle has
    /// finished.
    pub fn step(&mut self) -> bool {
        let mut any = false;
        for (i, vehicle) in self.vehicles.iter_mut().enumerate() {
            let stepped = vehicle.advance(&mut self.net);
            self.advanced[i] = stepped;
            any |= stepped;
        }
        if !any {
            return false;
        }
        self.now += SCHED_QUANTUM;

        if self.now >= self.next_poll {
            self.gcs.poll(&mut self.net, &self.vehicles, self.now);
            self.next_poll += self.poll_period;
        }

        self.deliveries.clear();
        self.deliveries.extend_from_slice(self.net.step(self.now));
        for i in 0..self.deliveries.len() {
            let d = self.deliveries[i];
            if let Ok(at) = self.rx_owner.binary_search_by_key(&d.socket, |&(s, _)| s) {
                let owner = self.rx_owner[at].1;
                if self.advanced[owner] {
                    self.vehicles[owner].on_delivery(d);
                }
            }
        }
        self.gcs.drain(&mut self.net);

        for (i, vehicle) in self.vehicles.iter_mut().enumerate() {
            if self.advanced[i] {
                vehicle.post_step();
            }
        }
        true
    }

    /// Runs the fleet to completion and tears it down into the report.
    pub fn run(mut self) -> FleetReport {
        let started = Instant::now();
        while self.step() {}
        let mut report = self.finish();
        report.wall_clock = started.elapsed();
        report
    }

    /// Tears the fleet down into a [`FleetReport`] at the current time
    /// (`wall_clock` is left zero; [`Fleet::run`] fills it).
    pub fn finish(self) -> FleetReport {
        let Fleet {
            net,
            vehicles,
            gcs,
            now,
            end_of_flight,
            ..
        } = self;
        let views = gcs.finish(&net);
        let outcomes: Vec<VehicleOutcome> = vehicles
            .into_iter()
            .zip(views)
            .enumerate()
            .map(|(index, (vehicle, gcs_view))| {
                let result = vehicle.finish(&net);
                let from = result.attack_onset.unwrap_or(SimTime::from_secs(2));
                let max_deviation = result.max_deviation(from, end_of_flight);
                let deadline_skips = result
                    .task_report
                    .iter()
                    .map(|(_, stats)| stats.skips)
                    .sum();
                VehicleOutcome {
                    index,
                    seed: result.config.seed,
                    max_deviation,
                    deadline_skips,
                    gcs: gcs_view,
                    result,
                }
            })
            .collect();
        FleetReport {
            sim_steps: outcomes.iter().map(|o| o.result.sim_steps).sum(),
            net_packets: net.packets_sent(),
            duration: now,
            wall_clock: Duration::ZERO,
            outcomes,
        }
    }
}

/// One vehicle's end-of-flight outcome inside a fleet run.
#[derive(Debug)]
pub struct VehicleOutcome {
    /// The vehicle's index in the fleet.
    pub index: usize,
    /// The seed it flew with (`base.seed + index`).
    pub seed: u64,
    /// Max deviation from the hover setpoint between the first attack
    /// onset (or 2 s, when unattacked) and the end of flight, metres.
    pub max_deviation: f64,
    /// Periodic releases skipped across the vehicle's task set — the
    /// fleet-level deadline-miss indicator.
    pub deadline_skips: u64,
    /// What the ground station last knew about this vehicle.
    pub gcs: GcsView,
    /// The full per-vehicle result.
    pub result: ScenarioResult,
}

impl VehicleOutcome {
    /// Compact outcome classification: `crash`, `lost-ctl` or `stable`.
    pub fn verdict(&self) -> &'static str {
        if self.result.crashed() {
            "crash"
        } else if self.max_deviation > 2.0 {
            "lost-ctl"
        } else {
            "stable"
        }
    }
}

/// Aggregated results of one fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-vehicle outcomes, in vehicle order.
    pub outcomes: Vec<VehicleOutcome>,
    /// Scheduler quanta executed, summed over all vehicle machines (the
    /// fleet steps/sec numerator).
    pub sim_steps: u64,
    /// Datagrams offered to the shared airspace (streams, attacks and
    /// telemetry combined).
    pub net_packets: u64,
    /// Fleet clock at teardown.
    pub duration: SimTime,
    /// Host wall-clock time of the run (zero unless produced by
    /// [`Fleet::run`]).
    pub wall_clock: Duration,
}

impl FleetReport {
    /// Column list of [`FleetReport::to_csv`], exposed so downstream
    /// artifact writers that prefix extra columns stay in lockstep.
    pub const CSV_HEADER: &'static str = "vehicle,seed,outcome,crashed,switch_s,\
         max_deviation_m,deadline_skips,gcs_packets,gcs_dropped,gcs_last_seen_s";

    /// Number of vehicles that crashed.
    pub fn crashes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.crashed()).count()
    }

    /// Number of vehicles whose monitor performed the Simplex switch.
    pub fn switches(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.result.switch_time.is_some())
            .count()
    }

    /// Deadline skips summed over the fleet.
    pub fn total_deadline_skips(&self) -> u64 {
        self.outcomes.iter().map(|o| o.deadline_skips).sum()
    }

    /// One CSV row per vehicle — the fleet-campaign artifact shape, and
    /// the determinism witness (two same-seed runs must render
    /// identically).
    pub fn to_csv(&self) -> String {
        let mut csv = format!("{}\n", Self::CSV_HEADER);
        for o in &self.outcomes {
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{},{},{},{}\n",
                o.index,
                o.seed,
                o.verdict(),
                o.result.crashed(),
                o.result
                    .switch_time
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
                o.max_deviation,
                o.deadline_skips,
                o.gcs.packets,
                o.gcs.dropped_ratelimit,
                o.gcs
                    .last_seen
                    .map(|t| format!("{:.3}", t.as_secs_f64()))
                    .unwrap_or_default(),
            ));
        }
        csv
    }
}
